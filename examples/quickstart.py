#!/usr/bin/env python3
"""Quickstart: automated collaborative tagging on a small P2P network.

Builds a synthetic Delicious-like corpus for 8 users, trains the PACE
collaborative classifier over a simulated Chord network, auto-tags the
held-out documents, and walks the user-facing operations: Suggest Tag,
AutoTag, Library search, and the Tag Cloud.

Run:  python examples/quickstart.py
"""

from repro import P2PDocTaggerSystem
from repro.data import DeliciousGenerator


def main() -> None:
    print("== P2PDocTagger quickstart ==\n")

    # 1. A personal-document corpus: 8 users, multi-tagged text documents.
    corpus = DeliciousGenerator(
        num_users=8,
        seed=7,
        num_tags=8,
        docs_per_user_range=(25, 35),
    ).generate()
    print(f"corpus: {corpus.summary()}\n")

    # 2. The system: 20% of each user's documents are manually tagged
    #    (the paper's bootstrap), the rest get tagged automatically.
    system = P2PDocTaggerSystem.from_corpus(
        corpus, algorithm="pace", seed=7, train_fraction=0.2
    )
    print(
        f"peers: {len(system.peers)}, training docs: {len(system.train_corpus)}, "
        f"to auto-tag: {len(system.test_corpus)}"
    )

    # 3. Collaborative learning over the simulated P2P network.
    system.train()
    stats = system.scenario.stats
    print(
        f"trained; network traffic: {stats.total_messages} messages, "
        f"{stats.total_bytes} bytes\n"
    )

    # 4. Suggest Tag on one untagged document (the Fig. 3 interaction).
    document = system.test_corpus[0]
    peer = system.peer_of(document)
    suggestions = peer.suggest_tags(document, confidence_threshold=0.3)
    print("Suggestion Cloud for one document (struck-out = low confidence):")
    print(" ", " ".join(s.render() for s in suggestions))
    print(f"  true tags were: {sorted(document.tags)}\n")

    # 5. AutoTag everything and evaluate against the users' true tags.
    report = system.evaluate(max_documents=100)
    print("evaluation:", report.summary(), "\n")

    # 6. Library: tag metadata persists and is browsable/searchable.
    system.auto_tag_all()
    some_peer = system.peers[0]
    print("peer 0 library:", some_peer.library.summary())
    tags = some_peer.library.tags()
    if tags:
        tag = tags[0]
        docs = some_peer.library.browse_by_tag(tag, min_confidence=0.4)
        print(f"peer 0 documents tagged {tag!r} (confidence >= 0.4): {docs[:8]}")

    # 7. The tag cloud over everything the network has tagged.
    cloud = system.global_tag_cloud()
    print("\nglobal tag cloud:", cloud.ascii_cloud(max_tags=12))
    print("tag communities:", [sorted(c) for c in cloud.communities()])


if __name__ == "__main__":
    main()
