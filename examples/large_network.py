#!/usr/bin/env python3
"""A DHT network with 500+ peers (the paper's demonstration scale).

Two parts:

1. **Overlay at scale** — a 512-peer Chord ring: routing hop statistics,
   deterministic super-peer election for a set of tags, and lookup behaviour
   while a quarter of the network churns out and stabilization repairs it.
2. **Collaborative tagging at scale** — P2PDocTagger training over a network
   of 500 peers (use --peers to shrink for quick runs), with the 20/80
   protocol of the demonstration.

Run:  python examples/large_network.py [--peers 500]
"""

import argparse
import statistics

from repro.bench.reporting import format_table
from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.data import DeliciousGenerator
from repro.overlay.chord import ChordOverlay
from repro.overlay.idspace import key_id_for
from repro.overlay.superpeer import SuperPeerDirectory


def overlay_at_scale(n: int = 512) -> None:
    print(f"-- Chord ring with {n} peers --")
    overlay = ChordOverlay()
    for address in range(n):
        overlay.join(address)
    overlay.stabilize()

    hops = [
        overlay.route(i % n, key_id_for(f"key{i}")).hops for i in range(200)
    ]
    print(
        f"lookup hops: mean={statistics.mean(hops):.2f} "
        f"max={max(hops)} (log2 N = {n.bit_length() - 1})"
    )

    directory = SuperPeerDirectory(overlay, num_regions=4)
    rows = []
    for tag in ("music", "travel", "linux", "recipes"):
        owners = directory.owners(0, tag)
        rows.append([tag] + [owners[r] for r in range(4)])
    print(
        format_table(
            "Deterministic super-peer election (4 regions)",
            ["tag", "region0", "region1", "region2", "region3"],
            rows,
        )
    )

    # Crash 25% of peers; measure lookup success before/after stabilize.
    for address in range(0, n, 4):
        overlay.leave(address)
    stale_success = sum(
        overlay.route(1 + (i % (n - 1)) | 1, key_id_for(f"x{i}")).success
        for i in range(100)
    )
    overlay.stabilize()
    repaired_success = sum(
        overlay.route(1 + (i % (n - 1)) | 1, key_id_for(f"x{i}")).success
        for i in range(100)
    )
    print(
        f"after 25% crash: lookup success {stale_success}% stale -> "
        f"{repaired_success}% after stabilize\n"
    )


def tagging_at_scale(peers: int, seed: int = 0) -> None:
    print(f"-- P2PDocTagger over {peers} peers --")
    corpus = DeliciousGenerator(
        num_users=peers,
        seed=seed,
        num_tags=12,
        docs_per_user_range=(8, 12),  # scaled-down per-user holdings
        vocabulary_size=800,
        doc_length_range=(30, 60),
    ).generate()
    print(f"corpus: {corpus.summary()}")

    system = P2PDocTaggerSystem(
        corpus,
        SystemConfig(
            algorithm="pace",
            train_fraction=0.2,
            seed=seed,
            algorithm_options={"top_k": 10},
        ),
    )
    system.train()
    report = system.evaluate(max_documents=150)
    print("evaluation:", report.summary())
    stats = system.scenario.stats
    busiest = max(stats.per_peer_received.values(), default=0)
    print(
        f"traffic: {stats.total_messages} messages, {stats.total_bytes} bytes; "
        f"busiest peer received {busiest} bytes "
        f"({100 * busiest / max(1, stats.total_bytes):.1f}% of total)\n"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peers", type=int, default=500)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    overlay_at_scale(512)
    tagging_at_scale(args.peers, args.seed)


if __name__ == "__main__":
    main()
