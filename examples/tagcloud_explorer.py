#!/usr/bin/env python3
"""Tag Cloud explorer: reproducing the Fig. 4 observation.

The paper's tag cloud shows "two clusters of highly interconnected tags
bridged by the word 'navigation'".  This example plants exactly that
structure in the generator (two concept groups sharing one bridge tag),
lets the network auto-tag everything, and then analyses the resulting
co-occurrence graph: communities, bridges, and the rendered cloud.

Run:  python examples/tagcloud_explorer.py
"""

from repro.bench.reporting import format_table
from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.data import DeliciousGenerator


def main() -> None:
    generator = DeliciousGenerator(
        num_users=12,
        seed=3,
        num_tags=10,
        num_tag_groups=2,
        bridge_tags=1,
        within_group_bias=0.9,
        docs_per_user_range=(30, 30),
    )
    planted_bridge = next(
        tag for tag in generator.tags if len(generator.groups_of(tag)) == 2
    )
    print("tag universe:", ", ".join(generator.tags))
    print(f"planted bridge tag: {planted_bridge!r}\n")

    corpus = generator.generate()
    system = P2PDocTaggerSystem(
        corpus, SystemConfig(algorithm="cempar", train_fraction=0.2, seed=3)
    )
    system.train()
    system.auto_tag_all()

    cloud = system.global_tag_cloud()
    print("rendered cloud:", cloud.ascii_cloud())
    print()

    rows = [
        [index, len(community), ", ".join(sorted(community))]
        for index, community in enumerate(cloud.communities())
    ]
    print(format_table("Detected tag communities", ["id", "size", "tags"], rows))

    bridges = cloud.bridge_tags(top=3)
    print(f"detected bridge tags: {bridges}")
    print(f"planted bridge recovered: {planted_bridge in bridges}\n")

    entries = sorted(cloud.entries(), key=lambda e: -e.frequency)[:8]
    print(
        format_table(
            "Cloud entries (font size from frequency, as in Fig. 3/4)",
            ["tag", "frequency", "font", "community"],
            [[e.tag, e.frequency, e.font_size, e.community] for e in entries],
        )
    )

    strongest = sorted(
        (
            (cloud.cooccurrence(a, b), a, b)
            for a in cloud.frequencies()
            for b in cloud.frequencies()
            if a < b and cloud.cooccurrence(a, b) > 0
        ),
        reverse=True,
    )[:6]
    print(
        format_table(
            "Strongest co-occurrence edges",
            ["count", "tag A", "tag B"],
            [[count, a, b] for count, a, b in strongest],
        )
    )


if __name__ == "__main__":
    main()
