#!/usr/bin/env python3
"""The demo GUI's File Browser workflow (paper Fig. 3, §2 step 1).

"First, users select documents (or folders containing documents) that they
wish to tag.  This ensures that all files processed by the system are
approved by the users."

This example lays a user's documents out in a virtual directory tree,
navigates it, selects one folder and one extra file, and pushes exactly the
approved set through Suggest-Tag / AutoTag — unapproved files are never
touched.

Run:  python examples/filebrowser_workflow.py
"""

from repro.core.filebrowser import FileBrowser, VirtualFileSystem
from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.data import DeliciousGenerator


def main() -> None:
    corpus = DeliciousGenerator(
        num_users=6, seed=11, num_tags=8, docs_per_user_range=(20, 25)
    ).generate()
    system = P2PDocTaggerSystem(
        corpus, SystemConfig(algorithm="cempar", train_fraction=0.25, seed=11)
    )
    system.train()

    # Lay user 0's *untagged* documents out as a file tree.
    user_docs = [d for d in system.test_corpus if d.owner == 0]
    fs = VirtualFileSystem.from_documents(user_docs, folders=3)
    browser = FileBrowser(fs)
    peer = system.peers[0]

    print("-- browsing --")
    browser.cd("/home/user/documents")
    subdirs, files = browser.ls()
    print(f"cwd: {browser.cwd}")
    print(f"folders here: {subdirs}")

    print("\n-- selecting a folder (recursive) + one extra file --")
    added = browser.select("folder00")
    print(f"selected folder00: {added} files")
    extra_dir = subdirs[1]
    _, extra_files = fs.list_directory(extra_dir)
    browser.select(extra_files[0])
    print(f"selected extra file: {extra_files[0]}")
    print(f"total approved: {len(browser)} of {len(fs)} files")

    print("\n-- tagging ONLY the approved set --")
    for document in browser.selected_documents()[:5]:
        suggestions = peer.suggest_tags(document, confidence_threshold=0.3)
        rendered = " ".join(s.render() for s in suggestions[:5])
        assigned = peer.auto_tag(document.untagged())
        print(
            f"doc {document.doc_id}: suggested [{rendered}] "
            f"-> AutoTag {sorted(assigned)}"
        )
    for document in browser.selected_documents()[5:]:
        peer.auto_tag(document.untagged())

    tagged = set(peer.store.documents())
    approved = {d.doc_id for d in browser.selected_documents()}
    untouched = {d.doc_id for d in user_docs} - approved
    print(
        f"\napproved & tagged: {len(approved & tagged)}; "
        f"unapproved & untouched: {len(untouched - tagged)}/{len(untouched)}"
    )
    print("library:", peer.library.summary())


if __name__ == "__main__":
    main()
