#!/usr/bin/env python3
"""P2PDMT showcase: churn models, overlay topologies, data distributions.

The paper demonstrates "how to setup these different simulation
environments for realistic P2P data mining simulations" — this example
sweeps the same knobs: churn model and rate, overlay topology, and the
size/class distribution of training data, reporting tagging accuracy and
network behaviour for each.

Run:  python examples/churn_study.py
"""

from repro.bench.harness import ExperimentSetting, build_system
from repro.bench.reporting import format_table
from repro.sim.visualize import ascii_summary, connectivity_report

BASE = dict(num_users=10, docs_per_user=30, train_fraction=0.2, seed=1)


def churn_sweep() -> None:
    rows = []
    for churn, session in (
        ("none", 0.0),
        ("exponential", 900.0),
        ("exponential", 300.0),
        ("weibull", 300.0),
        ("pareto", 300.0),
    ):
        system = build_system(
            ExperimentSetting(
                algorithm="cempar",
                churn=churn,
                mean_session=session or 600.0,
                mean_downtime=60.0,
                **BASE,
            )
        )
        system.train()
        report = system.evaluate(max_documents=40)
        counters = system.scenario.stats.counters
        rows.append(
            [
                churn,
                f"{session:.0f}" if session else "-",
                report.metrics.micro_f1,
                counters.get("churn_leaves", 0),
                counters.get("cempar_upload_skipped", 0),
                counters.get("stabilize_rounds", 0),
            ]
        )
    print(
        format_table(
            "Churn model sweep (CEMPaR over Chord)",
            ["churn", "mean_session", "microF1", "leaves", "lost_uploads",
             "stabilizations"],
            rows,
        )
    )


def overlay_sweep() -> None:
    rows = []
    for overlay in ("chord", "kademlia", "unstructured"):
        system = build_system(
            ExperimentSetting(algorithm="pace", overlay=overlay, **BASE)
        )
        system.train()
        report = system.evaluate(max_documents=40)
        connectivity = connectivity_report(system.scenario.overlay)
        rows.append(
            [
                overlay,
                report.metrics.micro_f1,
                report.total_messages,
                int(connectivity["components"]),
            ]
        )
    print(
        format_table(
            "Overlay topology sweep (PACE propagation)",
            ["overlay", "microF1", "messages", "components"],
            rows,
        )
    )


def distribution_sweep() -> None:
    rows = []
    for label, concentration in (("iid-ish", 50.0), ("moderate", 0.5),
                                 ("sharp", 0.1)):
        for algorithm in ("cempar", "local"):
            system = build_system(
                ExperimentSetting(
                    algorithm=algorithm,
                    interest_concentration=concentration,
                    **BASE,
                )
            )
            system.train()
            report = system.evaluate(max_documents=40)
            rows.append([label, algorithm, report.metrics.micro_f1,
                         report.metrics.macro_f1])
    print(
        format_table(
            "Class-distribution sweep: collaboration vs isolation",
            ["user_skew", "algorithm", "microF1", "macroF1"],
            rows,
        )
    )


def show_one_overlay() -> None:
    system = build_system(ExperimentSetting(algorithm="local", **BASE))
    print("Overlay summary for the scenario network:")
    print(ascii_summary(system.scenario.overlay))
    print()


def main() -> None:
    show_one_overlay()
    churn_sweep()
    overlay_sweep()
    distribution_sweep()


if __name__ == "__main__":
    main()
