#!/usr/bin/env python3
"""The paper's §3 demonstration, end to end.

Reproduces the demonstration protocol: a Delicious-like corpus (users
holding 50-200 annotated documents — scaled via --users/--docs), 20 % of
tagged documents used for training, the remaining 80 % stripped and tagged
automatically; CEMPaR and PACE compared against the centralized, local-only
and popularity baselines; then the interactive operations — manual tagging,
AutoTag, Suggest Tag with the confidence slider, and tag refinement.

Run:  python examples/delicious_demo.py [--users 12] [--docs 40]
"""

import argparse

from repro.bench.reporting import format_table
from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.data import DeliciousGenerator


def build_corpus(users: int, docs: int, seed: int):
    return DeliciousGenerator(
        num_users=users,
        seed=seed,
        num_tags=10,
        docs_per_user_range=(docs, docs),
    ).generate()


def compare_algorithms(corpus, seed: int) -> None:
    rows = []
    for algorithm in ("centralized", "cempar", "pace", "local", "popularity"):
        system = P2PDocTaggerSystem(
            corpus,
            SystemConfig(algorithm=algorithm, train_fraction=0.2, seed=seed),
        )
        system.train()
        report = system.evaluate(max_documents=80)
        rows.append(
            [
                algorithm,
                report.metrics.micro_f1,
                report.metrics.macro_f1,
                report.total_messages,
                report.total_bytes,
            ]
        )
    print(
        format_table(
            "Demonstration: 20% manual / 80% auto-tagged",
            ["algorithm", "microF1", "macroF1", "messages", "bytes"],
            rows,
        )
    )


def interactive_walkthrough(corpus, seed: int) -> None:
    system = P2PDocTaggerSystem(
        corpus, SystemConfig(algorithm="cempar", train_fraction=0.2, seed=seed)
    )
    system.train()

    document = system.test_corpus[0]
    peer = system.peer_of(document)

    print("-- Suggest Tag (Fig. 3) --")
    for threshold in (0.2, 0.5):
        suggestions = peer.suggest_tags(document, confidence_threshold=threshold)
        rendered = " ".join(s.render() for s in suggestions)
        print(f"confidence slider at {threshold}: {rendered}")
    print(f"true tags: {sorted(document.tags)}\n")

    print("-- AutoTag --")
    assigned = peer.auto_tag(document.untagged())
    print(f"AutoTag assigned: {sorted(assigned)}\n")

    print("-- Manual tagging --")
    peer.manual_tag(document.doc_id, ["my-own-tag"])
    print(f"tags now: {sorted(peer.store.tags_of(document.doc_id))}\n")

    print("-- Refinement (localized conflict resolution) --")
    fired = peer.refine(document, sorted(document.tags))
    print(
        f"correction recorded (retrain batched: fired={fired}); "
        f"pending={system.refinement.pending_count}\n"
    )

    print("-- Library browsing --")
    system.auto_tag_all()
    print(peer.library.summary())
    for tag in peer.library.tags()[:3]:
        print(f"  {tag}: {peer.library.browse_by_tag(tag)[:6]}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=12)
    parser.add_argument("--docs", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corpus = build_corpus(args.users, args.docs, args.seed)
    print(f"corpus: {corpus.summary()}\n")
    compare_algorithms(corpus, args.seed)
    interactive_walkthrough(corpus, args.seed)


if __name__ == "__main__":
    main()
