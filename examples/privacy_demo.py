#!/usr/bin/env python3
"""Privacy walkthrough: what leaves a peer, and how to harden it.

The paper's privacy story has three layers, all exercised here:

1. **Preprocessing** (§2): stop words and *user-specified sensitive words*
   never enter the document vectors, and word order is discarded — shared
   vectors are word-id/frequency multisets.
2. **Algorithm choice**: PACE never propagates document vectors at all
   (weights + centroids only); CEMPaR propagates support vectors, which are
   document vectors but not reconstructable text.
3. **Pluggability** (§2): swapping in a privacy-preserving P2P classifier
   hardens the whole system — demonstrated with PrivatePace (Laplace-
   randomized bundles) and its privacy/utility curve.

Run:  python examples/privacy_demo.py
"""

from repro.bench.reporting import format_table
from repro.data import DeliciousGenerator
from repro.data.splits import per_user_split
from repro.ml.metrics import micro_f1
from repro.p2pclass.base import corpus_to_peer_data
from repro.p2pclass.pace import PaceClassifier, PaceConfig
from repro.p2pclass.private import PrivatePaceClassifier, PrivatePaceConfig
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.trace import MessageTrace
from repro.text.sensitive import SensitiveWordFilter
from repro.text.vectorizer import PreprocessingPipeline

NUM_PEERS = 10


def sensitive_words_never_leave() -> None:
    print("-- layer 1: sensitive-word filtering --")
    pipeline = PreprocessingPipeline(
        sensitive_filter=SensitiveWordFilter(["projectx", "salar*"])
    )
    text = "the projectx budget and salary adjustments for salaries review"
    tokens = pipeline.tokens(text)
    print(f"text:    {text!r}")
    print(f"tokens after filtering + stemming: {tokens}")
    assert "projectx" not in tokens
    assert not any(t.startswith("salar") for t in tokens)
    print("sensitive words removed before any vector is built\n")


def build_setting(seed=0):
    corpus = DeliciousGenerator(
        num_users=NUM_PEERS, seed=seed, num_tags=8,
        docs_per_user_range=(30, 30),
    ).generate()
    train, test = per_user_split(corpus, 0.2, seed=seed)
    pipeline = PreprocessingPipeline(dimension=2 ** 16)
    peer_data = corpus_to_peer_data(train, pipeline)
    test_items = [
        (pipeline.process(d.text), d.tags, d.owner)
        for d in test.documents[:50]
    ]
    return peer_data, test_items, corpus.tag_universe()


def fresh_scenario():
    return Scenario(
        ScenarioConfig(
            num_peers=NUM_PEERS, shard=ShardSpec(num_peers=NUM_PEERS), seed=0
        )
    )


def inspect_wire_content(peer_data, tags) -> None:
    print("-- layer 2: what PACE actually transmits --")
    scenario = fresh_scenario()
    classifier = PaceClassifier(scenario, peer_data, tags, PaceConfig())
    with MessageTrace().attach(scenario.network) as trace:
        classifier.train()
    records = trace.records(msg_type="pace.model_broadcast")
    print(f"model broadcasts on the wire: {len(records)}")
    sample = classifier._received[0][1]
    print(
        "a bundle contains: "
        f"{len(sample.models)} per-tag weight vectors, "
        f"{len(sample.centroids)} centroids, "
        f"{len(sample.accuracies)} accuracy scalars — no documents, no text"
    )
    print(f"bundle wire size: {sample.wire_size()} bytes\n")


def privacy_utility_curve(peer_data, test_items, tags) -> None:
    print("-- layer 3: pluggable privacy (randomized bundles) --")

    def evaluate(classifier):
        true_sets, predicted = [], []
        for vector, doc_tags, owner in test_items:
            true_sets.append(doc_tags)
            predicted.append(classifier.predict_tags(owner, vector))
        return micro_f1(true_sets, predicted, tags)

    rows = []
    plain = PaceClassifier(fresh_scenario(), peer_data, tags, PaceConfig())
    plain.train()
    rows.append(["plain pace", "-", evaluate(plain)])
    for epsilon in (10.0, 1.0, 0.1):
        private = PrivatePaceClassifier(
            fresh_scenario(), peer_data, tags,
            PrivatePaceConfig(epsilon=epsilon),
        )
        private.train()
        rows.append(["private-pace", epsilon, evaluate(private)])
    print(
        format_table(
            "Privacy/utility trade-off",
            ["classifier", "epsilon", "microF1"],
            rows,
        )
    )


def main() -> None:
    sensitive_words_never_leave()
    peer_data, test_items, tags = build_setting()
    inspect_wire_content(peer_data, tags)
    privacy_utility_curve(peer_data, test_items, tags)


if __name__ == "__main__":
    main()
