"""Tests for the linear (Pegasos) and kernel (SMO) SVMs."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.kernel_svm import KernelSVM
from repro.ml.linear_svm import LinearSVM, LinearSVMModel
from repro.ml.sparse import SparseVector


def make_linearly_separable(n=60, seed=0):
    """Two Gaussian blobs along feature 0/1, labels by which blob."""
    rng = np.random.default_rng(seed)
    vectors, labels = [], []
    for _ in range(n // 2):
        vectors.append(
            SparseVector({0: 2.0 + rng.normal(0, 0.3), 1: rng.normal(0, 0.3)})
        )
        labels.append(1)
        vectors.append(
            SparseVector({0: -2.0 + rng.normal(0, 0.3), 1: rng.normal(0, 0.3)})
        )
        labels.append(-1)
    return vectors, labels


def make_xor(n=80, seed=1):
    """XOR pattern — not linearly separable, RBF should solve it."""
    rng = np.random.default_rng(seed)
    vectors, labels = [], []
    for _ in range(n // 4):
        for sx, sy in ((1, 1), (-1, -1), (1, -1), (-1, 1)):
            x = sx * (1.0 + rng.normal(0, 0.1))
            y = sy * (1.0 + rng.normal(0, 0.1))
            vectors.append(SparseVector({0: x, 1: y}))
            labels.append(1 if sx * sy > 0 else -1)
    return vectors, labels


class TestLinearSVM:
    def test_separable_data_high_accuracy(self):
        vectors, labels = make_linearly_separable()
        svm = LinearSVM(epochs=20, seed=3).fit(vectors, labels)
        assert svm.accuracy(vectors, labels) >= 0.95

    def test_predict_signs(self):
        vectors, labels = make_linearly_separable()
        svm = LinearSVM(epochs=20).fit(vectors, labels)
        assert svm.predict(SparseVector({0: 3.0})) == 1
        assert svm.predict(SparseVector({0: -3.0})) == -1

    def test_one_class_degenerate(self):
        vectors = [SparseVector({0: 1.0}), SparseVector({1: 1.0})]
        svm = LinearSVM().fit(vectors, [1, 1])
        assert svm.predict(SparseVector({5: 1.0})) == 1

    def test_empty_training_raises(self):
        with pytest.raises(ConfigurationError):
            LinearSVM().fit([], [])

    def test_bad_labels_raise(self):
        with pytest.raises(ConfigurationError):
            LinearSVM().fit([SparseVector({0: 1.0})], [2])

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            LinearSVM().fit([SparseVector({0: 1.0})], [1, -1])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            LinearSVM().predict(SparseVector({0: 1.0}))

    def test_deterministic_given_seed(self):
        vectors, labels = make_linearly_separable()
        m1 = LinearSVM(seed=7).fit(vectors, labels).model
        m2 = LinearSVM(seed=7).fit(vectors, labels).model
        assert m1.weights == m2.weights
        assert m1.bias == m2.bias

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            LinearSVM(lambda_reg=0.0)
        with pytest.raises(ConfigurationError):
            LinearSVM(epochs=0)

    def test_accuracy_on_empty_eval_is_one(self):
        vectors, labels = make_linearly_separable(n=10)
        svm = LinearSVM().fit(vectors, labels)
        assert svm.accuracy([], []) == 1.0


class TestLinearSVMModel:
    def test_truncation_keeps_largest_weights(self):
        model = LinearSVMModel(
            weights=SparseVector({1: 0.1, 2: -5.0, 3: 2.0}), bias=0.5
        )
        truncated = model.truncated(2)
        assert set(truncated.weights.keys()) == {2, 3}
        assert truncated.bias == 0.5

    def test_truncation_noop_when_small(self):
        model = LinearSVMModel(weights=SparseVector({1: 1.0}), bias=0.0)
        assert model.truncated(10) is model

    def test_truncation_invalid(self):
        model = LinearSVMModel(weights=SparseVector({1: 1.0}), bias=0.0)
        with pytest.raises(ConfigurationError):
            model.truncated(0)

    def test_wire_size(self):
        model = LinearSVMModel(weights=SparseVector({1: 1.0, 2: 2.0}), bias=0.0)
        assert model.wire_size() == 24 + 8


class TestKernelSVM:
    def test_separable_linear_kernel(self):
        vectors, labels = make_linearly_separable()
        svm = KernelSVM(kernel_name="linear", C=10.0).fit(vectors, labels)
        assert svm.accuracy(vectors, labels) >= 0.95

    def test_xor_needs_rbf(self):
        vectors, labels = make_xor()
        rbf = KernelSVM(kernel_name="rbf", gamma=1.0, C=10.0).fit(vectors, labels)
        assert rbf.accuracy(vectors, labels) >= 0.9

    def test_support_vectors_subset_of_training(self):
        vectors, labels = make_linearly_separable(n=30)
        svm = KernelSVM(C=1.0).fit(vectors, labels)
        train_set = set(vectors)
        assert svm.model.num_support_vectors >= 1
        for sv in svm.model.support_vectors:
            assert sv.vector in train_set
            assert sv.label in (-1, 1)
            assert 0 < sv.alpha <= 1.0 + 1e-9

    def test_one_class_degenerate(self):
        svm = KernelSVM().fit([SparseVector({0: 1.0})], [-1])
        assert svm.predict(SparseVector({9: 2.0})) == -1
        assert svm.model.num_support_vectors == 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            KernelSVM().predict(SparseVector({0: 1.0}))

    def test_model_wire_size_positive(self):
        vectors, labels = make_linearly_separable(n=20)
        svm = KernelSVM().fit(vectors, labels)
        assert svm.model.wire_size() > 16

    def test_training_pairs_roundtrip(self):
        vectors, labels = make_linearly_separable(n=20)
        svm = KernelSVM().fit(vectors, labels)
        vs, ys = svm.model.training_pairs()
        assert len(vs) == len(ys) == svm.model.num_support_vectors

    def test_invalid_hyperparameters(self):
        with pytest.raises(ConfigurationError):
            KernelSVM(C=-1.0)
        with pytest.raises(ConfigurationError):
            KernelSVM(gamma=0.0)

    def test_deterministic_given_seed(self):
        vectors, labels = make_linearly_separable(n=30)
        m1 = KernelSVM(seed=5).fit(vectors, labels).model
        m2 = KernelSVM(seed=5).fit(vectors, labels).model
        assert m1.bias == m2.bias
        assert m1.num_support_vectors == m2.num_support_vectors
