"""Tests for repro.ml.sparse, including hypothesis property tests."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.sparse import SparseVector

# Values are bounded away from zero: term frequencies / weights never carry
# float dust, and squared-norm arithmetic underflows below ~1e-150.
_magnitude = st.floats(min_value=1e-3, max_value=100.0)
sparse_entries = st.dictionaries(
    keys=st.integers(min_value=0, max_value=200),
    values=st.one_of(_magnitude, _magnitude.map(lambda x: -x)),
    max_size=20,
)


def sv(d):
    return SparseVector(d)


class TestConstruction:
    def test_zero_values_dropped(self):
        v = sv({1: 0.0, 2: 3.0})
        assert 1 not in v
        assert v[2] == 3.0
        assert v.nnz == 1

    def test_from_counts(self):
        v = SparseVector.from_counts({5: 2, 9: 1})
        assert v[5] == 2.0
        assert v[9] == 1.0

    def test_from_dense_roundtrip(self):
        dense = np.array([0.0, 1.5, 0.0, -2.0])
        v = SparseVector.from_dense(dense)
        assert v.to_dict() == {1: 1.5, 3: -2.0}
        np.testing.assert_allclose(v.to_dense(4), dense)

    def test_from_pairs(self):
        v = SparseVector([(1, 2.0), (3, 0.0)])
        assert v.to_dict() == {1: 2.0}

    def test_missing_key_is_zero(self):
        v = sv({1: 1.0})
        assert v[999] == 0.0
        assert v.get(999) == 0.0
        assert v.get(999, -1.0) == -1.0


class TestAlgebra:
    def test_dot_disjoint_is_zero(self):
        assert sv({1: 2.0}).dot(sv({2: 3.0})) == 0.0

    def test_dot_overlap(self):
        assert sv({1: 2.0, 2: 1.0}).dot(sv({1: 3.0, 3: 5.0})) == 6.0

    def test_add_with_scale(self):
        result = sv({1: 1.0}).add(sv({1: 2.0, 2: 1.0}), scale=2.0)
        assert result.to_dict() == {1: 5.0, 2: 2.0}

    def test_add_cancellation_removes_entry(self):
        result = sv({1: 2.0}).add(sv({1: -2.0}))
        assert result.nnz == 0

    def test_scale_zero_gives_empty(self):
        assert sv({1: 5.0}).scale(0.0).nnz == 0

    def test_norm(self):
        assert sv({1: 3.0, 2: 4.0}).norm() == pytest.approx(5.0)

    def test_normalized_unit_norm(self):
        v = sv({1: 3.0, 2: 4.0}).normalized()
        assert v.norm() == pytest.approx(1.0)

    def test_normalized_zero_vector(self):
        assert sv({}).normalized().nnz == 0

    def test_distance_symmetry(self):
        a, b = sv({1: 1.0}), sv({2: 2.0})
        assert a.distance(b) == pytest.approx(b.distance(a))
        assert a.distance(b) == pytest.approx(math.sqrt(5.0))

    def test_cosine_of_parallel_vectors(self):
        a = sv({1: 1.0, 2: 2.0})
        assert a.cosine_similarity(a.scale(3.0)) == pytest.approx(1.0)

    def test_cosine_with_zero_vector(self):
        assert sv({1: 1.0}).cosine_similarity(sv({})) == 0.0

    def test_dot_dense_ignores_out_of_range(self):
        weights = np.array([1.0, 2.0])
        assert sv({0: 1.0, 5: 7.0}).dot_dense(weights) == 1.0


class TestMisc:
    def test_max_index(self):
        assert sv({3: 1.0, 17: 1.0}).max_index() == 17
        assert sv({}).max_index() == -1

    def test_wire_size(self):
        assert sv({1: 1.0, 2: 2.0}).wire_size() == 24
        assert sv({}).wire_size() == 0

    def test_equality_and_hash(self):
        assert sv({1: 1.0}) == sv({1: 1.0})
        assert sv({1: 1.0}) != sv({1: 2.0})
        assert hash(sv({1: 1.0})) == hash(sv({1: 1.0}))

    def test_to_dense_drops_out_of_range(self):
        dense = sv({0: 1.0, 10: 5.0}).to_dense(2)
        np.testing.assert_allclose(dense, [1.0, 0.0])


@given(sparse_entries, sparse_entries)
def test_dot_commutative(a, b):
    va, vb = sv(a), sv(b)
    assert va.dot(vb) == pytest.approx(vb.dot(va))


@given(sparse_entries, sparse_entries)
def test_add_matches_dense_addition(a, b):
    va, vb = sv(a), sv(b)
    dim = max(va.max_index(), vb.max_index(), 0) + 1
    np.testing.assert_allclose(
        va.add(vb).to_dense(dim),
        va.to_dense(dim) + vb.to_dense(dim),
        atol=1e-9,
    )


@given(sparse_entries)
def test_norm_matches_numpy(a):
    va = sv(a)
    dim = va.max_index() + 1 if va.nnz else 1
    assert va.norm() == pytest.approx(
        float(np.linalg.norm(va.to_dense(dim))), abs=1e-9
    )


@given(sparse_entries, sparse_entries)
def test_triangle_inequality(a, b):
    va, vb = sv(a), sv(b)
    assert va.distance(vb) <= va.norm() + vb.norm() + 1e-6


@given(sparse_entries, sparse_entries)
def test_cauchy_schwarz(a, b):
    va, vb = sv(a), sv(b)
    assert abs(va.dot(vb)) <= va.norm() * vb.norm() + 1e-6


@given(sparse_entries)
def test_normalized_idempotent(a):
    v = sv(a).normalized()
    again = v.normalized()
    assert v.distance(again) == pytest.approx(0.0, abs=1e-6)
