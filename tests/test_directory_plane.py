"""Unit tests for the directory-served control plane (repro.sim.shard).

The differential fuzz (tests/test_shard_equivalence.py) proves end-to-end
byte-identity; this file pins the machinery underneath it:

- overlay snapshot/restore round trips and diff/apply equivalence for every
  registered overlay (the "route resolution against a snapshot view"
  contract);
- delta *ordering* at a window barrier when several control events tie on
  virtual time — a crafted constant-session churn model makes every peer
  leave at exactly the same instant, which real exponential draws never do;
- stop-churn suppression: records published past the stop time must no-op
  exactly like the replicated driver's queued-but-inactive events;
- the advance cursor (no duplicate or missed records across windows) and
  the service-traffic accounting staying outside golden fingerprints.
"""

import numpy as np
import pytest

from repro.overlay import make_overlay, overlay_names
from repro.sim.churn import ChurnModel, DirectoryChurnClient
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.shard import DirectoryControlPlane, ShardedScenario
from repro.sim.stats import StatsCollector

from tests.determinism_fixtures import (
    SHARD_JITTER_FLOOR,
    build_scenario_config,
    digest_of,
    run_training_perpeer,
    training_workload,
)


class ConstantChurn(ChurnModel):
    """Every peer's session/downtime is the same constant: all leave events
    land on one virtual instant — the tie the ordering contract covers."""

    def __init__(self, session: float = 5.0, down: float = 2.0) -> None:
        self.session = session
        self.down = down

    def session_time(self, rng: np.random.Generator) -> float:
        return self.session

    def downtime(self, rng: np.random.Generator) -> float:
        return self.down


def _directory_config(overlay="chord", shards=2, variant="churn", seed=0):
    return build_scenario_config(
        overlay, variant, seed=seed, rng_mode="perpeer", shards=shards,
        control_plane="directory",
    )


# ---------------------------------------------------------------------------
# Overlay snapshot / delta machinery, per registered overlay.
# ---------------------------------------------------------------------------


def _build_joined(name, members=8):
    overlay = make_overlay(name, seed=3, degree=3)
    for address in range(members):
        overlay.join(address)
    stabilize = getattr(overlay, "stabilize", None)
    if callable(stabilize):
        stabilize()
    return overlay


def _observables(overlay):
    """Everything a worker reads from a view: membership, links, routes."""
    members = overlay.members()
    neighbors = {a: overlay.neighbors(a) for a in members}
    routes = [
        (r.owner, tuple(r.path), r.success)
        for a in members[:4]
        for r in [overlay.route(a, (a * 0x9E3779B9) & 0xFFFFFFFF)]
    ]
    return members, neighbors, routes


@pytest.mark.parametrize("name", overlay_names())
def test_snapshot_restore_round_trip(name):
    authority = _build_joined(name)
    view = make_overlay(name, seed=3, degree=3)
    view.restore_state(authority.export_state())
    assert _observables(view) == _observables(authority)
    # Restoration computes nothing: the construction-cost counter is the
    # numeric witness the O(N/K) claim rests on.
    assert view.entries_built == 0
    assert authority.entries_built > 0


@pytest.mark.parametrize("name", overlay_names())
def test_maintenance_diff_applies_to_an_identical_view(name):
    authority = _build_joined(name)
    view = make_overlay(name, seed=3, degree=3)
    view.restore_state(authority.export_state())

    # A churn leave is a replicated membership op on both sides...
    authority.leave(2)
    view.leave(2)
    # ...then maintenance recomputes on the authority only and is served
    # to the view as route-table edits.
    before = authority.export_state()
    stabilize = getattr(authority, "stabilize", None)
    if callable(stabilize):
        stabilize()
    repair = getattr(authority, "repair", None)
    if callable(repair):
        repair()
    edits = authority.diff_state(before)
    built_before = view.entries_built
    view.apply_state_edits(edits)
    assert view.entries_built == built_before  # served, not computed
    assert _observables(view) == _observables(authority)
    # And the RNG-bearing overlays stay aligned for later replicated joins.
    authority.join(2)
    view.join(2)
    assert _observables(view) == _observables(authority)


def test_diff_state_is_empty_without_changes():
    authority = _build_joined("chord")
    before = authority.export_state()
    assert authority.diff_state(before) == []


# ---------------------------------------------------------------------------
# Plane mechanics: ordering ties, the advance cursor, stop suppression.
# ---------------------------------------------------------------------------


def test_tied_delta_records_order_by_generation_seq(monkeypatch):
    """Five leaves at exactly t=5.0: emission order must be the schedule
    order (peer-address order), the order the replicated driver pops them."""
    monkeypatch.setattr(
        ScenarioConfig, "build_churn_model", lambda self: ConstantChurn()
    )
    plane = DirectoryControlPlane(_directory_config())
    plane.handle_requests([("start_churn", 0.0)])
    records = plane.advance(6.0)
    assert [kind for _, kind, _ in records] == ["leave"] * 5
    assert [payload for _, _, payload in records] == [0, 1, 2, 3, 4]
    assert all(time == 5.0 for time, _, _ in records)
    # The rejoins tie too, at 7.0, again in peer order.
    rejoins = plane.advance(8.0)
    assert [(kind, payload) for _, kind, payload in rejoins] == [
        ("join", peer) for peer in range(5)
    ]


def test_advance_cursor_never_duplicates_or_misses(monkeypatch):
    monkeypatch.setattr(
        ScenarioConfig, "build_churn_model", lambda self: ConstantChurn()
    )
    plane = DirectoryControlPlane(_directory_config())
    plane.handle_requests([("start_churn", 0.0)])
    seen = []
    # Windows that revisit earlier horizons must not re-emit anything.
    for until in (1.0, 5.0, 4.0, 5.0, 7.5, 7.5, 40.0):
        seen.extend(plane.advance(until))
    times = [time for time, _, _ in seen]
    assert times == sorted(times)
    leaves = [r for r in seen if r[1] == "leave"]
    joins = [r for r in seen if r[1] == "join"]
    maint = [r for r in seen if r[1] == "maintenance"]
    # 5.0 leave, 7.0 rejoin, 12.0 leave, 14.0 rejoin, ... up to 40:
    assert len(leaves) == 5 * len({5.0, 12.0, 19.0, 26.0, 33.0, 40.0})
    assert len(joins) == 5 * len({7.0, 14.0, 21.0, 28.0, 35.0})
    assert len(maint) == 1  # stabilize interval is 30s in the fixtures
    assert plane.records_emitted == len(seen)


def test_stop_churn_deactivates_future_events(monkeypatch):
    monkeypatch.setattr(
        ScenarioConfig, "build_churn_model", lambda self: ConstantChurn()
    )
    plane = DirectoryControlPlane(_directory_config())
    plane.handle_requests([("start_churn", 0.0)])
    assert len(plane.advance(6.0)) == 5
    plane.handle_requests([("stop_churn", 6.0)])
    # The queued rejoins (7.0) and everything after fire inactive — the
    # churn chains die out; only the stabilize chain keeps publishing,
    # exactly like the replicated kernel's unconditional reschedule.
    later = plane.advance(100.0)
    assert [r for r in later if r[1] != "maintenance"] == []
    assert [time for time, kind, _ in later if kind == "maintenance"] == [
        30.0, 60.0, 90.0,
    ]


def test_stop_behind_published_churn_fails_loudly(monkeypatch):
    """A stop instant with churn records already published past it means
    the authoritative overlay executed membership changes the fleet
    suppressed — later maintenance diffs would serve diverged state.  The
    plane must refuse rather than silently break byte-identity."""
    from repro.errors import SimulationError

    monkeypatch.setattr(
        ScenarioConfig, "build_churn_model", lambda self: ConstantChurn()
    )
    plane = DirectoryControlPlane(_directory_config())
    plane.handle_requests([("start_churn", 0.0)])
    plane.advance(20.0)  # publishes leaves @5, joins @7, leaves @12, ...
    with pytest.raises(SimulationError, match="stop_churn at t=10.0"):
        plane.handle_requests([("stop_churn", 10.0)])


def test_client_suppresses_served_records_past_local_stop_time():
    """A record published before the directory learned of stop() must no-op
    on the worker — DirectoryChurnClient mirrors the driver's _active gate."""

    class _Sim:
        now = 10.0

    requests = []
    client = DirectoryChurnClient(
        _Sim(), ConstantChurn(), lambda kind, t: requests.append((kind, t))
    )
    client.start([0, 1, 2])
    assert requests == [("start_churn", 10.0)]
    assert not client.suppresses(11.0)
    client.stop()
    assert requests[-1] == ("stop_churn", 10.0)
    assert client.suppresses(10.5)
    assert not client.suppresses(10.0)  # at-or-before stop still applies


def test_no_churn_model_sends_no_start_request():
    class _Sim:
        now = 0.0

    requests = []
    config = _directory_config(variant="none")
    client = DirectoryChurnClient(
        _Sim(), config.build_churn_model(), lambda *a: requests.append(a)
    )
    client.start([0, 1])
    assert requests == []


# ---------------------------------------------------------------------------
# End to end: crafted ties stay byte-identical across every kernel shape.
# ---------------------------------------------------------------------------


def test_tied_barrier_deltas_are_byte_identical_across_kernels(monkeypatch):
    monkeypatch.setattr(
        ScenarioConfig, "build_churn_model", lambda self: ConstantChurn()
    )
    stats, now = run_training_perpeer("nbagg", "chord", "churn")
    reference = digest_of(stats, now)
    workload = training_workload("nbagg", "churn")
    serial = ShardedScenario(
        _directory_config(shards=3), executor="serial"
    ).run(workload)
    assert serial.digest() == reference
    parallel = ShardedScenario(
        _directory_config(shards=3), executor="mp"
    ).run(workload)
    assert parallel.digest() == reference


# ---------------------------------------------------------------------------
# Service-traffic accounting stays out of the fingerprint.
# ---------------------------------------------------------------------------


def test_directory_counters_do_not_touch_the_fingerprint():
    stats = StatsCollector()
    stats.record_traffic("m", 100, src=1, dst=2)
    before = stats.fingerprint_bytes()
    stats.record_directory(7, 1234, edits=3)
    assert stats.fingerprint_bytes() == before
    assert stats.directory_summary() == {
        "control_bytes": 1234,
        "control_edits": 3,
        "control_records": 7,
    }
    merged = StatsCollector()
    merged.merge(stats)
    assert merged.directory_summary() == stats.directory_summary()
    assert merged.fingerprint_bytes() == before


def test_directory_run_reports_service_traffic():
    run = ShardedScenario(
        _directory_config(shards=2), executor="serial"
    ).run(training_workload("pace", "churn"))
    assert run.control_plane == "directory"
    assert run.control_records > 0
    assert run.control_bytes > 0
    # Every worker applied every record: K x emitted.
    assert (
        run.stats.directory["control_records"] == 2 * run.control_records
    )


def test_plain_scenario_rejects_directory_config():
    from repro.errors import ConfigurationError

    config = ScenarioConfig(num_peers=4, control_plane="directory")
    with pytest.raises(ConfigurationError):
        config.validate()
    config = _directory_config()
    with pytest.raises(ConfigurationError):
        Scenario(config)
