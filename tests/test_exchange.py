"""Unit and property tests for the columnar shard exchange.

Covers the pieces the differential fuzz only exercises end-to-end: the
``ExchangeFrame`` encode→decode round trip under randomized
payload/msg_type mixes, ``merge_frames`` against the tuple-sort reference,
ring-buffer wraparound at frame boundaries, oversized frames (must refuse
and fall back, never block), zero-record windows, K > N shard grids with
empty frames, receive-deadline starvation, and the mp worker-crash
regression (a dead worker must surface as a loud error, not a hang).
"""

import os
import pickle
import random

import pytest

from repro.errors import SimulationError
from repro.sim.distribution import ShardSpec
from repro.sim.exchange import (
    ExchangeFrame,
    RingExchange,
    ShardRing,
    exchange_timeout_seconds,
    merge_frames,
    ring_capacity_bytes,
    scalar_exchange_enabled,
)
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.shard import ShardedScenario, scenario_digest

MSG_TYPES = ("model", "gossip", "route", "ack", "x" * 40)


def _record(rng, src_shard, seq, payload_mode):
    """One ExchangeRecord tuple with a randomized payload/msg_type mix."""
    if payload_mode == "none":
        payload = None
    elif payload_mode == "mixed":
        payload = (
            None
            if rng.random() < 0.5
            else {"weights": [rng.random() for _ in range(3)], "seq": seq}
        )
    else:
        payload = ("blob", rng.randrange(1 << 30))
    return (
        round(rng.uniform(0.0, 50.0), 6),
        src_shard,
        seq,
        rng.randrange(0, 64),
        rng.randrange(0, 64),
        rng.choice(MSG_TYPES),
        payload,
        rng.randrange(1, 4096),
        rng.randrange(1, 8192),
        rng.randrange(1, 4),
    )


def _frame_of(rng, src_shard, count, payload_mode="none", barrier=0):
    records = [
        _record(rng, src_shard, seq, payload_mode) for seq in range(1, count + 1)
    ]
    return records, ExchangeFrame.from_records(records)


# ---------------------------------------------------------------------------
# Frame codec: encode → decode round trip.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("payload_mode", ["none", "mixed", "all"])
@pytest.mark.parametrize("seed", range(8))
def test_encode_decode_round_trip_property(seed, payload_mode):
    rng = random.Random(0xE0 + seed)
    records, frame = _frame_of(
        rng, src_shard=seed % 5, count=rng.randrange(1, 200),
        payload_mode=payload_mode,
    )
    blob = frame.encode(barrier=seed * 7)
    decoded, barrier = ExchangeFrame.decode(blob)
    assert barrier == seed * 7
    assert decoded.count == frame.count
    assert decoded.src_shard == frame.src_shard
    assert decoded.to_records() == records
    # payload sidecar only exists when a record carries a real object
    if payload_mode == "none":
        assert decoded.payloads is None and decoded.payload_count == 0
    else:
        assert decoded.payload_count == sum(
            1 for r in records if r[6] is not None
        )


def test_decode_rejects_foreign_bytes():
    with pytest.raises(SimulationError, match="magic"):
        ExchangeFrame.decode(pickle.dumps(("not", "a", "frame")))


def test_columns_are_plain_python_after_merge():
    """Nothing numpy-typed may leak into stats/Counter/json paths."""
    rng = random.Random(1)
    _, frame = _frame_of(rng, src_shard=0, count=10, payload_mode="mixed")
    times, columns = merge_frames([frame])
    assert all(type(t) is float for t in times)
    src, dst, msg_types, payloads, sizes, wires, hops = columns
    for column in (src, dst, sizes, wires, hops):
        assert all(type(v) is int for v in column)
    assert all(type(t) is str for t in msg_types)


@pytest.mark.parametrize("seed", range(6))
def test_merge_frames_matches_tuple_sort_reference(seed):
    """The lexsort merge must reproduce the queue path's
    (deliver_time, src_shard, seq) tuple sort exactly."""
    rng = random.Random(0x3E + seed)
    all_records = []
    frames = []
    for src_shard in range(rng.randrange(1, 5)):
        records, frame = _frame_of(
            rng, src_shard, count=rng.randrange(1, 60), payload_mode="mixed"
        )
        all_records.extend(records)
        frames.append(frame)
    reference = sorted(all_records, key=lambda r: (r[0], r[1], r[2]))
    times, columns = merge_frames(frames)
    assert times == [r[0] for r in reference]
    for got, want_index in zip(columns, (3, 4, 5, 6, 7, 8, 9)):
        assert list(got) == [r[want_index] for r in reference]


# ---------------------------------------------------------------------------
# SPSC ring buffer.
# ---------------------------------------------------------------------------


def _ring(capacity):
    return ShardRing(memoryview(bytearray(capacity + 16)))


def test_ring_wraparound_at_frame_boundaries():
    """Frames must survive byte-wise wraparound across the region end —
    push/pop far more total bytes than the capacity, at varied sizes."""
    ring = _ring(64)
    rng = random.Random(7)
    for i in range(500):
        payload = bytes([i % 256]) * rng.randrange(1, 40)
        assert ring.try_push(payload)
        assert ring.try_pop() == payload
    assert ring.try_pop() is None


def test_ring_interleaved_two_in_flight():
    ring = _ring(128)
    backlog = []
    rng = random.Random(11)
    for i in range(300):
        payload = os.urandom(rng.randrange(1, 40))
        assert ring.try_push(payload)
        backlog.append(payload)
        if len(backlog) == 2:  # the barrier protocol's occupancy bound
            assert ring.try_pop() == backlog.pop(0)
    while backlog:
        assert ring.try_pop() == backlog.pop(0)


def test_ring_refuses_oversized_frame_without_blocking():
    ring = _ring(32)
    assert not ring.try_push(b"y" * 64)  # larger than the ring itself
    assert ring.try_push(b"z" * 8)  # and the ring still works
    assert ring.try_pop() == b"z" * 8
    # exactly-fitting frame: capacity minus the 4-byte length prefix
    assert ring.try_push(b"f" * 28)
    assert not ring.try_push(b"")  # full: even an empty frame needs 4 bytes
    assert ring.try_pop() == b"f" * 28


def test_ring_refuses_when_full_until_reader_drains():
    ring = _ring(40)
    assert ring.try_push(b"a" * 16)
    assert not ring.try_push(b"b" * 24)  # no space while unread
    assert ring.try_pop() == b"a" * 16
    assert ring.try_push(b"b" * 24)
    assert ring.try_pop() == b"b" * 24


def test_ring_pop_wait_times_out_loudly():
    ring = _ring(32)
    with pytest.raises(SimulationError, match="starved"):
        ring.pop_wait(timeout=0.05, context="test")


def test_ring_exchange_grid_is_pairwise_independent():
    rings = RingExchange(3, capacity=64)
    try:
        for src in range(3):
            for dst in range(3):
                if src != dst:
                    assert rings.ring(src, dst).try_push(
                        bytes([src, dst]) * 4
                    )
        for src in range(3):
            for dst in range(3):
                if src != dst:
                    assert rings.ring(src, dst).try_pop() == (
                        bytes([src, dst]) * 4
                    )
    finally:
        rings.destroy()


def test_ring_capacity_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_EXCHANGE_RING_KB_TOTAL", "1024")
    monkeypatch.setenv("REPRO_EXCHANGE_RING_KB_MIN", "16")
    assert ring_capacity_bytes(2) == 1024 * 1024 // 4
    assert ring_capacity_bytes(64) == 16 * 1024  # floor wins at high K


def test_scalar_exchange_env_switch(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR_EXCHANGE", raising=False)
    assert not scalar_exchange_enabled()
    monkeypatch.setenv("REPRO_SCALAR_EXCHANGE", "0")
    assert not scalar_exchange_enabled()
    monkeypatch.setenv("REPRO_SCALAR_EXCHANGE", "1")
    assert scalar_exchange_enabled()
    # the old `not in ("", "0")` idiom parsed "false" as truthy; env_flag
    # fixes that drift
    monkeypatch.setenv("REPRO_SCALAR_EXCHANGE", "false")
    assert not scalar_exchange_enabled()


@pytest.mark.parametrize("bad", ["", "abc", "-1", "1.5", "0x20"])
def test_ring_total_env_rejects_bad_values(monkeypatch, bad):
    """Malformed/empty/negative budget knobs must raise a SimulationError
    naming the variable, not a bare ValueError at fork time."""
    monkeypatch.setenv("REPRO_EXCHANGE_RING_KB_TOTAL", bad)
    with pytest.raises(SimulationError, match="REPRO_EXCHANGE_RING_KB_TOTAL"):
        ring_capacity_bytes(2)


@pytest.mark.parametrize("bad", ["", "abc", "-8", "0"])
def test_ring_min_env_rejects_bad_values(monkeypatch, bad):
    """A zero or negative floor would allow zero-capacity rings that force
    every frame onto the fallback queue; reject at startup."""
    monkeypatch.setenv("REPRO_EXCHANGE_RING_KB_MIN", bad)
    with pytest.raises(SimulationError, match="REPRO_EXCHANGE_RING_KB_MIN"):
        ring_capacity_bytes(2)


def test_ring_total_zero_stays_legal_with_positive_floor(monkeypatch):
    # TOTAL=0 deliberately remains valid: the MIN >= 1 floor guarantees
    # positive ring capacity (the oversized-frame fallback test relies on
    # forcing minimum-size rings this way).
    monkeypatch.setenv("REPRO_EXCHANGE_RING_KB_TOTAL", "0")
    monkeypatch.setenv("REPRO_EXCHANGE_RING_KB_MIN", "1")
    assert ring_capacity_bytes(2) == 1024


@pytest.mark.parametrize("bad", ["", "abc", "0", "-3", "inf", "nan"])
def test_exchange_timeout_env_rejects_bad_values(monkeypatch, bad):
    monkeypatch.setenv("REPRO_EXCHANGE_TIMEOUT_S", bad)
    with pytest.raises(SimulationError, match="REPRO_EXCHANGE_TIMEOUT_S"):
        exchange_timeout_seconds()


def test_exchange_timeout_env_accepts_fractional(monkeypatch):
    monkeypatch.setenv("REPRO_EXCHANGE_TIMEOUT_S", "2.5")
    assert exchange_timeout_seconds() == 2.5


# ---------------------------------------------------------------------------
# End-to-end edge cases through the sharded kernel.
# ---------------------------------------------------------------------------


def _config(num_peers, shards, **overrides):
    options = dict(
        num_peers=num_peers,
        overlay="fullmesh",
        churn="none",
        rng_mode="perpeer",
        jitter_floor=0.5,
        shards=shards,
        shard=ShardSpec(num_peers=num_peers),
        seed=5,
    )
    options.update(overrides)
    return ScenarioConfig(**options)


def _ping_workload(scenario):
    """A couple of cross-shard sends with long quiet stretches between
    them — exercises zero-record windows on both sides of real traffic."""
    network = scenario.network
    if scenario.owns(0):
        network.broadcast_block(0, [1, 2, 3], "ping", None, 64)
    scenario.simulator.run_until_idle()
    if scenario.owns(1):
        network.broadcast_block(1, [0], "pong", {"echo": 1}, 32)
    scenario.simulator.run_until_idle()
    return None


@pytest.mark.parametrize("executor", ["serial", "mp"])
def test_zero_record_windows_and_quiet_runs(executor):
    reference = Scenario(_config(4, shards=0))
    _ping_workload(reference)
    run = ShardedScenario(_config(4, shards=2), executor=executor).run(
        _ping_workload
    )
    assert run.digest() == scenario_digest(
        reference.stats, reference.simulator.now
    )
    assert run.stats.exchange["records"] > 0


@pytest.mark.parametrize("executor", ["serial", "mp"])
def test_more_shards_than_peers_with_empty_frames(executor):
    """K > N: some shards own zero peers and every window ships empty
    outboxes from them; digests must still match the unsharded kernel."""
    reference = Scenario(_config(3, shards=0))
    _ping_workload(reference)
    run = ShardedScenario(_config(3, shards=6), executor=executor).run(
        _ping_workload
    )
    assert run.digest() == scenario_digest(
        reference.stats, reference.simulator.now
    )
    # empty outboxes never become frames
    windows_with_traffic = run.stats.exchange["frames"]
    assert 0 < windows_with_traffic <= run.windows * run.shards


def test_oversized_frame_takes_queue_fallback(monkeypatch):
    """A frame bigger than its ring must arrive via the queue fallback —
    loudly counted, byte-identical, and without a ring grow or deadlock."""
    monkeypatch.setenv("REPRO_EXCHANGE_RING_KB_TOTAL", "0")
    monkeypatch.setenv("REPRO_EXCHANGE_RING_KB_MIN", "1")  # 1 KiB rings
    reference = Scenario(_config(8, shards=0))
    _storm_workload(reference)
    run = ShardedScenario(_config(8, shards=2), executor="mp").run(
        _storm_workload
    )
    assert run.digest() == scenario_digest(
        reference.stats, reference.simulator.now
    )
    assert run.stats.exchange["queue_fallbacks"] > 0


def _storm_workload(scenario):
    network = scenario.network
    for src in range(8):
        if scenario.owns(src):
            dsts = [d for d in range(8) if d != src]
            # 64 broadcasts per peer -> multi-KiB frames per window
            for _ in range(64):
                network.broadcast_block(src, dsts, "storm", None, 256)
    scenario.simulator.run_until_idle()
    return None


def test_mp_worker_hard_crash_propagates(monkeypatch):
    """A worker dying mid-window (no exception report — the process just
    exits) must abort the fleet with a loud error, never hang the
    barrier."""
    monkeypatch.setenv("REPRO_EXCHANGE_TIMEOUT_S", "10")

    def workload(scenario):
        network = scenario.network
        if scenario.owns(0):
            network.broadcast_block(0, [1, 2, 3], "ping", None, 64)
        if scenario.owns(1):
            scenario.simulator.schedule_at(
                0.5, lambda: os._exit(3), label="die"
            )
        scenario.simulator.run_until_idle()
        return None

    with pytest.raises(SimulationError, match="died mid-window"):
        ShardedScenario(_config(4, shards=2), executor="mp").run(workload)
