"""Tests for the Porter stemmer against the published algorithm's examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.porter import PorterStemmer, stem

# (input, expected) pairs taken from Porter's 1980 paper, step by step.
PAPER_PAIRS = [
    # Step 1a
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    # Step 1b
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    # Step 1b post-processing
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    # Step 1c
    ("happy", "happi"),
    ("sky", "sky"),
    # Step 2
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    # Step 3
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    # Step 4
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    # Step 5a
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    # Step 5b
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", PAPER_PAIRS)
def test_paper_examples(word, expected):
    assert stem(word) == expected


class TestStemmerBehaviour:
    def test_short_words_unchanged(self):
        for word in ("a", "is", "be", "we"):
            assert stem(word) == word

    def test_idempotent_on_common_words(self):
        # Porter is not idempotent in general, but stems of these common
        # words are fixed points; re-stemming must not drift.
        for word in ("run", "tag", "peer", "network", "cat"):
            once = stem(word)
            assert stem(once) == once

    def test_related_forms_share_a_stem(self):
        assert stem("tagging") == stem("tagged")
        assert stem("connection") == stem("connected") == stem("connecting")
        assert stem("classification") != ""

    def test_instance_and_module_agree(self):
        stemmer = PorterStemmer()
        for word in ("caresses", "happiness", "relational"):
            assert stemmer.stem(word) == stem(word)

    def test_empty_string(self):
        assert stem("") == ""


@given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), max_size=25))
def test_stem_never_longer_than_input(word):
    assert len(stem(word)) <= max(len(word), 0) + 1  # step1b may add 'e'


@given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), max_size=25))
def test_stem_is_deterministic(word):
    assert stem(word) == stem(word)


@given(
    st.text(
        alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"),
        min_size=3,
        max_size=25,
    )
)
def test_stem_output_is_lowercase_alpha(word):
    result = stem(word)
    assert result.isalpha() or result == ""
    assert result == result.lower()
