"""Unit tests for the sharded kernel's window machinery.

Covers the pieces the differential fuzz suite exercises only end-to-end:
lookahead computation from the latency model's bounds, exchange-queue
routing and the ``(time, src_shard, seq)`` tie-break, ``pending_events``
accounting across window barriers (in-flight cross-shard records count at
the source until exchanged), churn knocking out an in-flight cross-shard
delivery, window skipping over empty stretches, and the configuration
guard rails.
"""

import math

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.distribution import ShardSpec
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, PeerStreams, stream_seed
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.shard import (
    ShardedScenario,
    _decide,
    compute_lookahead,
    scenario_digest,
    shard_of,
)

INF = float("inf")


def _config(num_peers=4, shards=2, **overrides):
    options = dict(
        num_peers=num_peers,
        overlay="fullmesh",
        churn="none",
        rng_mode="perpeer",
        jitter_floor=0.5,
        shards=shards,
        shard=ShardSpec(num_peers=num_peers),
        seed=3,
    )
    options.update(overrides)
    return ScenarioConfig(**options)


def _run_both(workload, num_peers=4, shards=2):
    """Run one SPMD workload on the unsharded kernel and the K-shard serial
    executor; returns ((stats, now), ShardedRun)."""
    reference = Scenario(_config(num_peers=num_peers, shards=0))
    workload(reference)
    run = ShardedScenario(_config(num_peers=num_peers, shards=shards)).run(
        workload
    )
    return (reference.stats, reference.simulator.now), run


# ---------------------------------------------------------------------------
# Lookahead.
# ---------------------------------------------------------------------------


def test_lookahead_from_jitter_floor():
    model = LatencyModel(
        base_latency=0.05, jitter_fraction=0.2, jitter_floor=0.5
    )
    # min pair factor (0.5) x base latency x jitter floor
    assert compute_lookahead(model) == pytest.approx(0.5 * 0.05 * 0.5)


def test_lookahead_without_jitter_uses_unit_factor():
    model = LatencyModel(base_latency=0.08, jitter_fraction=0.0)
    assert compute_lookahead(model) == pytest.approx(0.5 * 0.08)


@pytest.mark.parametrize(
    "model",
    [
        LatencyModel(base_latency=0.05, jitter_fraction=0.2, jitter_floor=0.0),
        LatencyModel(base_latency=0.0, jitter_fraction=0.0),
    ],
)
def test_lookahead_rejects_unbounded_delays(model):
    with pytest.raises(ConfigurationError):
        compute_lookahead(model)


def test_jitter_floor_clamps_delay_distribution():
    import numpy as np

    model = LatencyModel(
        base_latency=0.05, jitter_fraction=0.9, jitter_floor=0.5,
        bandwidth=1e12,
    )
    rng = np.random.default_rng(0)
    sizes = np.full(4000, 40.0)
    delays = model.delays_for(sizes, rng)
    assert delays.min() >= 0.05 * 0.5 - 1e-12
    # The clamp actually engaged for this sigma (some draws fell below).
    assert (delays <= 0.05 * 0.5 + 1e-9).any()


# ---------------------------------------------------------------------------
# Partition rule and per-peer streams.
# ---------------------------------------------------------------------------


def test_shard_of_partitions_every_address():
    for num_shards in (1, 2, 3, 5):
        owners = [shard_of(address, num_shards) for address in range(40)]
        assert set(owners) == set(range(num_shards))
        # Round-robin: ownership is periodic, so load differs by at most 1.
        counts = [owners.count(shard) for shard in range(num_shards)]
        assert max(counts) - min(counts) <= 1


def test_stream_seed_distinct_per_peer_and_lane():
    seeds = {
        stream_seed(0, peer, lane) for peer in range(50) for lane in range(4)
    }
    assert len(seeds) == 200
    assert stream_seed(0, 3, 1) == stream_seed(0, 3, 1)
    assert stream_seed(0, 3, 1) != stream_seed(1, 3, 1)


def test_peer_streams_are_cached_and_independent():
    streams = PeerStreams(seed=7)
    assert streams.net_rng(2) is streams.net_rng(2)
    assert streams.net_rng(2) is not streams.loss_rng(2)
    draw_a = streams.net_rng(2).random()
    # A fresh instance replays the same stream from the start.
    assert PeerStreams(seed=7).net_rng(2).random() == draw_a


# ---------------------------------------------------------------------------
# Exchange routing and ordering.
# ---------------------------------------------------------------------------


def _record(deliver_at, src_shard, seq, dst=1):
    return (deliver_at, src_shard, seq, 0, dst, "m", None, 40, 40, 1)


def test_decide_routes_and_orders_by_time_shard_seq():
    # Shard 0 sends two records to shard 1 (out of order); shard 1 sends one
    # to shard 0 and one to shard 1's inbox from shard 2 ties on time.
    statuses = [
        ([[], [_record(5.0, 0, 2), _record(3.0, 0, 1)]], 7.0, 2.0, 3),
        ([[_record(4.0, 1, 1, dst=0)], []], INF, 2.5, 4),
        ([[], [_record(3.0, 2, 9)]], 6.0, -INF, 0),
    ]
    window_start, global_last, total_executed, inboxes = _decide(statuses)
    # Window opens at the earliest of next-event times and in-flight records.
    assert window_start == 3.0
    assert global_last == 2.5
    assert total_executed == 7
    assert [r[:3] for r in inboxes[0]] == [(4.0, 1, 1)]
    # Tie at t=3.0 breaks on src_shard, then seq; later times follow.
    assert [r[:3] for r in inboxes[1]] == [(3.0, 0, 1), (3.0, 2, 9), (5.0, 0, 2)]
    assert inboxes[2] == []


def test_decide_idle_when_no_events_or_records():
    statuses = [([[], []], INF, 1.5, 2), ([[], []], INF, 4.5, 2)]
    window_start, global_last, total_executed, _ = _decide(statuses)
    assert window_start == INF
    assert global_last == 4.5
    assert total_executed == 4


def test_conservative_injection_guard():
    """The kernel refuses events behind its clock — a violated lookahead
    contract surfaces as a loud SimulationError, never silent reordering."""
    simulator = Simulator(seed=0)
    simulator.schedule(1.0, lambda: None)
    simulator.run()
    with pytest.raises(SimulationError):
        simulator.schedule_batch_at([0.5], lambda: None)


# ---------------------------------------------------------------------------
# pending_events accounting across window barriers.
# ---------------------------------------------------------------------------


def test_pending_accounting_and_cross_shard_delivery():
    lookahead = compute_lookahead(
        LatencyModel(base_latency=0.05, jitter_fraction=0.2, jitter_floor=0.5)
    )

    def workload(scenario):
        observations = {}
        delivered = []
        simulator = scenario.simulator
        for peer in range(4):
            scenario.network.register(
                peer,
                lambda message, _peer=peer: delivered.append(
                    (_peer, message.src, simulator.now)
                ),
            )

        if scenario.owns(0):
            def fire():
                scenario.transport.send(0, 1, "probe", payload=b"x" * 24)
                # The record sits in the exchange outbox until the next
                # barrier — still a pending event of this shard.
                observations["pending_after_send"] = simulator.pending_events
            simulator.schedule_at(1.0, fire)
        simulator.run_until_idle()
        observations["delivered"] = delivered
        observations["now"] = simulator.now
        return observations

    (ref_stats, ref_now), run = _run_both(workload)

    source = next(r for r in run.results if "pending_after_send" in r)
    sink = next(r for r in run.results if r["delivered"])
    assert source is not sink
    # Outbox record counted as pending at the source before the barrier.
    assert source["pending_after_send"] == 1
    assert source["delivered"] == []
    # Exactly one delivery, at the sender-computed time, after >= lookahead.
    ((peer, src, at),) = sink["delivered"]
    assert (peer, src) == (1, 0)
    assert at >= 1.0 + lookahead
    # Merged observables match the unsharded kernel byte-for-byte,
    # including the delivery's effect on the final clock.
    assert run.digest() == scenario_digest(ref_stats, ref_now)
    assert run.stats.messages_by_type["probe"] == 1
    assert run.now == ref_now


def test_churn_knocks_out_in_flight_cross_shard_delivery():
    """A cross-shard message already in flight when its destination churns
    out lands undeliverable — identically to the single-heap kernel."""

    def workload(scenario):
        simulator = scenario.simulator
        for peer in range(4):
            scenario.network.register(peer, lambda message: None)

        if scenario.owns(0):
            simulator.schedule_at(
                1.0, lambda: scenario.transport.send(0, 1, "doomed")
            )
        # Replicated liveness event (like churn): every shard replica takes
        # peer 1 down just after the send, before any delivery is possible
        # (the earliest delivery is lookahead = 12.5ms after the send).
        simulator.schedule_at(
            1.001, lambda: scenario.network.set_down(1, True)
        )
        simulator.run_until_idle()
        return None

    (ref_stats, ref_now), run = _run_both(workload)
    assert run.stats.counters["messages_undeliverable"] == 1
    assert ref_stats.counters["messages_undeliverable"] == 1
    assert run.digest() == scenario_digest(ref_stats, ref_now)


def test_batched_sends_partition_across_shards():
    """A same-tick send_batch from one peer splits into local deliveries
    and exchange records, with observables identical to the single heap."""
    from repro.sim.messages import Message

    def workload(scenario):
        delivered = []
        simulator = scenario.simulator
        for peer in range(6):
            scenario.network.register(
                peer, lambda message: delivered.append(message.dst)
            )
        if scenario.owns(0):
            def fire():
                block = [
                    Message(src=0, dst=dst, msg_type="blk", size_bytes=100)
                    for dst in (1, 2, 3, 4, 5)
                ]
                scenario.transport.send_batch(block)
            simulator.schedule_at(0.5, fire)
        simulator.run_until_idle()
        return sorted(delivered)

    (ref_stats, ref_now), run = _run_both(workload, num_peers=6, shards=3)
    assert run.digest() == scenario_digest(ref_stats, ref_now)
    assert run.stats.messages_by_type["blk"] == 5
    received = sorted(dst for result in run.results for dst in result)
    assert received == [1, 2, 3, 4, 5]


# ---------------------------------------------------------------------------
# Window skipping.
# ---------------------------------------------------------------------------


def test_windows_skip_empty_virtual_time():
    """Barriers track event clusters, not virtual duration / lookahead: two
    events 100 virtual seconds apart must not cost thousands of windows."""

    def workload(scenario):
        simulator = scenario.simulator
        for peer in range(4):
            scenario.network.register(peer, lambda message: None)
        if scenario.owns(0):
            simulator.schedule_at(
                0.5, lambda: scenario.transport.send(0, 1, "early")
            )
            simulator.schedule_at(
                100.5, lambda: scenario.transport.send(0, 3, "late")
            )
        simulator.run_until_idle()
        return None

    (ref_stats, ref_now), run = _run_both(workload)
    assert run.digest() == scenario_digest(ref_stats, ref_now)
    assert run.windows < 20
    assert run.now == ref_now
    assert not math.isinf(run.now)


# ---------------------------------------------------------------------------
# Guard rails.
# ---------------------------------------------------------------------------


def test_plain_scenario_refuses_sharded_config():
    with pytest.raises(ConfigurationError):
        Scenario(_config(shards=2))


def test_sharded_config_requires_perpeer_randomness():
    with pytest.raises(ConfigurationError):
        _config(shards=2, rng_mode="stream").validate()


def test_sharded_config_requires_positive_jitter_floor():
    with pytest.raises(ConfigurationError):
        _config(shards=2, jitter_floor=0.0).validate()


def test_sharded_scenario_requires_at_least_one_shard():
    with pytest.raises(ConfigurationError):
        ShardedScenario(_config(shards=0))


def test_worker_failure_propagates():
    def workload(scenario):
        raise RuntimeError("boom in worker")

    with pytest.raises(SimulationError, match="boom in worker"):
        ShardedScenario(_config(shards=2)).run(workload)


def test_runaway_window_raises_instead_of_hanging():
    """A zero-delay schedule loop inside one window must surface as the
    quiesce guard (as on the unsharded kernel), not a barrier deadlock."""

    def workload(scenario):
        simulator = scenario.simulator
        if scenario.owns(0):
            def rebound():
                simulator.schedule(0.0, rebound)
            simulator.schedule_at(1.0, rebound)
        simulator.run_until_idle(max_events=5_000)
        return None

    with pytest.raises(SimulationError, match="did not quiesce"):
        ShardedScenario(_config(shards=2)).run(workload)


# ---------------------------------------------------------------------------
# The user-facing plumbing: SystemConfig.shards / CLI --shards.
# ---------------------------------------------------------------------------


def _tiny_corpus():
    from repro.data.delicious import DeliciousGenerator

    return DeliciousGenerator(
        num_users=5, seed=11, num_tags=4, docs_per_user_range=(6, 7),
        vocabulary_size=150, topic_words_per_tag=20,
        doc_length_range=(10, 16),
    ).generate()


@pytest.mark.parametrize("churn", ["none", "exponential"])
def test_system_trains_and_verifies_under_sharding(churn):
    """SystemConfig.shards >= 1: training replays through the K-shard
    kernel and the digest cross-check against the local kernel passes —
    the product-level form of the equivalence theorem."""
    from repro.core.tagger import P2PDocTaggerSystem, SystemConfig

    system = P2PDocTaggerSystem(
        _tiny_corpus(),
        SystemConfig(
            algorithm="nbagg", churn=churn, mean_session=60.0,
            mean_downtime=20.0, shards=2, seed=3,
        ),
    )
    assert system.sharded_run is None
    system.train()
    run = system.sharded_run
    assert run is not None and run.shards == 2 and run.executor == "serial"
    # Predictions serve from the verified local replica.
    report = system.evaluate(max_documents=5)
    assert 0.0 <= report.metrics.micro_f1 <= 1.0


def test_cli_exposes_shards_and_executor():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["run", "--algorithm", "pace", "--shards", "3", "--executor", "mp"]
    )
    assert args.shards == 3 and args.executor == "mp"
    defaults = build_parser().parse_args(["run"])
    assert defaults.shards == 0 and defaults.executor == "serial"
