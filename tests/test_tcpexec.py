"""The tcp executor's wire protocol, handshake, and failure modes.

Four layers of coverage:

- framing — length-prefixed frame round trips (property fuzz), and loud
  rejection of garbage magic, truncated headers, short payload reads,
  absurd lengths, and silent peers (per-read deadlines);
- connection robustness — the capped-exponential backoff schedule and
  ``connect_with_retry`` giving up loudly after ``REPRO_TCP_RETRIES``;
- handshake — version and config-fingerprint mismatches are run-fatal,
  duplicate/out-of-range shard claims and garbage connections are
  rejected while the slot stays open for the real worker;
- fault injection — a worker killed mid-window (``os._exit``) and a
  half-open socket both surface ``died mid-window`` within the deadline
  with full coordinator teardown (no hang, no orphan sockets, processes
  reaped), and a tcp checkpoint chopped mid-log resumes to the
  never-crashed digest.

The byte-identity contract itself (tcp ≡ mp ≡ serial ≡ unsharded) lives
in ``test_shard_equivalence.py``.
"""

import json
import os
import socket
import struct
import threading
import time

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import ScenarioConfig
from repro.sim.shard import ShardedScenario
from repro.sim.tcpexec import (
    _K_ERROR,
    _K_HELLO,
    _K_JOB,
    _K_READY,
    _K_WELCOME,
    _MAX_FRAME,
    _WIRE_HEADER,
    _WIRE_MAGIC,
    PROTOCOL_VERSION,
    TCP_RETRIES_ENV,
    TCP_TIMEOUT_ENV,
    TcpCoordinator,
    backoff_schedule,
    connect_with_retry,
    fingerprint_digest,
    parse_address,
    parse_hosts,
    recv_frame,
    send_frame,
    worker_main,
)
from repro.sim.wal import WalReader, truncate_wal


def _config(num_peers, shards, **overrides):
    options = dict(
        num_peers=num_peers,
        overlay="fullmesh",
        churn="none",
        rng_mode="perpeer",
        jitter_floor=0.5,
        shards=shards,
        shard=ShardSpec(num_peers=num_peers),
        seed=5,
    )
    options.update(overrides)
    return ScenarioConfig(**options)


class _StormWorkload:
    """The test_wal storm as a picklable class: every peer broadcasts 16
    batches to all others, so every window carries cross-shard frames."""

    def __call__(self, scenario):
        network = scenario.network
        for src in range(8):
            if scenario.owns(src):
                dsts = [d for d in range(8) if d != src]
                for _ in range(16):
                    network.broadcast_block(src, dsts, "storm", None, 256)
        scenario.simulator.run_until_idle()
        return None


class _CrashingWorkload:
    """The storm plus one timer on peer 1's shard that either kills the
    worker process hard (``die=True``) or does nothing — scheduled in
    both runs so the kernel's sequence cursor stays comparable."""

    def __init__(self, die):
        self.die = die

    def __call__(self, scenario):
        if scenario.owns(1):
            die = self.die
            scenario.simulator.schedule_at(
                1.6, (lambda: os._exit(3)) if die else (lambda: None),
                label="die",
            )
        return _StormWorkload()(scenario)


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def test_frame_round_trip_property_fuzz():
    """Random (kind, payload) frames survive the wire byte for byte,
    including empty and multi-chunk payloads."""
    import random

    rng = random.Random(0x7C9)
    a, b = _pair()
    try:
        for _ in range(50):
            kind = rng.randrange(1, 11)
            payload = bytes(
                rng.getrandbits(8) for _ in range(rng.choice((0, 1, 7, 400)))
            ) + (b"\x00" * rng.choice((0, 0, 65536)))
            send_frame(a, kind, payload)
            got_kind, got_payload = recv_frame(b, "fuzz")
            assert got_kind == kind
            assert got_payload == payload
    finally:
        a.close()
        b.close()


def test_bad_magic_rejected():
    a, b = _pair()
    try:
        a.sendall(struct.pack("<IBI", 0xDEADBEEF, 1, 0))
        with pytest.raises(SimulationError, match="bad frame magic"):
            recv_frame(b, "garbage")
    finally:
        a.close()
        b.close()


def test_absurd_length_rejected():
    a, b = _pair()
    try:
        a.sendall(struct.pack("<IBI", _WIRE_MAGIC, 1, _MAX_FRAME + 1))
        with pytest.raises(SimulationError, match="exceeds"):
            recv_frame(b, "oversize")
    finally:
        a.close()
        b.close()


def test_truncated_header_rejected():
    a, b = _pair()
    try:
        a.sendall(b"\x01\x02\x03")
        a.close()
        with pytest.raises(SimulationError, match="connection closed"):
            recv_frame(b, "truncated header")
    finally:
        b.close()


def test_short_payload_read_rejected():
    """A header promising more bytes than ever arrive is a dead peer, and
    the error says how far the read got."""
    a, b = _pair()
    try:
        a.sendall(_WIRE_HEADER.pack(_WIRE_MAGIC, 1, 100) + b"x" * 10)
        a.close()
        with pytest.raises(SimulationError, match=r"10 of 100 bytes"):
            recv_frame(b, "short payload")
    finally:
        b.close()


def test_silent_peer_hits_the_read_deadline():
    a, b = _pair()
    b.settimeout(0.2)
    try:
        start = time.monotonic()
        with pytest.raises(SimulationError, match=TCP_TIMEOUT_ENV):
            recv_frame(b, "silent peer")
        assert time.monotonic() - start < 2.0
    finally:
        a.close()
        b.close()


# ---------------------------------------------------------------------------
# Connect retry / backoff.
# ---------------------------------------------------------------------------


def test_backoff_schedule_is_capped_exponential():
    assert backoff_schedule(8) == [0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0]
    assert backoff_schedule(1) == []
    assert backoff_schedule(3, base=0.01, cap=0.015) == [0.01, 0.015]


def test_backoff_jitter_is_seeded_and_bounded():
    """Seeded jitter scales each delay into [0.5, 1.0) of the unjittered
    value — reproducible per seed, spread across seeds, and the default
    (unseeded) schedule stays exactly the historical one."""
    base = backoff_schedule(8)
    jittered = backoff_schedule(8, jitter_seed=7)
    assert jittered == backoff_schedule(8, jitter_seed=7)
    assert all(
        0.5 * delay <= value < delay
        for value, delay in zip(jittered, base)
    )
    assert jittered != backoff_schedule(8, jitter_seed=8)
    assert backoff_schedule(8, jitter_seed=None) == base


def test_connect_with_retry_gives_up_loudly():
    """A dead port exhausts the retry budget and the error names the
    attempt count and its knob."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    host, port = probe.getsockname()[:2]
    probe.close()  # nothing listens here now
    start = time.monotonic()
    with pytest.raises(SimulationError) as excinfo:
        connect_with_retry(host, port, retries=3, timeout=1.0)
    assert "3 attempts" in str(excinfo.value)
    assert TCP_RETRIES_ENV in str(excinfo.value)
    assert time.monotonic() - start < 5.0


def test_connect_with_retry_succeeds_once_listener_is_up():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    try:
        sock = connect_with_retry(host, port, retries=2, timeout=2.0)
        sock.close()
    finally:
        listener.close()


# ---------------------------------------------------------------------------
# Address / hosts specs and the config fingerprint.
# ---------------------------------------------------------------------------


def test_parse_address():
    assert parse_address("10.0.0.7:9001") == ("10.0.0.7", 9001)
    assert parse_address("9001") == ("127.0.0.1", 9001)
    with pytest.raises(ConfigurationError, match="HOST:PORT"):
        parse_address("nonsense")


def test_parse_hosts_broadcast_and_per_shard():
    assert parse_hosts(None, 3) == ["local", "local", "local"]
    assert parse_hosts("wait", 2) == ["wait", "wait"]
    assert parse_hosts("local, wait", 2) == ["local", "wait"]
    assert parse_hosts("ssh:alpha,ssh:beta", 2) == ["ssh:alpha", "ssh:beta"]
    with pytest.raises(ConfigurationError, match="2 workers"):
        parse_hosts("local,wait", 3)
    with pytest.raises(ConfigurationError, match="unknown tcp hosts entry"):
        parse_hosts("docker:x", 1)
    with pytest.raises(ConfigurationError, match="empty entry"):
        parse_hosts("local,,wait", 3)


def test_fingerprint_excludes_placement_but_not_physics():
    """Where workers run never changes scenario identity; the seed does."""
    base = _config(8, shards=2)
    moved = _config(
        8, shards=2, executor="tcp", tcp_hosts="wait", tcp_port=9001,
        wal="/tmp/x.wal", faults="seed=7,crash",
    )
    reseeded = _config(8, shards=2, seed=6)
    assert fingerprint_digest(base) == fingerprint_digest(moved)
    assert fingerprint_digest(base) != fingerprint_digest(reseeded)


# ---------------------------------------------------------------------------
# Handshake: fatal mismatches vs rejected connections.
# ---------------------------------------------------------------------------


def _coordinator(shards=2, hosts="wait"):
    config = _config(8, shards=shards, executor="tcp", tcp_hosts=hosts)
    lookahead = ShardedScenario(config, executor="tcp").lookahead
    return TcpCoordinator(config, shards, lookahead)


def _accept_in_thread(coordinator, fingerprint):
    outcome = {}

    def accept():
        try:
            coordinator._accept_workers(b"fake-job", fingerprint)
            outcome["done"] = True
        except SimulationError as exc:
            outcome["error"] = str(exc)

    thread = threading.Thread(target=accept, daemon=True)
    thread.start()
    return thread, outcome


def _handshake_client(host, port, shard, version=PROTOCOL_VERSION):
    """A scripted worker: HELLO → WELCOME → JOB → READY (parroting the
    announced fingerprint).  Returns the open socket."""
    sock = socket.create_connection((host, port), timeout=5.0)
    sock.settimeout(5.0)
    send_frame(
        sock, _K_HELLO,
        json.dumps({"version": version, "shard": shard}).encode(),
    )
    kind, payload = recv_frame(sock, "client awaiting welcome")
    if kind == _K_ERROR:
        return sock, kind, payload
    assert kind == _K_WELCOME
    welcome = json.loads(payload.decode())
    kind, job = recv_frame(sock, "client awaiting job")
    assert kind == _K_JOB
    send_frame(
        sock, _K_READY,
        json.dumps(
            {"shard": welcome["shard"], "fingerprint": welcome["fingerprint"]}
        ).encode(),
    )
    return sock, _K_WELCOME, payload


def test_version_mismatch_is_run_fatal(monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "10")
    coordinator = _coordinator(shards=1)
    host, port = coordinator.bind()
    fingerprint = fingerprint_digest(coordinator.config)
    thread, outcome = _accept_in_thread(coordinator, fingerprint)
    sock = socket.create_connection((host, port), timeout=5.0)
    sock.settimeout(5.0)
    send_frame(
        sock, _K_HELLO, json.dumps({"version": 99, "shard": 0}).encode()
    )
    kind, payload = recv_frame(sock, "skewed client")
    assert kind == _K_ERROR
    assert b"version mismatch" in payload
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert "version mismatch" in outcome["error"]
    sock.close()
    coordinator.close()


def test_fingerprint_mismatch_is_run_fatal(monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "10")
    coordinator = _coordinator(shards=1)
    host, port = coordinator.bind()
    fingerprint = fingerprint_digest(coordinator.config)
    thread, outcome = _accept_in_thread(coordinator, fingerprint)
    sock = socket.create_connection((host, port), timeout=5.0)
    sock.settimeout(5.0)
    send_frame(
        sock, _K_HELLO,
        json.dumps({"version": PROTOCOL_VERSION, "shard": 0}).encode(),
    )
    kind, _ = recv_frame(sock, "client awaiting welcome")
    assert kind == _K_WELCOME
    kind, _ = recv_frame(sock, "client awaiting job")
    assert kind == _K_JOB
    send_frame(
        sock, _K_READY,
        json.dumps({"shard": 0, "fingerprint": "not-the-fingerprint"}).encode(),
    )
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert "fingerprint mismatch" in outcome["error"]
    sock.close()
    coordinator.close()


def test_duplicate_claim_rejected_and_slot_stays_open(monkeypatch):
    """A second claim on a taken shard (and an out-of-range claim) gets an
    ERROR and a closed connection; the fleet still assembles."""
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "10")
    coordinator = _coordinator(shards=2)
    host, port = coordinator.bind()
    fingerprint = fingerprint_digest(coordinator.config)
    thread, outcome = _accept_in_thread(coordinator, fingerprint)

    first, kind, _ = _handshake_client(host, port, 0)
    assert kind == _K_WELCOME

    duplicate = socket.create_connection((host, port), timeout=5.0)
    duplicate.settimeout(5.0)
    send_frame(
        duplicate, _K_HELLO,
        json.dumps({"version": PROTOCOL_VERSION, "shard": 0}).encode(),
    )
    kind, payload = recv_frame(duplicate, "duplicate claimant")
    assert kind == _K_ERROR
    assert b"already claimed or out of range" in payload
    assert duplicate.recv(1) == b""  # coordinator closed it

    out_of_range = socket.create_connection((host, port), timeout=5.0)
    out_of_range.settimeout(5.0)
    send_frame(
        out_of_range, _K_HELLO,
        json.dumps({"version": PROTOCOL_VERSION, "shard": 7}).encode(),
    )
    kind, payload = recv_frame(out_of_range, "out-of-range claimant")
    assert kind == _K_ERROR
    assert b"already claimed or out of range" in payload

    second, kind, _ = _handshake_client(host, port, 1)
    assert kind == _K_WELCOME
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert outcome.get("done")
    assert coordinator.rejected == 2
    for sock in (first, duplicate, out_of_range, second):
        sock.close()
    coordinator.close()


def test_garbage_connection_rejected_fleet_still_assembles(monkeypatch):
    """An HTTP probe (or any non-worker noise) on the port is dropped
    without burning a shard slot."""
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "10")
    coordinator = _coordinator(shards=1)
    host, port = coordinator.bind()
    fingerprint = fingerprint_digest(coordinator.config)
    thread, outcome = _accept_in_thread(coordinator, fingerprint)

    noise = socket.create_connection((host, port), timeout=5.0)
    noise.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
    stub = socket.create_connection((host, port), timeout=5.0)
    stub.sendall(b"\x01\x02")
    stub.close()

    worker, kind, _ = _handshake_client(host, port, 0)
    assert kind == _K_WELCOME
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert outcome.get("done")
    assert coordinator.rejected == 2
    noise.close()
    worker.close()
    coordinator.close()


def test_worker_rejects_coordinator_version_skew():
    """The worker side of the version check: a WELCOME speaking another
    protocol version is fatal, and the worker reports it back."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    seen = {}

    def fake_coordinator():
        conn, _ = listener.accept()
        conn.settimeout(5.0)
        kind, payload = recv_frame(conn, "fake coordinator")
        seen["hello"] = (kind, json.loads(payload.decode()))
        send_frame(
            conn, _K_WELCOME,
            json.dumps(
                {"version": 99, "shard": 0, "fingerprint": "x", "sys_path": []}
            ).encode(),
        )
        kind, payload = recv_frame(conn, "fake coordinator awaiting error")
        seen["reply"] = (kind, payload)
        conn.close()

    thread = threading.Thread(target=fake_coordinator, daemon=True)
    thread.start()
    with pytest.raises(SimulationError, match="version mismatch"):
        worker_main(host, port, shard=0, retries=1, timeout=5.0)
    thread.join(timeout=5.0)
    listener.close()
    assert seen["hello"][0] == _K_HELLO
    assert seen["reply"][0] == _K_ERROR
    assert b"version mismatch" in seen["reply"][1]


# ---------------------------------------------------------------------------
# Fault injection: dead and half-open workers, and crash-consistent WALs.
# ---------------------------------------------------------------------------


def test_killed_worker_surfaces_died_mid_window(monkeypatch):
    """os._exit in a worker mid-window: a loud SimulationError well within
    the deadline, never a hang."""
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    start = time.monotonic()
    with pytest.raises(SimulationError, match="died mid-window"):
        ShardedScenario(
            _config(8, shards=2, executor="tcp")
        ).run(_CrashingWorkload(die=True))
    # The dead worker's socket closes on exit, so detection is EOF-fast —
    # far under even one read deadline.
    assert time.monotonic() - start < 30.0


def test_half_open_worker_surfaces_died_mid_window(monkeypatch):
    """A worker that handshakes then goes silent (half-open socket): the
    per-read deadline converts it into 'died mid-window', and teardown
    leaves no orphan sockets and no unreaped processes."""
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "5")
    config = _config(8, shards=2, executor="tcp", tcp_hosts="local,wait")
    lookahead = ShardedScenario(config, executor="tcp").lookahead
    coordinator = TcpCoordinator(config, 2, lookahead)
    host, port = coordinator.bind()
    outcome = {}

    def drive():
        try:
            coordinator.run(_StormWorkload())
        except SimulationError as exc:
            outcome["error"] = str(exc)

    thread = threading.Thread(target=drive, daemon=True)
    thread.start()
    # Claim shard 1 with a full handshake, then never sync.
    half_open, kind, _ = _handshake_client(host, port, 1)
    assert kind == _K_WELCOME
    start = time.monotonic()
    thread.join(timeout=60.0)
    assert not thread.is_alive(), "coordinator hung on a half-open worker"
    assert "worker 1 died mid-window" in outcome["error"]
    assert time.monotonic() - start < 30.0
    # Full teardown: listener and per-worker sockets closed, spawned
    # worker processes reaped.
    assert coordinator.listener.fileno() == -1
    for conn in coordinator.connections:
        assert conn is None or conn.fileno() == -1
    for _shard, process in coordinator.processes:
        assert process.poll() is not None
    half_open.close()


def test_tcp_checkpoint_chopped_midlog_resumes_to_reference(tmp_path):
    """Chop a tcp-written WAL mid-log (the crash simulator) and resume
    under tcp: the final digest equals the never-crashed run's."""
    reference = ShardedScenario(_config(8, shards=2)).run(_StormWorkload())
    wal = str(tmp_path / "storm.wal")
    full = ShardedScenario(
        _config(8, shards=2, executor="tcp", wal=wal)
    ).run(_StormWorkload())
    assert full.digest() == reference.digest()
    total = len(WalReader(wal).windows)
    assert total >= 3
    cut = str(tmp_path / "chopped.wal")
    truncate_wal(wal, total // 2, out_path=cut)
    assert WalReader(cut).commit is None
    resumed = ShardedScenario(
        _config(8, shards=2, executor="tcp", resume=cut)
    ).run(_StormWorkload())
    assert resumed.digest() == reference.digest()
    assert WalReader(cut).commit["digest"] == reference.digest()


def test_tcp_rejects_scalar_exchange(monkeypatch):
    """The tcp wire is frames-only; the legacy tuple path is refused
    loudly up front."""
    monkeypatch.setenv("REPRO_SCALAR_EXCHANGE", "1")
    with pytest.raises(ConfigurationError, match="SCALAR_EXCHANGE"):
        ShardedScenario(
            _config(8, shards=2, executor="tcp")
        ).run(_StormWorkload())
