"""Tests for corpus types, the Delicious generator, splits, and loaders."""

import numpy as np
import pytest

from repro.data.corpus import Corpus, Document
from repro.data.delicious import DeliciousGenerator, GeneratorConfig
from repro.data.loaders import load_corpus, save_corpus
from repro.data.splits import per_user_split, train_test_split
from repro.errors import DataError


def doc(doc_id, tags, owner=0, text="some text"):
    return Document(doc_id=doc_id, text=text, tags=frozenset(tags), owner=owner)


class TestDocument:
    def test_with_tags(self):
        d = doc(1, {"a"})
        d2 = d.with_tags({"b", "c"})
        assert d2.tags == {"b", "c"}
        assert d2.doc_id == 1 and d2.text == d.text

    def test_untagged(self):
        assert doc(1, {"a", "b"}).untagged().tags == frozenset()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            doc(1, {"a"}).text = "mutate"


class TestCorpus:
    def make(self):
        return Corpus(
            [
                doc(0, {"a", "b"}, owner=0),
                doc(1, {"a"}, owner=0),
                doc(2, {"c"}, owner=1),
                doc(3, set(), owner=1),
            ]
        )

    def test_len_iter_getitem(self):
        corpus = self.make()
        assert len(corpus) == 4
        assert corpus[2].doc_id == 2
        assert sum(1 for _ in corpus) == 4

    def test_owners_and_documents_of(self):
        corpus = self.make()
        assert corpus.owners == [0, 1]
        assert len(corpus.documents_of(0)) == 2
        assert corpus.documents_of(99) == []

    def test_tag_universe_sorted(self):
        assert self.make().tag_universe() == ["a", "b", "c"]

    def test_tag_counts(self):
        counts = self.make().tag_counts()
        assert counts["a"] == 2 and counts["b"] == 1

    def test_mean_tags_per_document(self):
        assert self.make().mean_tags_per_document() == pytest.approx(1.0)

    def test_filter_tags(self):
        filtered = self.make().filter_tags({"a"})
        assert filtered.tag_universe() == ["a"]

    def test_min_tag_support(self):
        pruned = self.make().restrict_to_min_tag_support(2)
        assert pruned.tag_universe() == ["a"]

    def test_user_profile(self):
        profile = self.make().user_profile(0)
        assert profile.num_documents == 2
        assert profile.tag_counts()["a"] == 2

    def test_summary_string(self):
        assert "docs=4" in self.make().summary()


class TestGeneratorConfig:
    def test_defaults_valid(self):
        GeneratorConfig().validate()

    def test_invalid_configs(self):
        with pytest.raises(DataError):
            GeneratorConfig(num_users=0).validate()
        with pytest.raises(DataError):
            GeneratorConfig(num_tags=1).validate()
        with pytest.raises(DataError):
            GeneratorConfig(docs_per_user_range=(5, 2)).validate()
        with pytest.raises(DataError):
            GeneratorConfig(vocabulary_size=10).validate()
        with pytest.raises(DataError):
            GeneratorConfig(interest_concentration=0).validate()
        with pytest.raises(DataError):
            GeneratorConfig(within_group_bias=1.5).validate()
        with pytest.raises(DataError):
            GeneratorConfig(num_tag_groups=99).validate()


class TestDeliciousGenerator:
    def test_reproducible(self):
        a = DeliciousGenerator(num_users=4, seed=7).generate()
        b = DeliciousGenerator(num_users=4, seed=7).generate()
        assert [d.text for d in a] == [d.text for d in b]
        assert [d.tags for d in a] == [d.tags for d in b]

    def test_different_seeds_differ(self):
        a = DeliciousGenerator(num_users=4, seed=1).generate()
        b = DeliciousGenerator(num_users=4, seed=2).generate()
        assert [d.text for d in a] != [d.text for d in b]

    def test_user_document_counts_in_range(self):
        gen = DeliciousGenerator(
            num_users=6, seed=0, docs_per_user_range=(5, 9)
        )
        corpus = gen.generate()
        for owner in corpus.owners:
            assert 5 <= len(corpus.documents_of(owner)) <= 9

    def test_every_document_tagged(self):
        corpus = DeliciousGenerator(num_users=4, seed=3).generate()
        for document in corpus:
            assert 1 <= len(document.tags) <= 5

    def test_tag_names_not_in_text(self):
        """The paper stresses tags need not occur in the document text."""
        gen = DeliciousGenerator(num_users=4, seed=5)
        corpus = gen.generate()
        for document in corpus:
            words = set(document.text.split())
            assert not (document.tags & words)

    def test_zipf_popularity_head_heavy(self):
        corpus = DeliciousGenerator(num_users=24, seed=1).generate()
        counts = corpus.tag_counts()
        gen_tags = DeliciousGenerator(num_users=24, seed=1).tags
        head = counts.get(gen_tags[0], 0)
        tail = counts.get(gen_tags[-1], 0)
        assert head > tail

    def test_topic_words_disjoint_across_tags(self):
        gen = DeliciousGenerator(num_users=2, seed=0)
        seen = set()
        for tag in gen.tags:
            words = set(gen.topic_words_of(tag))
            assert not (words & seen)
            seen |= words

    def test_bridge_tag_in_two_groups(self):
        gen = DeliciousGenerator(num_users=2, seed=0, bridge_tags=1)
        multi = [tag for tag in gen.tags if len(gen.groups_of(tag)) == 2]
        assert len(multi) == 1

    def test_non_iid_concentration(self):
        """Lower interest concentration -> users concentrate on fewer tags."""

        def mean_user_entropy(concentration):
            corpus = DeliciousGenerator(
                num_users=12,
                seed=0,
                interest_concentration=concentration,
                docs_per_user_range=(20, 20),
            ).generate()
            entropies = []
            for owner in corpus.owners:
                counts = corpus.user_profile(owner).tag_counts()
                total = sum(counts.values())
                probabilities = np.array([c / total for c in counts.values()])
                entropies.append(
                    -(probabilities * np.log(probabilities + 1e-12)).sum()
                )
            return float(np.mean(entropies))

        assert mean_user_entropy(0.05) < mean_user_entropy(50.0)


class TestSplits:
    def corpus(self):
        return DeliciousGenerator(
            num_users=5, seed=2, docs_per_user_range=(10, 10)
        ).generate()

    def test_global_split_fractions(self):
        train, test = train_test_split(self.corpus(), train_fraction=0.2, seed=0)
        assert len(train) == 10 and len(test) == 40

    def test_global_split_disjoint_and_complete(self):
        corpus = self.corpus()
        train, test = train_test_split(corpus, 0.2, seed=1)
        train_ids = {d.doc_id for d in train}
        test_ids = {d.doc_id for d in test}
        assert not (train_ids & test_ids)
        assert train_ids | test_ids == {d.doc_id for d in corpus}

    def test_per_user_split_every_user_trains(self):
        train, test = per_user_split(self.corpus(), 0.2, seed=0)
        assert set(train.owners) == set(self.corpus().owners)
        for owner in train.owners:
            assert len(train.documents_of(owner)) == 2  # 20% of 10

    def test_per_user_split_minimum_one(self):
        corpus = Corpus([doc(i, {"t"}, owner=i) for i in range(3)])
        train, _ = per_user_split(corpus, 0.2, seed=0)
        assert len(train) == 3  # one per user despite tiny shards

    def test_invalid_fraction(self):
        with pytest.raises(DataError):
            train_test_split(self.corpus(), 0.0)
        with pytest.raises(DataError):
            per_user_split(self.corpus(), 1.0)


class TestLoaders:
    def test_roundtrip(self, tmp_path):
        corpus = DeliciousGenerator(num_users=3, seed=4).generate()
        path = tmp_path / "corpus.jsonl"
        written = save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert written == len(corpus) == len(loaded)
        for original, restored in zip(corpus, loaded):
            assert original.doc_id == restored.doc_id
            assert original.tags == restored.tags
            assert original.text == restored.text
            assert original.owner == restored.owner

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_corpus(tmp_path / "nope.jsonl")

    def test_malformed_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"doc_id": "not json enough"}\n')
        with pytest.raises(DataError):
            load_corpus(path)

    def test_blank_lines_skipped(self, tmp_path):
        corpus = Corpus([doc(0, {"a"})])
        path = tmp_path / "c.jsonl"
        save_corpus(corpus, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_corpus(path)) == 1
