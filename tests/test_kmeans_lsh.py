"""Tests for k-means clustering and the random-hyperplane LSH index."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.kmeans import KMeans, _mean_vector
from repro.ml.lsh import RandomHyperplaneLSH
from repro.ml.sparse import SparseVector


def blobs(centers, per_center=15, spread=0.1, seed=0):
    rng = np.random.default_rng(seed)
    vectors = []
    for cx, cy in centers:
        for _ in range(per_center):
            vectors.append(
                SparseVector(
                    {0: cx + rng.normal(0, spread), 1: cy + rng.normal(0, spread)}
                )
            )
    return vectors


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        vectors = blobs([(0, 0), (10, 10), (-10, 5)])
        result = KMeans(k=3, seed=1).fit(vectors)
        assert len(result.centroids) == 3
        # Each blob's members share an assignment.
        for blob_index in range(3):
            members = result.assignments[blob_index * 15 : (blob_index + 1) * 15]
            assert len(set(members)) == 1

    def test_inertia_decreases_with_more_clusters(self):
        vectors = blobs([(0, 0), (5, 5)], per_center=20)
        inertia_1 = KMeans(k=1, seed=0).fit(vectors).inertia
        inertia_2 = KMeans(k=2, seed=0).fit(vectors).inertia
        assert inertia_2 < inertia_1

    def test_k_larger_than_dataset_shrinks(self):
        vectors = blobs([(0, 0)], per_center=3)
        result = KMeans(k=10, seed=0).fit(vectors)
        assert len(result.centroids) == 3

    def test_predict_nearest_centroid(self):
        vectors = blobs([(0, 0), (10, 10)])
        model = KMeans(k=2, seed=0)
        result = model.fit(vectors)
        near_first = model.predict(SparseVector({0: 0.1, 1: -0.1}))
        near_second = model.predict(SparseVector({0: 9.9, 1: 10.2}))
        assert near_first != near_second
        assert {near_first, near_second} <= set(range(len(result.centroids)))

    def test_empty_dataset_raises(self):
        with pytest.raises(ConfigurationError):
            KMeans(k=2).fit([])

    def test_bad_k_raises(self):
        with pytest.raises(ConfigurationError):
            KMeans(k=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            KMeans(k=2).predict(SparseVector({0: 1.0}))

    def test_identical_points(self):
        vectors = [SparseVector({0: 1.0})] * 5
        result = KMeans(k=2, seed=0).fit(vectors)
        assert result.inertia == pytest.approx(0.0)

    def test_deterministic_given_seed(self):
        vectors = blobs([(0, 0), (4, 4)])
        r1 = KMeans(k=2, seed=9).fit(vectors)
        r2 = KMeans(k=2, seed=9).fit(vectors)
        assert r1.assignments == r2.assignments

    def test_mean_vector(self):
        mean = _mean_vector([SparseVector({0: 2.0}), SparseVector({1: 2.0})])
        assert mean.to_dict() == {0: 1.0, 1: 1.0}


class TestLSH:
    def test_identical_vectors_same_signature(self):
        lsh = RandomHyperplaneLSH(num_bits=16, seed=4)
        v = SparseVector({1: 1.0, 5: 2.0})
        assert lsh.signature(v) == lsh.signature(SparseVector({1: 1.0, 5: 2.0}))

    def test_shared_seed_agrees_across_instances(self):
        a = RandomHyperplaneLSH(num_bits=16, seed=4)
        b = RandomHyperplaneLSH(num_bits=16, seed=4)
        v = SparseVector({3: 1.5, 7: -2.0})
        assert a.signature(v) == b.signature(v)

    def test_different_seed_differs_usually(self):
        vectors = [SparseVector({i: 1.0, i + 1: 2.0}) for i in range(20)]
        a = RandomHyperplaneLSH(num_bits=16, seed=1)
        b = RandomHyperplaneLSH(num_bits=16, seed=2)
        assert any(a.signature(v) != b.signature(v) for v in vectors)

    def test_query_returns_nearest(self):
        lsh = RandomHyperplaneLSH(num_bits=8, seed=0)
        near = SparseVector({0: 1.0, 1: 1.0})
        far = SparseVector({0: -5.0, 1: -5.0})
        lsh.insert(near, "near")
        lsh.insert(far, "far")
        results = lsh.query(SparseVector({0: 0.9, 1: 1.1}), top_k=1)
        assert results[0][1] == "near"

    def test_query_top_k_ordering(self):
        lsh = RandomHyperplaneLSH(num_bits=4, seed=0)
        for i in range(10):
            lsh.insert(SparseVector({0: float(i)}), i)
        results = lsh.query(SparseVector({0: 0.0}), top_k=5)
        distances = [d for d, _ in results]
        assert distances == sorted(distances)
        assert len(results) == 5

    def test_query_empty_index(self):
        lsh = RandomHyperplaneLSH()
        assert lsh.query(SparseVector({0: 1.0}), top_k=3) == []

    def test_query_invalid_k(self):
        lsh = RandomHyperplaneLSH()
        with pytest.raises(ConfigurationError):
            lsh.query(SparseVector({0: 1.0}), top_k=0)

    def test_remove(self):
        lsh = RandomHyperplaneLSH(num_bits=4, seed=0)
        v = SparseVector({0: 1.0})
        lsh.insert(v, "payload")
        assert len(lsh) == 1
        assert lsh.remove("payload")
        assert len(lsh) == 0
        assert not lsh.remove("payload")

    def test_bad_num_bits(self):
        with pytest.raises(ConfigurationError):
            RandomHyperplaneLSH(num_bits=0)
        with pytest.raises(ConfigurationError):
            RandomHyperplaneLSH(num_bits=65)

    def test_similar_vectors_collide_more(self):
        """Statistical property: near-duplicates share more signature bits."""
        lsh = RandomHyperplaneLSH(num_bits=32, seed=11)
        rng = np.random.default_rng(3)
        agree_similar, agree_random = [], []
        for _ in range(30):
            base = SparseVector({i: rng.normal() for i in range(10)})
            similar = base.add(
                SparseVector({i: rng.normal() * 0.01 for i in range(10)})
            )
            unrelated = SparseVector({i: rng.normal() for i in range(10)})
            s_base = lsh.signature(base)
            agree_similar.append(32 - bin(s_base ^ lsh.signature(similar)).count("1"))
            agree_random.append(32 - bin(s_base ^ lsh.signature(unrelated)).count("1"))
        assert np.mean(agree_similar) > np.mean(agree_random)

    def test_bucket_sizes(self):
        lsh = RandomHyperplaneLSH(num_bits=2, seed=0)
        for i in range(8):
            lsh.insert(SparseVector({i: 1.0}), i)
        assert sum(lsh.bucket_sizes().values()) == 8
