"""Tests for ROC/PR/threshold utilities and the PerTagThreshold policy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multilabel import PerTagThreshold
from repro.errors import ConfigurationError
from repro.ml.evaluation import (
    auc,
    average_precision,
    best_f1_threshold,
    per_tag_thresholds,
    precision_recall_curve,
    roc_curve,
    threshold_sweep,
)

PERFECT_SCORES = [0.9, 0.8, 0.7, 0.2, 0.1]
PERFECT_LABELS = [1, 1, 1, 0, 0]


class TestThresholdSweep:
    def test_points_cover_all_thresholds(self):
        points = threshold_sweep(PERFECT_SCORES, PERFECT_LABELS)
        assert len(points) == 5  # all scores distinct
        assert points[0].tp == 1 and points[0].fp == 0
        assert points[-1].tp == 3 and points[-1].fp == 2

    def test_ties_consumed_together(self):
        points = threshold_sweep([0.5, 0.5, 0.1], [1, 0, 0])
        assert len(points) == 2
        assert points[0].tp == 1 and points[0].fp == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            threshold_sweep([], [])
        with pytest.raises(ConfigurationError):
            threshold_sweep([0.5], [2])
        with pytest.raises(ConfigurationError):
            threshold_sweep([0.5], [1, 0])


class TestRocAuc:
    def test_perfect_ranking_auc_one(self):
        assert auc(PERFECT_SCORES, PERFECT_LABELS) == pytest.approx(1.0)

    def test_inverted_ranking_auc_zero(self):
        assert auc(PERFECT_SCORES, [0, 0, 0, 1, 1]) == pytest.approx(0.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        scores = list(rng.random(2000))
        labels = list((rng.random(2000) > 0.5).astype(int))
        assert auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_one_class_auc_half(self):
        assert auc([0.5, 0.7], [1, 1]) == 0.5

    def test_roc_curve_endpoints(self):
        curve = roc_curve(PERFECT_SCORES, PERFECT_LABELS)
        assert curve[0] == (0.0, 0.0)
        assert curve[-1] == (1.0, 1.0)

    def test_roc_curve_monotone(self):
        curve = roc_curve(PERFECT_SCORES, PERFECT_LABELS)
        xs = [x for x, _ in curve]
        ys = [y for _, y in curve]
        assert xs == sorted(xs)
        assert ys == sorted(ys)


class TestPrecisionRecall:
    def test_perfect_average_precision(self):
        assert average_precision(PERFECT_SCORES, PERFECT_LABELS) == pytest.approx(1.0)

    def test_all_negative_ap_zero(self):
        assert average_precision([0.5, 0.6], [0, 0]) == 0.0

    def test_curve_recall_ascending(self):
        curve = precision_recall_curve(PERFECT_SCORES, PERFECT_LABELS)
        recalls = [r for r, _ in curve]
        assert recalls == sorted(recalls)


class TestBestF1:
    def test_perfect_separation(self):
        threshold, f1 = best_f1_threshold(PERFECT_SCORES, PERFECT_LABELS)
        assert f1 == pytest.approx(1.0)
        assert 0.2 < threshold <= 0.7

    def test_all_negative_assigns_nothing(self):
        threshold, f1 = best_f1_threshold([0.3, 0.4], [0, 0])
        assert f1 == 0.0
        assert threshold > 0.4

    def test_all_positive(self):
        threshold, f1 = best_f1_threshold([0.3, 0.4], [1, 1])
        assert f1 == pytest.approx(1.0)
        assert threshold <= 0.3


class TestPerTagThresholds:
    def test_tuned_per_tag(self):
        score_maps = [
            {"a": 0.9, "b": 0.4},
            {"a": 0.8, "b": 0.3},
            {"a": 0.2, "b": 0.6},
            {"a": 0.1, "b": 0.7},
        ]
        true_sets = [{"a"}, {"a"}, {"b"}, {"b"}]
        thresholds = per_tag_thresholds(score_maps, true_sets, ["a", "b"])
        # tag a separates at ~0.8; tag b at ~0.6.
        assert thresholds["a"] > 0.5
        assert 0.3 < thresholds["b"] <= 0.6

    def test_unseen_tag_defaults(self):
        thresholds = per_tag_thresholds(
            [{"a": 0.9}], [{"a"}], ["a", "never-seen"]
        )
        assert thresholds["never-seen"] == 0.5

    def test_clamping(self):
        # A tag positive on every document would tune to near-zero threshold;
        # the floor keeps it sane.
        score_maps = [{"a": 0.01}, {"a": 0.02}, {"a": 0.9}]
        true_sets = [{"a"}, {"a"}, set()]
        thresholds = per_tag_thresholds(
            score_maps, true_sets, ["a"], floor=0.05
        )
        assert thresholds["a"] >= 0.05

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            per_tag_thresholds([{}], [], ["a"])


class TestPerTagThresholdPolicy:
    def test_uses_per_tag_values(self):
        policy = PerTagThreshold({"a": 0.9, "b": 0.2})
        assert policy.assign({"a": 0.5, "b": 0.5}) == {"b"}

    def test_default_for_unknown_tags(self):
        policy = PerTagThreshold({}, default=0.6)
        assert policy.assign({"x": 0.7, "y": 0.5}) == {"x"}

    def test_fallback_best(self):
        policy = PerTagThreshold({"a": 0.99, "b": 0.99})
        assert policy.assign({"a": 0.6, "b": 0.4}) == {"a"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerTagThreshold({"a": 1.5})
        with pytest.raises(ConfigurationError):
            PerTagThreshold({}, default=-0.1)


scores_and_labels = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=1),
    ),
    min_size=2,
    max_size=50,
)


@given(scores_and_labels)
def test_auc_bounded(pairs):
    scores = [s for s, _ in pairs]
    labels = [l for _, l in pairs]
    assert 0.0 <= auc(scores, labels) <= 1.0


@given(scores_and_labels)
def test_best_f1_bounded(pairs):
    scores = [s for s, _ in pairs]
    labels = [l for _, l in pairs]
    _, f1 = best_f1_threshold(scores, labels)
    assert 0.0 <= f1 <= 1.0


@given(scores_and_labels)
def test_sweep_counts_consistent(pairs):
    scores = [s for s, _ in pairs]
    labels = [l for _, l in pairs]
    for point in threshold_sweep(scores, labels):
        assert point.tp + point.fn == sum(labels)
        assert point.fp + point.tn == len(labels) - sum(labels)
        assert point.tp >= 0 and point.fp >= 0
