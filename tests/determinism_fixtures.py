"""Shared machinery for the determinism suites.

One tiny fixed-seed corpus, one scenario builder per environment variant,
and one classifier factory per protocol — used by both the golden
fingerprint suite (``tests/test_golden_determinism.py``) and the
batch/scalar equivalence property tests (``tests/test_scheduled_rounds.py``).

Everything here must stay deterministic across interpreter versions and
platforms: all ids flow through blake2 hashes, all randomness through
seeded numpy Generators, and the training runs only consume observables
that serialize to exact integers (message counts, bytes, hops, counters).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from repro.baselines.centralized import CentralizedTagger
from repro.baselines.localonly import LocalOnlyTagger
from repro.baselines.popularity import PopularityTagger
from repro.data.delicious import DeliciousGenerator
from repro.p2pclass.base import P2PTagClassifier, corpus_to_peer_data
from repro.p2pclass.cempar import CemparClassifier, CemparConfig
from repro.p2pclass.nbagg import NBAggClassifier
from repro.p2pclass.pace import PaceClassifier
from repro.p2pclass.private import PrivatePaceClassifier
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.text.vectorizer import PreprocessingPipeline

NUM_PEERS = 5

#: every registered overlay participates in the determinism matrix
OVERLAYS = ("chord", "kademlia", "pastry", "unstructured", "fullmesh", "superpeer")

#: all seven training protocols
PROTOCOLS = ("pace", "private", "cempar", "nbagg", "centralized", "local", "popularity")

#: environment variants: static network, leave/rejoin churn, message loss
VARIANTS = ("none", "churn", "loss")

#: the nightly large-N tier (REPRO_LARGE_GOLDEN=1): a subset of the matrix
#: replayed at 100 peers, where heap-order bugs actually surface.  Loss is
#: excluded (the drop/jitter RNG interleaving is already pinned at N=5 and
#: the lossy large runs triple the tier's wall-clock for no new coverage).
LARGE_NUM_PEERS = 100
LARGE_OVERLAYS = ("chord", "superpeer")
LARGE_PROTOCOLS = ("pace", "cempar", "nbagg")
LARGE_VARIANTS = ("none", "churn")

#: the sharded golden tier: training replayed through the sharded event
#: kernel (repro.sim.shard) at K shards, serial executor.  The digests must
#: be identical across K *and* to the unsharded kernel running the same
#: per-peer-randomness scenario — the file itself witnesses K-invariance.
SHARDED_OVERLAYS = ("chord", "superpeer")
SHARDED_PROTOCOLS = ("pace", "nbagg", "centralized")
SHARDED_VARIANTS = ("none", "churn")
SHARDED_COUNTS = (2, 4)

#: jitter clamp used by every sharded / per-peer-randomness fixture: bounds
#: the minimum cross-shard latency, i.e. the conservative lookahead window.
SHARD_JITTER_FLOOR = 0.5


def _build_peer_data():
    corpus = DeliciousGenerator(
        num_users=NUM_PEERS,
        seed=7,
        num_tags=4,
        docs_per_user_range=(6, 8),
        vocabulary_size=200,
        topic_words_per_tag=20,
        doc_length_range=(15, 25),
    ).generate()
    pipeline = PreprocessingPipeline(dimension=2 ** 16)
    return corpus_to_peer_data(corpus, pipeline), sorted(corpus.tag_universe())


_PEER_DATA, _TAGS = _build_peer_data()


@lru_cache(maxsize=1)
def _build_large_peer_data():
    """The 100-peer fixture corpus, built lazily: only the nightly tier
    (and its regeneration script) pays for vectorizing it."""
    corpus = DeliciousGenerator(
        num_users=LARGE_NUM_PEERS,
        seed=7,
        num_tags=4,
        docs_per_user_range=(2, 3),
        vocabulary_size=150,
        topic_words_per_tag=18,
        doc_length_range=(10, 16),
    ).generate()
    pipeline = PreprocessingPipeline(dimension=2 ** 16)
    return corpus_to_peer_data(corpus, pipeline), sorted(corpus.tag_universe())


def build_scenario_config(
    overlay: str, variant: str, seed: int = 0, num_peers: int = NUM_PEERS,
    codec: str = "identity", rng_mode: str = "stream", shards: int = 0,
    control_plane: str = "replicated",
) -> ScenarioConfig:
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    return ScenarioConfig(
        num_peers=num_peers,
        overlay=overlay,
        churn="exponential" if variant == "churn" else "none",
        mean_session=40.0,
        mean_downtime=15.0,
        drop_probability=0.15 if variant == "loss" else 0.0,
        shard=ShardSpec(num_peers=num_peers),
        codec=codec,
        rng_mode=rng_mode,
        jitter_floor=SHARD_JITTER_FLOOR if rng_mode == "perpeer" else 0.0,
        shards=shards,
        control_plane=control_plane,
        seed=seed,
    )


def build_scenario(
    overlay: str, variant: str, seed: int = 0, num_peers: int = NUM_PEERS,
    codec: str = "identity", rng_mode: str = "stream",
) -> Scenario:
    scenario = Scenario(
        build_scenario_config(
            overlay, variant, seed=seed, num_peers=num_peers, codec=codec,
            rng_mode=rng_mode,
        )
    )
    if variant == "churn":
        scenario.start_churn()
    return scenario


def build_classifier(
    protocol: str,
    scenario: Scenario,
    peer_data=None,
    tags=None,
) -> P2PTagClassifier:
    peer_data = peer_data if peer_data is not None else _PEER_DATA
    tags = tags if tags is not None else _TAGS
    if protocol == "pace":
        return PaceClassifier(scenario, peer_data, tags)
    if protocol == "private":
        return PrivatePaceClassifier(scenario, peer_data, tags)
    if protocol == "cempar":
        return CemparClassifier(
            scenario, peer_data, tags, CemparConfig(num_regions=1)
        )
    if protocol == "nbagg":
        return NBAggClassifier(scenario, peer_data, tags)
    if protocol == "centralized":
        return CentralizedTagger(scenario, peer_data, tags)
    if protocol == "local":
        return LocalOnlyTagger(scenario, peer_data, tags)
    if protocol == "popularity":
        return PopularityTagger(scenario, peer_data, tags)
    raise ValueError(f"unknown protocol {protocol!r}")


def run_training(
    protocol: str,
    overlay: str,
    variant: str,
    scalar: bool = False,
    codec: str = "identity",
) -> Tuple[Scenario, P2PTagClassifier]:
    """Train one (protocol, overlay, variant) combo; returns the scenario
    (stats + clock) and the trained classifier.

    ``scalar=True`` forces both legacy drivers — the sequential ``_advance``
    stagger loop and the message-per-recipient broadcast path — which must
    produce byte-identical stats to the scheduled-batch/vectorized default.
    ``codec`` selects the transport's wire-format codec table (the identity
    default reproduces the pre-codec stack byte-for-byte).
    """
    scenario = build_scenario(overlay, variant, codec=codec)
    classifier = build_classifier(protocol, scenario)
    classifier.scalar_rounds = scalar
    classifier.transport.scalar_broadcast = scalar
    classifier.train()
    return scenario, classifier


def run_training_large(
    protocol: str, overlay: str, variant: str
) -> Tuple[Scenario, P2PTagClassifier]:
    """Train one combo of the nightly large-N tier at 100 peers."""
    peer_data, tags = _build_large_peer_data()
    scenario = build_scenario(overlay, variant, num_peers=LARGE_NUM_PEERS)
    classifier = build_classifier(protocol, scenario, peer_data, tags)
    classifier.train()
    return scenario, classifier


# ---------------------------------------------------------------------------
# Sharded-kernel fixtures: the same training runs through repro.sim.shard,
# plus the unsharded per-peer-randomness reference they must match.
# ---------------------------------------------------------------------------


def digest_of(stats, now: float) -> str:
    """Digest of one run: stats fingerprint + final virtual clock (the
    golden recipe, shared by sharded and unsharded runs)."""
    from repro.sim.shard import scenario_digest

    return scenario_digest(stats, now)


class TrainingWorkload:
    """SPMD workload: build and train one classifier on a (shard) scenario.

    Runs identically in every shard worker and on the unsharded kernel —
    the differential suites compare the resulting digests.  A class (not a
    closure) so the tcp executor can pickle it into worker processes.
    """

    def __init__(self, protocol: str, variant: str, codec: str = "identity"):
        self.protocol = protocol
        self.variant = variant
        self.codec = codec

    def __call__(self, scenario: Scenario):
        if self.variant == "churn":
            scenario.start_churn()
        classifier = build_classifier(self.protocol, scenario)
        classifier.scalar_rounds = False
        classifier.transport.scalar_broadcast = False
        classifier.train()
        return None


def training_workload(protocol: str, variant: str, codec: str = "identity"):
    """Picklable SPMD training workload (see :class:`TrainingWorkload`)."""
    return TrainingWorkload(protocol, variant, codec)


def run_training_perpeer(
    protocol: str, overlay: str, variant: str, codec: str = "identity",
    num_peers: int = NUM_PEERS,
) -> Tuple[object, float]:
    """The unsharded reference: the single-heap kernel running the
    per-peer-randomness scenario.  Returns (stats, final clock)."""
    config = build_scenario_config(
        overlay, variant, num_peers=num_peers, codec=codec,
        rng_mode="perpeer",
    )
    scenario = Scenario(config)
    training_workload(protocol, variant, codec)(scenario)
    return scenario.stats, scenario.simulator.now


def run_training_sharded(
    protocol: str, overlay: str, variant: str, shards: int,
    executor: str = "serial", codec: str = "identity",
    num_peers: int = NUM_PEERS, control_plane: str = "replicated",
    wal: str = None, resume: str = None, faults: str = None,
):
    """Train one combo through the K-shard kernel; returns the
    :class:`repro.sim.shard.ShardedRun` (merged stats + agreed clock).

    ``control_plane="directory"`` replays the same training with the
    directory-served control plane (overlay snapshot + per-window deltas)
    instead of SPMD replication — the digest must not change.
    ``faults`` injects a seeded fault schedule (tcp executor only); the
    chaos suites assert the recovered digest is byte-identical anyway.
    """
    from dataclasses import replace

    from repro.sim.shard import ShardedScenario

    config = build_scenario_config(
        overlay, variant, num_peers=num_peers, codec=codec,
        rng_mode="perpeer", shards=shards, control_plane=control_plane,
    )
    if wal or resume or faults:
        config = replace(config, wal=wal, resume=resume, faults=faults)
    return ShardedScenario(config, executor=executor).run(
        training_workload(protocol, variant, codec)
    )
