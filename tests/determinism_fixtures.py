"""Shared machinery for the determinism suites.

One tiny fixed-seed corpus, one scenario builder per environment variant,
and one classifier factory per protocol — used by both the golden
fingerprint suite (``tests/test_golden_determinism.py``) and the
batch/scalar equivalence property tests (``tests/test_scheduled_rounds.py``).

Everything here must stay deterministic across interpreter versions and
platforms: all ids flow through blake2 hashes, all randomness through
seeded numpy Generators, and the training runs only consume observables
that serialize to exact integers (message counts, bytes, hops, counters).
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines.centralized import CentralizedTagger
from repro.baselines.localonly import LocalOnlyTagger
from repro.baselines.popularity import PopularityTagger
from repro.data.delicious import DeliciousGenerator
from repro.p2pclass.base import P2PTagClassifier, corpus_to_peer_data
from repro.p2pclass.cempar import CemparClassifier, CemparConfig
from repro.p2pclass.nbagg import NBAggClassifier
from repro.p2pclass.pace import PaceClassifier
from repro.p2pclass.private import PrivatePaceClassifier
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.text.vectorizer import PreprocessingPipeline

NUM_PEERS = 5

#: every registered overlay participates in the determinism matrix
OVERLAYS = ("chord", "kademlia", "pastry", "unstructured", "fullmesh", "superpeer")

#: all seven training protocols
PROTOCOLS = ("pace", "private", "cempar", "nbagg", "centralized", "local", "popularity")

#: environment variants: static network, leave/rejoin churn, message loss
VARIANTS = ("none", "churn", "loss")


def _build_peer_data():
    corpus = DeliciousGenerator(
        num_users=NUM_PEERS,
        seed=7,
        num_tags=4,
        docs_per_user_range=(6, 8),
        vocabulary_size=200,
        topic_words_per_tag=20,
        doc_length_range=(15, 25),
    ).generate()
    pipeline = PreprocessingPipeline(dimension=2 ** 16)
    return corpus_to_peer_data(corpus, pipeline), sorted(corpus.tag_universe())


_PEER_DATA, _TAGS = _build_peer_data()


def build_scenario(overlay: str, variant: str, seed: int = 0) -> Scenario:
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    scenario = Scenario(
        ScenarioConfig(
            num_peers=NUM_PEERS,
            overlay=overlay,
            churn="exponential" if variant == "churn" else "none",
            mean_session=40.0,
            mean_downtime=15.0,
            drop_probability=0.15 if variant == "loss" else 0.0,
            shard=ShardSpec(num_peers=NUM_PEERS),
            seed=seed,
        )
    )
    if variant == "churn":
        scenario.start_churn()
    return scenario


def build_classifier(protocol: str, scenario: Scenario) -> P2PTagClassifier:
    if protocol == "pace":
        return PaceClassifier(scenario, _PEER_DATA, _TAGS)
    if protocol == "private":
        return PrivatePaceClassifier(scenario, _PEER_DATA, _TAGS)
    if protocol == "cempar":
        return CemparClassifier(
            scenario, _PEER_DATA, _TAGS, CemparConfig(num_regions=1)
        )
    if protocol == "nbagg":
        return NBAggClassifier(scenario, _PEER_DATA, _TAGS)
    if protocol == "centralized":
        return CentralizedTagger(scenario, _PEER_DATA, _TAGS)
    if protocol == "local":
        return LocalOnlyTagger(scenario, _PEER_DATA, _TAGS)
    if protocol == "popularity":
        return PopularityTagger(scenario, _PEER_DATA, _TAGS)
    raise ValueError(f"unknown protocol {protocol!r}")


def run_training(
    protocol: str, overlay: str, variant: str, scalar: bool = False
) -> Tuple[Scenario, P2PTagClassifier]:
    """Train one (protocol, overlay, variant) combo; returns the scenario
    (stats + clock) and the trained classifier.

    ``scalar=True`` forces both legacy drivers — the sequential ``_advance``
    stagger loop and the message-per-recipient broadcast path — which must
    produce byte-identical stats to the scheduled-batch/vectorized default.
    """
    scenario = build_scenario(overlay, variant)
    classifier = build_classifier(protocol, scenario)
    classifier.scalar_rounds = scalar
    classifier.transport.scalar_broadcast = scalar
    classifier.train()
    return scenario, classifier
