"""Tests for metadata store, library, tag cloud, suggestions, and policies."""

import pytest

from repro.core.library import Library
from repro.core.metadata import TagMetadataStore, TagRecord, TagSource
from repro.core.multilabel import FixedThreshold, TopKPolicy
from repro.core.suggestions import Suggestion, SuggestionEngine
from repro.core.tagcloud import TagCloud
from repro.errors import ConfigurationError


class TestThresholdPolicies:
    SCORES = {"a": 0.9, "b": 0.6, "c": 0.2}

    def test_fixed_threshold(self):
        assert FixedThreshold(0.5).assign(self.SCORES) == {"a", "b"}

    def test_fixed_threshold_fallback(self):
        assert FixedThreshold(0.99).assign(self.SCORES) == {"a"}

    def test_fixed_threshold_no_fallback(self):
        policy = FixedThreshold(0.99, fallback_best=False)
        assert policy.assign(self.SCORES) == frozenset()

    def test_fixed_threshold_empty_scores(self):
        assert FixedThreshold(0.5).assign({}) == frozenset()

    def test_fixed_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            FixedThreshold(1.5)

    def test_top_k(self):
        assert TopKPolicy(k=2).assign(self.SCORES) == {"a", "b"}

    def test_top_k_floor(self):
        assert TopKPolicy(k=3, floor=0.5).assign(self.SCORES) == {"a", "b"}

    def test_top_k_validation(self):
        with pytest.raises(ConfigurationError):
            TopKPolicy(k=0)
        with pytest.raises(ConfigurationError):
            TopKPolicy(k=1, floor=2.0)

    def test_top_k_deterministic_tie_break(self):
        scores = {"z": 0.5, "a": 0.5, "m": 0.5}
        assert TopKPolicy(k=2).assign(scores) == {"a", "m"}


class TestMetadataStore:
    def make(self):
        store = TagMetadataStore()
        store.assign(1, "music", TagSource.MANUAL)
        store.assign(1, "jazz", TagSource.AUTO, confidence=0.7)
        store.assign(2, "music", TagSource.AUTO, confidence=0.4)
        return store

    def test_tags_of(self):
        store = self.make()
        assert store.tags_of(1) == {"music", "jazz"}
        assert store.tags_of(99) == frozenset()

    def test_confidence_filter(self):
        store = self.make()
        assert store.tags_of(1, min_confidence=0.9) == {"music"}

    def test_documents_with(self):
        store = self.make()
        assert store.documents_with("music") == [1, 2]
        assert store.documents_with("music", min_confidence=0.5) == [1]

    def test_remove(self):
        store = self.make()
        assert store.remove(1, "jazz")
        assert not store.remove(1, "jazz")
        assert store.tags_of(1) == {"music"}

    def test_remove_last_tag_drops_document(self):
        store = TagMetadataStore()
        store.assign(5, "only")
        store.remove(5, "only")
        assert 5 not in store

    def test_replace(self):
        store = self.make()
        store.replace(1, {"rock": 1.0}, source=TagSource.REFINED)
        assert store.tags_of(1) == {"rock"}
        assert store.records_of(1)[0].source == TagSource.REFINED

    def test_all_tags_sorted(self):
        assert self.make().all_tags() == ["jazz", "music"]

    def test_iter_assignments(self):
        pairs = list(self.make().iter_assignments())
        assert len(pairs) == 3
        assert pairs[0][0] == 1

    def test_persistence_roundtrip(self, tmp_path):
        store = self.make()
        path = tmp_path / "tags.json"
        store.save(path)
        loaded = TagMetadataStore.load(path)
        assert loaded.tags_of(1) == store.tags_of(1)
        assert loaded.records_of(2)[0].confidence == pytest.approx(0.4)
        assert loaded.records_of(1)[0].source in (TagSource.MANUAL, TagSource.AUTO)

    def test_assign_many(self):
        store = TagMetadataStore()
        store.assign_many(7, {"a": 0.9, "b": 0.8}, source=TagSource.AUTO)
        assert store.tags_of(7) == {"a", "b"}


class TestLibrary:
    def make(self):
        store = TagMetadataStore()
        store.assign(1, "music", TagSource.MANUAL)
        store.assign(1, "jazz", TagSource.MANUAL)
        store.assign(2, "music", TagSource.AUTO, confidence=0.6)
        store.assign(3, "travel", TagSource.AUTO, confidence=0.3)
        return Library(store)

    def test_browse_by_tag(self):
        library = self.make()
        assert library.browse_by_tag("music") == [1, 2]

    def test_search_all_of(self):
        assert self.make().search(all_of=["music", "jazz"]) == [1]

    def test_search_any_of(self):
        assert self.make().search(any_of=["jazz", "travel"]) == [1, 3]

    def test_search_none_of(self):
        assert self.make().search(any_of=["music"], none_of=["jazz"]) == [2]

    def test_search_confidence(self):
        assert self.make().search(any_of=["travel"], min_confidence=0.5) == []

    def test_search_tag_names(self):
        assert self.make().search_tag_names("mus") == ["music"]
        assert self.make().search_tag_names("MUS") == ["music"]

    def test_tag_frequencies(self):
        assert self.make().tag_frequencies()["music"] == 2

    def test_documents_by_source(self):
        library = self.make()
        assert library.documents_by_source(TagSource.MANUAL) == [1]
        assert library.documents_by_source(TagSource.AUTO) == [2, 3]

    def test_low_confidence_documents(self):
        assert self.make().low_confidence_documents(below=0.5) == [3]

    def test_summary(self):
        assert "documents=3" in self.make().summary()


class TestTagCloud:
    def two_cluster_sets(self):
        # Cluster 1: {python, linux, code}; cluster 2: {travel, photo, maps};
        # "navigation" bridges both — the Fig. 4 shape.
        return (
            [["python", "linux"], ["python", "code"], ["linux", "code"]] * 3
            + [["travel", "photo"], ["travel", "maps"], ["photo", "maps"]] * 3
            + [["code", "navigation"], ["maps", "navigation"]]
        )

    def test_frequencies(self):
        cloud = TagCloud([["a", "b"], ["a"]])
        assert cloud.frequencies() == {"a": 2, "b": 1}

    def test_cooccurrence_symmetric(self):
        cloud = TagCloud([["a", "b"], ["b", "a"], ["a", "c"]])
        assert cloud.cooccurrence("a", "b") == 2
        assert cloud.cooccurrence("b", "a") == 2
        assert cloud.cooccurrence("a", "zzz") == 0

    def test_duplicate_tags_in_one_doc_count_once(self):
        cloud = TagCloud([["a", "a", "b"]])
        assert cloud.frequencies()["a"] == 1

    def test_font_size_monotone_in_frequency(self):
        cloud = TagCloud([["common"]] * 10 + [["rare"]])
        assert cloud.font_size("common") > cloud.font_size("rare")
        assert cloud.font_size("unknown") == 0

    def test_two_communities_detected(self):
        cloud = TagCloud(self.two_cluster_sets())
        communities = cloud.communities()
        assert len(communities) >= 2
        largest_two = sorted(communities, key=len, reverse=True)[:2]
        assert {"python", "linux", "code"} <= (largest_two[0] | largest_two[1])
        assert {"travel", "photo", "maps"} <= (largest_two[0] | largest_two[1])

    def test_bridge_tag_found(self):
        cloud = TagCloud(self.two_cluster_sets())
        assert "navigation" in cloud.bridge_tags(top=2)

    def test_no_bridges_in_single_cluster(self):
        cloud = TagCloud([["a", "b"], ["b", "c"], ["a", "c"]])
        assert cloud.bridge_tags() == []

    def test_entries_cover_all_tags(self):
        cloud = TagCloud(self.two_cluster_sets())
        entries = cloud.entries()
        assert {e.tag for e in entries} == set(cloud.frequencies())
        for entry in entries:
            assert 1 <= entry.font_size <= 5
            assert entry.community >= 0

    def test_empty_cloud(self):
        cloud = TagCloud([])
        assert cloud.frequencies() == {}
        assert cloud.communities() == []
        assert cloud.bridge_tags() == []

    def test_ascii_cloud_renders(self):
        cloud = TagCloud([["alpha", "beta"]] * 5)
        rendered = cloud.ascii_cloud()
        assert "(" in rendered


class _FakeClassifier:
    """Stand-in ranking classifier for suggestion tests."""

    trained = True

    def rank_tags(self, origin, vector):
        return [("jazz", 0.92), ("music", 0.55), ("travel", 0.10)]


class TestSuggestions:
    def engine(self):
        return SuggestionEngine(_FakeClassifier(), max_suggestions=10)

    def test_alphabetical_kept_then_struck(self):
        suggestions = self.engine().suggest(0, None, confidence_threshold=0.3)
        tags = [s.tag for s in suggestions]
        assert tags == ["jazz", "music", "travel"]
        assert not suggestions[0].struck_out
        assert suggestions[2].struck_out

    def test_confidence_slider_strikes_more(self):
        suggestions = self.engine().suggest(0, None, confidence_threshold=0.8)
        struck = [s.tag for s in suggestions if s.struck_out]
        assert set(struck) == {"music", "travel"}

    def test_font_buckets(self):
        suggestions = self.engine().suggest(0, None, confidence_threshold=0.0)
        by_tag = {s.tag: s for s in suggestions}
        assert by_tag["jazz"].font_size > by_tag["travel"].font_size
        assert 1 <= by_tag["travel"].font_size <= 5

    def test_render(self):
        suggestion = Suggestion(
            tag="jazz", confidence=0.9, font_size=5, struck_out=False
        )
        assert suggestion.render() == "JAZZ"
        struck = Suggestion(
            tag="travel", confidence=0.1, font_size=1, struck_out=True
        )
        assert struck.render() == "~~travel~~"

    def test_render_cloud(self):
        rendered = SuggestionEngine.render_cloud(
            self.engine().suggest(0, None, 0.3)
        )
        assert "~~travel~~" in rendered

    def test_top_tags(self):
        assert self.engine().top_tags(0, None, 2) == ["jazz", "music"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SuggestionEngine(_FakeClassifier(), max_suggestions=0)
        with pytest.raises(ConfigurationError):
            self.engine().suggest(0, None, confidence_threshold=2.0)
        with pytest.raises(ConfigurationError):
            self.engine().top_tags(0, None, 0)
