"""Golden fingerprint suite: the determinism contract, checked in.

For every (overlay × protocol × {no-churn, churn, loss}) combination, a
small fixed-seed training scenario's stats digest — SHA-256 over the
canonical JSON of :meth:`StatsCollector.fingerprint` plus the final virtual
clock — is stored in ``tests/golden/training_digests.json`` and compared
*exactly*.  Any drift in the RNG stream, event ordering, or byte/hop
accounting (an optimization that reorders draws, a changed wire-size rule,
a new overlay hop) fails tier-1 loudly instead of silently changing every
experiment table.

When a change is *intentional*, regenerate the goldens and commit the diff:

    PYTHONPATH=src python tests/golden/regenerate.py

The matrix is the full cross product — 126 combos — and runs in about a
second thanks to the tiny fixture corpus.
"""

import json
from pathlib import Path

import pytest

from tests.determinism_fixtures import OVERLAYS, PROTOCOLS, VARIANTS, run_training

GOLDEN_PATH = Path(__file__).parent / "golden" / "training_digests.json"

REGEN_HINT = (
    "If this change to the stats stream is intentional, regenerate with "
    "`PYTHONPATH=src python tests/golden/regenerate.py` and commit the diff."
)


def combo_key(overlay: str, protocol: str, variant: str) -> str:
    return f"{overlay}/{protocol}/{variant}"


def combo_digest(protocol: str, overlay: str, variant: str) -> str:
    """Digest of one training run: stats fingerprint + final virtual clock."""
    import hashlib

    scenario, _ = run_training(protocol, overlay, variant)
    payload = scenario.stats.fingerprint_bytes() + json.dumps(
        {"now": scenario.simulator.now}
    ).encode("ascii")
    return hashlib.sha256(payload).hexdigest()


def load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(f"golden file missing: {GOLDEN_PATH}. {REGEN_HINT}")
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("overlay", OVERLAYS)
def test_training_digest_matches_golden(overlay, protocol, variant):
    key = combo_key(overlay, protocol, variant)
    goldens = load_goldens()
    assert key in goldens, f"no golden digest for {key}. {REGEN_HINT}"
    actual = combo_digest(protocol, overlay, variant)
    assert actual == goldens[key], (
        f"stats digest drifted for {key}: expected {goldens[key][:16]}…, "
        f"got {actual[:16]}…. Same seed no longer produces bit-identical "
        f"stats on this combo. {REGEN_HINT}"
    )


def test_golden_file_has_no_stale_entries():
    """Every stored digest corresponds to a live matrix combo (renames and
    removals must regenerate, not accumulate)."""
    goldens = load_goldens()
    expected = {
        combo_key(o, p, v) for o in OVERLAYS for p in PROTOCOLS for v in VARIANTS
    }
    stale = set(goldens) - expected
    assert not stale, f"stale golden entries: {sorted(stale)}. {REGEN_HINT}"


def test_digests_are_run_to_run_stable():
    """The digest of a fresh identical run is identical (no hidden global
    state leaks between scenario constructions)."""
    first = combo_digest("pace", "chord", "churn")
    second = combo_digest("pace", "chord", "churn")
    assert first == second
