"""Golden fingerprint suite: the determinism contract, checked in.

For every (overlay × protocol × {no-churn, churn, loss}) combination, a
small fixed-seed training scenario's stats digest — SHA-256 over the
canonical JSON of :meth:`StatsCollector.fingerprint` plus the final virtual
clock — is stored in ``tests/golden/training_digests.json`` and compared
*exactly*.  Any drift in the RNG stream, event ordering, or byte/hop
accounting (an optimization that reorders draws, a changed wire-size rule,
a new overlay hop) fails tier-1 loudly instead of silently changing every
experiment table.

When a change is *intentional*, regenerate the goldens and commit the diff:

    PYTHONPATH=src python tests/golden/regenerate.py

The matrix is the full cross product — 126 combos — and runs in about a
second thanks to the tiny fixture corpus.
"""

import json
import os
from pathlib import Path

import pytest

from tests.determinism_fixtures import (
    LARGE_OVERLAYS,
    LARGE_PROTOCOLS,
    LARGE_VARIANTS,
    OVERLAYS,
    PROTOCOLS,
    SHARDED_COUNTS,
    SHARDED_OVERLAYS,
    SHARDED_PROTOCOLS,
    SHARDED_VARIANTS,
    VARIANTS,
    digest_of,
    run_training,
    run_training_large,
    run_training_perpeer,
    run_training_sharded,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "training_digests.json"
LARGE_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "training_digests_large.json"
)
SHARDED_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "training_digests_sharded.json"
)

#: gates the N=100 tier (nightly CI; seconds per combo instead of millis)
LARGE_GOLDEN_ENV = "REPRO_LARGE_GOLDEN"

REGEN_HINT = (
    "If this change to the stats stream is intentional, regenerate with "
    "`PYTHONPATH=src python tests/golden/regenerate.py` and commit the diff."
)

large_tier = pytest.mark.skipif(
    os.environ.get(LARGE_GOLDEN_ENV, "") in ("", "0"),
    reason=f"large-N golden tier runs only with {LARGE_GOLDEN_ENV}=1 (nightly)",
)


def combo_key(overlay: str, protocol: str, variant: str) -> str:
    return f"{overlay}/{protocol}/{variant}"


def sharded_combo_key(
    overlay: str, protocol: str, variant: str, shards: int
) -> str:
    return f"{overlay}/{protocol}/{variant}/k{shards}"


def _digest_scenario(scenario) -> str:
    return digest_of(scenario.stats, scenario.simulator.now)


def combo_digest(protocol: str, overlay: str, variant: str) -> str:
    """Digest of one training run: stats fingerprint + final virtual clock."""
    scenario, _ = run_training(protocol, overlay, variant)
    return _digest_scenario(scenario)


def combo_digest_large(protocol: str, overlay: str, variant: str) -> str:
    """Digest of one 100-peer training run of the nightly tier."""
    scenario, _ = run_training_large(protocol, overlay, variant)
    return _digest_scenario(scenario)


def combo_digest_sharded(
    protocol: str, overlay: str, variant: str, shards: int
) -> str:
    """Digest of one training run through the K-shard serial executor."""
    return run_training_sharded(protocol, overlay, variant, shards).digest()


def load_goldens(path: Path = GOLDEN_PATH) -> dict:
    if not path.exists():
        pytest.fail(f"golden file missing: {path}. {REGEN_HINT}")
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("overlay", OVERLAYS)
def test_training_digest_matches_golden(overlay, protocol, variant):
    key = combo_key(overlay, protocol, variant)
    goldens = load_goldens()
    assert key in goldens, f"no golden digest for {key}. {REGEN_HINT}"
    actual = combo_digest(protocol, overlay, variant)
    assert actual == goldens[key], (
        f"stats digest drifted for {key}: expected {goldens[key][:16]}…, "
        f"got {actual[:16]}…. Same seed no longer produces bit-identical "
        f"stats on this combo. {REGEN_HINT}"
    )


def test_golden_file_has_no_stale_entries():
    """Every stored digest corresponds to a live matrix combo (renames and
    removals must regenerate, not accumulate)."""
    goldens = load_goldens()
    expected = {
        combo_key(o, p, v) for o in OVERLAYS for p in PROTOCOLS for v in VARIANTS
    }
    stale = set(goldens) - expected
    assert not stale, f"stale golden entries: {sorted(stale)}. {REGEN_HINT}"


def test_digests_are_run_to_run_stable():
    """The digest of a fresh identical run is identical (no hidden global
    state leaks between scenario constructions)."""
    first = combo_digest("pace", "chord", "churn")
    second = combo_digest("pace", "chord", "churn")
    assert first == second


# ---------------------------------------------------------------------------
# Nightly large-N tier: the same contract at 100 peers, where heap-order
# bugs (tie-breaking, cancellation sets, batch scheduling) actually surface.
# ---------------------------------------------------------------------------


@large_tier
@pytest.mark.parametrize("variant", LARGE_VARIANTS)
@pytest.mark.parametrize("protocol", LARGE_PROTOCOLS)
@pytest.mark.parametrize("overlay", LARGE_OVERLAYS)
def test_large_n(overlay, protocol, variant):
    key = combo_key(overlay, protocol, variant)
    goldens = load_goldens(LARGE_GOLDEN_PATH)
    assert key in goldens, f"no large-N golden digest for {key}. {REGEN_HINT}"
    actual = combo_digest_large(protocol, overlay, variant)
    assert actual == goldens[key], (
        f"large-N stats digest drifted for {key}: expected "
        f"{goldens[key][:16]}…, got {actual[:16]}…. Same seed no longer "
        f"produces bit-identical stats at N=100 on this combo. {REGEN_HINT}"
    )


@large_tier
def test_large_n_golden_file_has_no_stale_entries():
    goldens = load_goldens(LARGE_GOLDEN_PATH)
    expected = {
        combo_key(o, p, v)
        for o in LARGE_OVERLAYS
        for p in LARGE_PROTOCOLS
        for v in LARGE_VARIANTS
    }
    stale = set(goldens) - expected
    assert not stale, f"stale large-N golden entries: {sorted(stale)}. {REGEN_HINT}"


# ---------------------------------------------------------------------------
# Sharded tier: the same determinism contract through the K-shard kernel
# (repro.sim.shard).  The pinned digests double as a K-invariance witness —
# for each combo the k2 and k4 entries must be identical, and both must
# equal the unsharded per-peer-randomness kernel.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shards", SHARDED_COUNTS)
@pytest.mark.parametrize("variant", SHARDED_VARIANTS)
@pytest.mark.parametrize("protocol", SHARDED_PROTOCOLS)
@pytest.mark.parametrize("overlay", SHARDED_OVERLAYS)
def test_sharded_training_digest_matches_golden(
    overlay, protocol, variant, shards
):
    key = sharded_combo_key(overlay, protocol, variant, shards)
    goldens = load_goldens(SHARDED_GOLDEN_PATH)
    assert key in goldens, f"no sharded golden digest for {key}. {REGEN_HINT}"
    actual = combo_digest_sharded(protocol, overlay, variant, shards)
    assert actual == goldens[key], (
        f"sharded stats digest drifted for {key}: expected "
        f"{goldens[key][:16]}…, got {actual[:16]}…. Same seed no longer "
        f"produces bit-identical stats through the K-shard kernel. "
        f"{REGEN_HINT}"
    )


@pytest.mark.parametrize("variant", SHARDED_VARIANTS)
@pytest.mark.parametrize("protocol", SHARDED_PROTOCOLS)
@pytest.mark.parametrize("overlay", SHARDED_OVERLAYS)
def test_sharded_goldens_are_shard_count_invariant_and_match_unsharded(
    overlay, protocol, variant
):
    """The checked-in digests witness the sharding theorem: identical
    across K, and equal to the unsharded kernel on the same scenario."""
    goldens = load_goldens(SHARDED_GOLDEN_PATH)
    digests = {
        goldens[sharded_combo_key(overlay, protocol, variant, shards)]
        for shards in SHARDED_COUNTS
    }
    assert len(digests) == 1, (
        f"{overlay}/{protocol}/{variant}: golden digests differ across "
        f"shard counts. {REGEN_HINT}"
    )
    stats, now = run_training_perpeer(protocol, overlay, variant)
    assert digest_of(stats, now) == digests.pop(), (
        f"{overlay}/{protocol}/{variant}: unsharded per-peer kernel "
        f"diverged from the sharded goldens. {REGEN_HINT}"
    )


@pytest.mark.parametrize("variant", SHARDED_VARIANTS)
@pytest.mark.parametrize("protocol", SHARDED_PROTOCOLS)
@pytest.mark.parametrize("overlay", SHARDED_OVERLAYS)
def test_directory_mode_matches_sharded_goldens(overlay, protocol, variant):
    """The directory-mode smoke: replacing SPMD control-plane replication
    with the directory service (snapshot + per-window deltas) must leave
    every checked-in sharded golden digest untouched — one writer and K
    readers produce the same observable stream as K replicated writers."""
    goldens = load_goldens(SHARDED_GOLDEN_PATH)
    key = sharded_combo_key(overlay, protocol, variant, SHARDED_COUNTS[0])
    run = run_training_sharded(
        protocol, overlay, variant, SHARDED_COUNTS[0],
        control_plane="directory",
    )
    assert run.digest() == goldens[key], (
        f"directory control plane diverged from the sharded golden on "
        f"{key}. The delta protocol changed an observable. {REGEN_HINT}"
    )


def test_sharded_golden_file_has_no_stale_entries():
    goldens = load_goldens(SHARDED_GOLDEN_PATH)
    expected = {
        sharded_combo_key(o, p, v, k)
        for o in SHARDED_OVERLAYS
        for p in SHARDED_PROTOCOLS
        for v in SHARDED_VARIANTS
        for k in SHARDED_COUNTS
    }
    stale = set(goldens) - expected
    assert not stale, f"stale sharded golden entries: {sorted(stale)}. {REGEN_HINT}"
