"""Tests for the virtual file system and File Browser selection semantics."""

import pytest

from repro.core.filebrowser import FileBrowser, VirtualFileSystem, _normalize
from repro.data.corpus import Document
from repro.errors import ConfigurationError


def doc(doc_id, tags=("t",)):
    return Document(doc_id=doc_id, text="x", tags=frozenset(tags), owner=0)


def sample_fs():
    fs = VirtualFileSystem()
    fs.add_document("/docs/work/report.txt", doc(1))
    fs.add_document("/docs/work/notes.txt", doc(2))
    fs.add_document("/docs/personal/diary.txt", doc(3))
    fs.add_document("/music/readme.txt", doc(4))
    return fs


class TestNormalize:
    def test_forms(self):
        assert _normalize("a/b") == "/a/b"
        assert _normalize("/a/b/") == "/a/b"
        assert _normalize("//a//b") == "/a/b"
        assert _normalize("/") == "/"


class TestVirtualFileSystem:
    def test_mkdir_creates_ancestors(self):
        fs = VirtualFileSystem()
        fs.mkdir("/a/b/c")
        assert fs.is_directory("/a")
        assert fs.is_directory("/a/b")
        assert fs.is_directory("/a/b/c")

    def test_add_and_get_document(self):
        fs = sample_fs()
        assert fs.document_at("/docs/work/report.txt").doc_id == 1
        assert fs.is_file("/docs/work/report.txt")
        assert not fs.is_file("/docs/work")

    def test_add_over_directory_rejected(self):
        fs = sample_fs()
        with pytest.raises(ConfigurationError):
            fs.add_document("/docs/work", doc(9))

    def test_missing_document(self):
        with pytest.raises(ConfigurationError):
            sample_fs().document_at("/nope.txt")

    def test_list_directory(self):
        fs = sample_fs()
        subdirs, files = fs.list_directory("/docs")
        assert subdirs == ["/docs/personal", "/docs/work"]
        assert files == []
        _, work_files = fs.list_directory("/docs/work")
        assert work_files == ["/docs/work/notes.txt", "/docs/work/report.txt"]

    def test_list_root(self):
        subdirs, files = sample_fs().list_directory("/")
        assert "/docs" in subdirs and "/music" in subdirs

    def test_list_missing_directory(self):
        with pytest.raises(ConfigurationError):
            sample_fs().list_directory("/ghost")

    def test_walk_recursive(self):
        fs = sample_fs()
        assert len(fs.walk("/docs")) == 3
        assert fs.walk("/docs/work/report.txt") == ["/docs/work/report.txt"]
        assert len(fs.walk()) == 4

    def test_len(self):
        assert len(sample_fs()) == 4

    def test_from_documents_layout(self):
        documents = [doc(i) for i in range(7)]
        fs = VirtualFileSystem.from_documents(documents, folders=3)
        assert len(fs) == 7
        subdirs, _ = fs.list_directory("/home/user/documents")
        assert len(subdirs) == 3
        with pytest.raises(ConfigurationError):
            VirtualFileSystem.from_documents(documents, folders=0)


class TestFileBrowser:
    def test_cd_and_ls(self):
        browser = FileBrowser(sample_fs())
        browser.cd("/docs")
        assert browser.cwd == "/docs"
        browser.cd("work")  # relative
        assert browser.cwd == "/docs/work"
        _, files = browser.ls()
        assert len(files) == 2

    def test_cd_invalid(self):
        with pytest.raises(ConfigurationError):
            FileBrowser(sample_fs()).cd("/nope")

    def test_select_file(self):
        browser = FileBrowser(sample_fs())
        added = browser.select("/docs/work/report.txt")
        assert added == 1
        assert browser.selected_documents()[0].doc_id == 1

    def test_select_folder_recursive(self):
        """The paper: users select documents *or folders* to tag."""
        browser = FileBrowser(sample_fs())
        added = browser.select("/docs")
        assert added == 3
        assert {d.doc_id for d in browser.selected_documents()} == {1, 2, 3}

    def test_select_relative(self):
        browser = FileBrowser(sample_fs())
        browser.cd("/docs")
        browser.select("work")
        assert len(browser) == 2

    def test_select_idempotent(self):
        browser = FileBrowser(sample_fs())
        browser.select("/docs")
        assert browser.select("/docs/work") == 0  # already selected

    def test_deselect(self):
        browser = FileBrowser(sample_fs())
        browser.select("/docs")
        removed = browser.deselect("/docs/work")
        assert removed == 2
        assert len(browser) == 1

    def test_clear(self):
        browser = FileBrowser(sample_fs())
        browser.select("/")
        browser.clear_selection()
        assert len(browser) == 0

    def test_only_approved_documents_flow(self):
        """The approval boundary: unselected files never reach tagging."""
        browser = FileBrowser(sample_fs())
        browser.select("/docs/personal")
        approved = browser.selected_documents()
        assert [d.doc_id for d in approved] == [3]
