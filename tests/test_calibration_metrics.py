"""Tests for Platt calibration and multi-label metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.calibration import PlattCalibrator
from repro.ml.metrics import (
    MultiLabelReport,
    example_f1,
    hamming_loss,
    macro_f1,
    mean_precision_at_k,
    mean_recall_at_k,
    micro_f1,
    multilabel_confusion,
    precision_at_k,
    recall_at_k,
    subset_accuracy,
)


class TestPlattCalibrator:
    def test_monotone_in_decision_value(self):
        rng = np.random.default_rng(0)
        decisions = list(rng.normal(0, 2, 200))
        labels = [1 if d + rng.normal(0, 0.5) > 0 else -1 for d in decisions]
        cal = PlattCalibrator().fit(decisions, labels)
        probs = [cal.probability(d) for d in (-3.0, -1.0, 0.0, 1.0, 3.0)]
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    def test_probabilities_in_unit_interval(self):
        cal = PlattCalibrator().fit([-1.0, 1.0, -2.0, 2.0], [-1, 1, -1, 1])
        for d in (-100.0, -1.0, 0.0, 1.0, 100.0):
            assert 0.0 <= cal.probability(d) <= 1.0

    def test_separable_data_confident(self):
        decisions = [-2.0] * 20 + [2.0] * 20
        labels = [-1] * 20 + [1] * 20
        cal = PlattCalibrator().fit(decisions, labels)
        assert cal.probability(3.0) > 0.8
        assert cal.probability(-3.0) < 0.2

    def test_one_class_fallback(self):
        cal = PlattCalibrator().fit([1.0, 2.0], [1, 1])
        assert cal.is_fitted
        assert cal.probability(1.0) > 0.5
        assert cal.probability(-1.0) < 0.5

    def test_unfitted_raises(self):
        with pytest.raises(NotTrainedError):
            PlattCalibrator().probability(0.0)
        with pytest.raises(NotTrainedError):
            PlattCalibrator().parameters()

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            PlattCalibrator().fit([1.0], [1, -1])

    def test_slope_is_negative(self):
        cal = PlattCalibrator().fit([-1.0, 1.0] * 10, [-1, 1] * 10)
        a, _ = cal.parameters()
        assert a < 0


TRUE = [{"a", "b"}, {"a"}, {"c"}, set()]
PRED = [{"a"}, {"a", "b"}, {"c"}, set()]


class TestConfusion:
    def test_counts(self):
        counts = multilabel_confusion(TRUE, PRED)
        assert counts["a"].tp == 2
        assert counts["a"].fp == 0
        assert counts["a"].fn == 0
        assert counts["b"].tp == 0
        assert counts["b"].fp == 1
        assert counts["b"].fn == 1
        assert counts["c"].tp == 1

    def test_explicit_tag_universe(self):
        counts = multilabel_confusion(TRUE, PRED, tags=["a", "zzz"])
        assert "zzz" in counts
        assert "b" not in counts

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            multilabel_confusion([{"a"}], [])


class TestAggregateMetrics:
    def test_perfect_prediction(self):
        assert micro_f1(TRUE, TRUE) == pytest.approx(1.0)
        assert macro_f1(TRUE, TRUE) == pytest.approx(1.0)
        assert hamming_loss(TRUE, TRUE) == 0.0
        assert subset_accuracy(TRUE, TRUE) == 1.0
        assert example_f1(TRUE, TRUE) == pytest.approx(1.0)

    def test_micro_f1_value(self):
        # tp=3 (a twice, c once), fp=1 (b), fn=1 (b) -> 2*3/(6+1+1)
        assert micro_f1(TRUE, PRED) == pytest.approx(6 / 8)

    def test_all_wrong(self):
        true = [{"a"}, {"a"}]
        pred = [{"b"}, {"b"}]
        assert micro_f1(true, pred) == 0.0
        assert subset_accuracy(true, pred) == 0.0

    def test_hamming_loss_range(self):
        assert 0.0 <= hamming_loss(TRUE, PRED) <= 1.0

    def test_empty_inputs(self):
        assert micro_f1([], []) == 0.0
        assert subset_accuracy([], []) == 0.0
        assert example_f1([], []) == 0.0

    def test_example_f1_empty_sets_count_as_correct(self):
        assert example_f1([set()], [set()]) == pytest.approx(1.0)


class TestRankedMetrics:
    def test_precision_at_k(self):
        assert precision_at_k({"a", "b"}, ["a", "x", "b"], 2) == pytest.approx(0.5)
        assert precision_at_k({"a"}, ["a"], 3) == pytest.approx(1.0)

    def test_recall_at_k(self):
        assert recall_at_k({"a", "b"}, ["a", "x"], 2) == pytest.approx(0.5)
        assert recall_at_k(set(), ["a"], 1) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k({"a"}, ["a"], 0)
        with pytest.raises(ValueError):
            recall_at_k({"a"}, ["a"], -1)

    def test_mean_variants(self):
        true_sets = [{"a"}, {"b"}]
        ranked = [["a", "c"], ["c", "b"]]
        assert mean_precision_at_k(true_sets, ranked, 1) == pytest.approx(0.5)
        assert mean_recall_at_k(true_sets, ranked, 2) == pytest.approx(1.0)
        assert mean_precision_at_k([], [], 1) == 0.0

    def test_recall_monotone_in_k(self):
        truth = {"a", "b", "c"}
        ranked = ["a", "x", "b", "y", "c"]
        recalls = [recall_at_k(truth, ranked, k) for k in range(1, 6)]
        assert recalls == sorted(recalls)


class TestReport:
    def test_compute_and_summary(self):
        report = MultiLabelReport.compute(TRUE, PRED)
        assert report.num_documents == 4
        assert report.num_tags == 3
        assert "microF1" in report.summary()
        assert report.micro_f1 == pytest.approx(6 / 8)


tag_sets = st.lists(
    st.sets(st.sampled_from(["a", "b", "c", "d"]), max_size=4),
    min_size=1,
    max_size=10,
)


@given(tag_sets)
def test_metrics_perfect_on_self(sets):
    assert micro_f1(sets, sets) in (0.0, 1.0)  # 0.0 only if all sets empty
    assert hamming_loss(sets, sets) == 0.0
    assert subset_accuracy(sets, sets) == 1.0


@given(tag_sets, st.randoms())
def test_metric_bounds(sets, rnd):
    predicted = [set(rnd.sample(["a", "b", "c", "d"], rnd.randint(0, 4))) for _ in sets]
    assert 0.0 <= micro_f1(sets, predicted) <= 1.0
    assert 0.0 <= macro_f1(sets, predicted) <= 1.0
    assert 0.0 <= hamming_loss(sets, predicted) <= 1.0
    assert 0.0 <= subset_accuracy(sets, predicted) <= 1.0
    assert 0.0 <= example_f1(sets, predicted) <= 1.0
