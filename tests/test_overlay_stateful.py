"""Stateful property tests: overlay invariants under arbitrary churn.

Hypothesis drives random join/leave/stabilize sequences against Chord and
Kademlia and checks the invariants the P2P classifiers rely on:

- after stabilization, every origin agrees on each key's owner (Chord);
- routing never raises for live members and never loops forever;
- staleness is 0 right after stabilization;
- membership bookkeeping matches the driven sequence exactly.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.overlay.chord import ChordOverlay
from repro.overlay.idspace import key_id_for
from repro.overlay.kademlia import KademliaOverlay


class ChordMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.overlay = ChordOverlay()
        self.live = set()
        self.next_address = 0
        self.stale = False

    @rule()
    def join(self):
        self.overlay.join(self.next_address)
        self.live.add(self.next_address)
        self.next_address += 1
        self.stale = True

    @precondition(lambda self: len(self.live) > 1)
    @rule(data=st.data())
    def leave(self, data):
        victim = data.draw(st.sampled_from(sorted(self.live)))
        self.overlay.leave(victim)
        self.live.discard(victim)
        self.stale = True

    @precondition(lambda self: self.live)
    @rule()
    def stabilize(self):
        self.overlay.stabilize()
        self.stale = False

    @precondition(lambda self: self.live)
    @rule(key_name=st.text(min_size=1, max_size=8))
    def route_never_crashes(self, key_name):
        origin = min(self.live)
        result = self.overlay.route(origin, key_id_for(key_name))
        # Bounded path; owner (when successful) is a live member.
        assert result.hops <= self.overlay.max_hops
        if result.success:
            assert result.owner in self.live

    @invariant()
    def membership_matches(self):
        assert set(self.overlay.members()) == self.live

    @invariant()
    def stabilized_ring_is_consistent(self):
        if self.stale or len(self.live) < 2:
            return
        key = key_id_for("invariant-probe")
        owners = {
            self.overlay.route(origin, key).owner
            for origin in sorted(self.live)[:5]
        }
        assert len(owners) == 1
        assert self.overlay.staleness() == 0.0


class KademliaMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.overlay = KademliaOverlay(seed=3)
        self.live = set()
        self.next_address = 0

    @rule()
    def join(self):
        self.overlay.join(self.next_address)
        self.live.add(self.next_address)
        self.next_address += 1

    @precondition(lambda self: len(self.live) > 1)
    @rule(data=st.data())
    def leave(self, data):
        victim = data.draw(st.sampled_from(sorted(self.live)))
        self.overlay.leave(victim)
        self.live.discard(victim)

    @precondition(lambda self: self.live)
    @rule()
    def refresh(self):
        self.overlay.stabilize()

    @precondition(lambda self: self.live)
    @rule(key_name=st.text(min_size=1, max_size=8))
    def lookup_never_crashes(self, key_name):
        origin = min(self.live)
        result = self.overlay.route(origin, key_id_for(key_name))
        if result.success:
            assert result.owner in self.live

    @invariant()
    def membership_matches(self):
        assert set(self.overlay.members()) == self.live

    @invariant()
    def buckets_hold_no_self(self):
        for address in self.live:
            assert address not in self.overlay.neighbors(address)


TestChordStateful = ChordMachine.TestCase
TestChordStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestKademliaStateful = KademliaMachine.TestCase
TestKademliaStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
