"""Tests for the unified transport layer.

Pins the three guarantees the refactor made: cross-overlay determinism
(same seed, same overlay → bit-identical stats), batched/unbatched send
equivalence (same RNG stream, same delivery times, same stats), and
hop-charging parity with the old per-protocol send paths.
"""

import pytest

from repro.errors import SimulationError
from repro.overlay import make_overlay, overlay_names
from repro.sim.codec import make_codec_table, register_traffic_class
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import LatencyModel, PhysicalNetwork, pair_seed
from repro.sim.stats import StatsCollector
from repro.sim.transport import Transport

ALL_OVERLAYS = (
    "chord", "kademlia", "pastry", "unstructured", "fullmesh", "superpeer"
)

# Traffic classes for the synthetic workload's message types, so the
# "tuned" composite table dispatches on them like real protocol traffic.
register_traffic_class("t.upload", "model")
register_traffic_class("t.bcast", "model")
register_traffic_class("t.query", "vector")


def build_transport(num_nodes=12, overlay_name=None, seed=0, drop=0.0,
                    codec=None):
    simulator = Simulator(seed=seed)
    stats = StatsCollector()
    network = PhysicalNetwork(
        simulator,
        latency=LatencyModel(drop_probability=drop),
        stats=stats,
    )
    for node in range(num_nodes):
        network.register(node, lambda message: None)
    overlay = None
    if overlay_name is not None:
        overlay = make_overlay(overlay_name, seed=seed, degree=4)
        for node in range(num_nodes):
            overlay.join(node)
        stabilize = getattr(overlay, "stabilize", None)
        if callable(stabilize):
            stabilize()
    return Transport(
        network,
        overlay=overlay,
        stats=stats,
        codec=make_codec_table(codec) if codec is not None else None,
    )


def stats_fingerprint(stats):
    return (
        dict(stats.messages_by_type),
        dict(stats.bytes_by_type),
        dict(stats.hops_by_type),
        dict(stats.per_peer_bytes),
        dict(stats.per_peer_received),
        dict(stats.counters),
    )


def drive_workload(transport):
    """A deterministic mixed workload: routed sends, broadcasts, unicast."""
    from repro.overlay.idspace import key_id_for

    for origin in range(6):
        transport.route_and_send(
            origin, key_id_for(f"key{origin}"), "t.upload", {"w": [1.0] * origin}
        )
    transport.broadcast(0, "t.bcast", "payload" * 10)
    for origin in range(1, 6):
        transport.send(origin, 0, "t.query", "q" * origin, hops=2)
    transport.flush()


class TestRegistry:
    def test_all_six_overlays_registered(self):
        assert set(ALL_OVERLAYS) <= set(overlay_names())

    def test_make_overlay_unknown_name(self):
        from repro.errors import OverlayError

        with pytest.raises(OverlayError):
            make_overlay("no-such-overlay")

    @pytest.mark.parametrize("name", ALL_OVERLAYS)
    def test_factory_builds_working_overlay(self, name):
        overlay = make_overlay(name, seed=3, degree=4)
        for node in range(8):
            overlay.join(node)
        assert len(overlay.members()) == 8


class TestCrossOverlayDeterminism:
    @pytest.mark.parametrize("name", ALL_OVERLAYS)
    def test_same_seed_identical_stats(self, name):
        first = build_transport(overlay_name=name, seed=7)
        second = build_transport(overlay_name=name, seed=7)
        drive_workload(first)
        drive_workload(second)
        assert stats_fingerprint(first.stats) == stats_fingerprint(second.stats)
        assert first.simulator.now == second.simulator.now
        assert first.simulator.events_processed == second.simulator.events_processed


class TestBatchedEquivalence:
    @staticmethod
    def _messages():
        return [
            Message(src=i % 5, dst=(i + 1) % 5, msg_type="m", payload="x" * i)
            for i in range(1, 40)
        ]

    def _delivery_log(self, transport, batched):
        log = []
        network = transport.network
        for node in range(5):
            network.register(
                node,
                lambda message, log=log: log.append(
                    (transport.simulator.now, message.msg_id)
                ),
            )
        messages = self._messages()
        if batched:
            outcomes = transport.send_batch(messages)
        else:
            outcomes = [transport.send_message(m) for m in messages]
        transport.flush()
        times = [t for t, _ in log]
        return [o.delivered for o in outcomes], times, transport.stats

    def test_batch_matches_sequential(self):
        batched = build_transport(num_nodes=5, seed=11)
        sequential = build_transport(num_nodes=5, seed=11)
        b_ok, b_times, b_stats = self._delivery_log(batched, batched=True)
        s_ok, s_times, s_stats = self._delivery_log(sequential, batched=False)
        assert b_ok == s_ok
        assert b_times == s_times  # bit-identical jitter draws
        assert stats_fingerprint(b_stats) == stats_fingerprint(s_stats)

    def test_batch_matches_sequential_with_loss(self):
        # With loss the batch path must fall back to per-message draws to
        # keep the drop/jitter stream interleaving identical.
        batched = build_transport(num_nodes=5, seed=5, drop=0.3)
        sequential = build_transport(num_nodes=5, seed=5, drop=0.3)
        b_ok, b_times, b_stats = self._delivery_log(batched, batched=True)
        s_ok, s_times, s_stats = self._delivery_log(sequential, batched=False)
        assert b_ok == s_ok
        assert b_times == s_times
        assert stats_fingerprint(b_stats) == stats_fingerprint(s_stats)

    def test_batch_down_source_not_charged(self):
        transport = build_transport(num_nodes=4, seed=2)
        transport.network.set_down(1)
        messages = [
            Message(src=0, dst=2, msg_type="m"),
            Message(src=1, dst=2, msg_type="m"),  # down source: never sent
            Message(src=2, dst=3, msg_type="m"),
        ]
        outcomes = transport.send_batch(messages)
        assert [o.sent for o in outcomes] == [True, False, True]
        assert transport.stats.messages_by_type["m"] == 2

    def test_batch_loopback_rejected_before_side_effects(self):
        transport = build_transport(num_nodes=4, seed=2)
        with pytest.raises(SimulationError):
            transport.send_batch(
                [
                    Message(src=0, dst=2, msg_type="m"),
                    Message(src=3, dst=3, msg_type="m"),  # loopback
                ]
            )
        # The whole block is rejected up front: nothing charged or queued.
        assert transport.stats.total_messages == 0
        assert transport.simulator.pending_events == 0

    def test_listeners_see_attempts_from_down_sources(self):
        # Parity with the seed tracer, which recorded before the liveness
        # check: a down source's attempt is traced even though nothing is
        # charged or delivered.
        transport = build_transport(num_nodes=4, seed=2)
        seen = []
        transport.network.add_send_listener(
            lambda message: seen.append(message.src)
        )
        transport.network.set_down(1)
        transport.send_batch(
            [Message(src=1, dst=2, msg_type="m"),
             Message(src=0, dst=2, msg_type="m")]
        )
        transport.send_message(Message(src=1, dst=3, msg_type="m"))
        assert seen == [1, 0, 1]
        assert transport.stats.messages_by_type["m"] == 1


class TestHopChargingParity:
    """Transport.route_and_send must charge exactly what the old
    per-protocol code charged: a Message with hops=max(1, route.hops)."""

    @pytest.mark.parametrize(
        "name", ("chord", "kademlia", "pastry", "fullmesh", "superpeer")
    )
    def test_route_and_send_matches_manual_path(self, name):
        from repro.overlay.idspace import key_id_for

        via_transport = build_transport(overlay_name=name, seed=9)
        manual = build_transport(overlay_name=name, seed=9)
        payload = {"weights": [0.5, 0.25]}
        for origin in range(12):
            key = key_id_for(f"sp|tag{origin % 3}|0")
            # New single-call path.
            via_transport.route_and_send(origin, key, "upload", payload)
            # Old per-protocol path, verbatim.
            route = manual.overlay.route(origin, key)
            if not route.success or route.owner is None:
                continue
            if route.owner == origin:
                continue
            manual.network.send(
                Message(
                    src=origin,
                    dst=route.owner,
                    msg_type="upload",
                    payload=payload,
                    hops=max(1, route.hops),
                )
            )
        via_transport.flush()
        manual.flush()
        assert stats_fingerprint(via_transport.stats) == stats_fingerprint(
            manual.stats
        )

    def test_loopback_sends_nothing(self):
        transport = build_transport(overlay_name="fullmesh", seed=0)
        owner_route = transport.route(3, 0)
        outcome = transport.route_and_send(
            owner_route.owner, 0, "upload", "data"
        )
        assert outcome.loopback and outcome.delivered and not outcome.sent
        assert transport.stats.total_messages == 0

    def test_charge_matches_record_message(self):
        charged = build_transport(num_nodes=4)
        messaged = build_transport(num_nodes=4)
        charged.charge(src=1, dst=2, msg_type="probe", size_bytes=48, hops=3)
        messaged.stats.record_message(
            Message(src=1, dst=2, msg_type="probe", size_bytes=48, hops=3)
        )
        assert stats_fingerprint(charged.stats) == stats_fingerprint(
            messaged.stats
        )


class TestBroadcast:
    def test_flood_supplies_recipients_on_unstructured(self):
        transport = build_transport(overlay_name="unstructured", seed=4)
        result = transport.broadcast(0, "b", "payload")
        reached = {dst for dst, _ in result.outcomes}
        assert 0 not in reached
        assert len(reached) == 11  # flood reaches the whole connected graph
        assert result.redundant_messages > 0

    def test_membership_recipients_on_dht(self):
        transport = build_transport(overlay_name="chord", seed=4)
        result = transport.broadcast(0, "b", "payload")
        assert {dst for dst, _ in result.outcomes} == set(range(1, 12))
        assert result.redundant_messages == 0

    def test_payload_sized_once_and_identically(self):
        transport = build_transport(overlay_name="chord", seed=4)
        payload = {"m": [1.0, 2.0, 3.0]}
        transport.broadcast(0, "b", payload)
        reference = Message(src=0, dst=1, msg_type="b", payload=payload)
        per_message = transport.stats.bytes_by_type["b"] / 11
        assert per_message == reference.size_bytes


class TestVectorizedBroadcast:
    """The vectorized recipient bookkeeping must be observationally
    identical to the scalar message-per-recipient path."""

    def _delivery_log(self, transport, scalar, *, down=(), num_nodes=12):
        log = []
        network = transport.network
        for node in range(num_nodes):
            network.register(
                node,
                lambda message, log=log: log.append(
                    (transport.simulator.now, message.src, message.dst,
                     message.msg_type, message.size_bytes)
                ),
            )
        for node in down:
            network.set_down(node)
        transport.scalar_broadcast = scalar
        results = [
            transport.broadcast(
                origin, "b", "payload" * 4, recipients=range(num_nodes)
            )
            for origin in (0, 3)
        ]
        transport.flush()
        return results, log, transport.stats

    @pytest.mark.parametrize(
        "codec", (None, "identity", "gzip-model", "tuned")
    )
    def test_vector_matches_scalar(self, codec):
        v_results, v_log, v_stats = self._delivery_log(
            build_transport(num_nodes=12, seed=21, codec=codec), scalar=False
        )
        s_results, s_log, s_stats = self._delivery_log(
            build_transport(num_nodes=12, seed=21, codec=codec), scalar=True
        )
        assert v_log == s_log  # same delivery times, order, and contents
        assert stats_fingerprint(v_stats) == stats_fingerprint(s_stats)
        # Byte-identical including the wire dimension (present or absent).
        assert v_stats.fingerprint_bytes() == s_stats.fingerprint_bytes()
        for v, s in zip(v_results, s_results):
            assert v.targets == s.targets
            assert list(v.sent) == list(s.sent)
            assert list(v.delivered) == list(s.delivered)

    def test_vector_matches_scalar_with_down_recipients(self):
        v_results, v_log, v_stats = self._delivery_log(
            build_transport(num_nodes=12, seed=8), scalar=False, down=(2, 7)
        )
        s_results, s_log, s_stats = self._delivery_log(
            build_transport(num_nodes=12, seed=8), scalar=True, down=(2, 7)
        )
        assert v_log == s_log
        assert stats_fingerprint(v_stats) == stats_fingerprint(s_stats)
        for v, s in zip(v_results, s_results):
            assert list(v.delivered) == list(s.delivered)
            assert not v.delivered[v.targets.index(2)]

    def test_loss_falls_back_to_scalar_draw_order(self):
        vector = build_transport(num_nodes=8, seed=13, drop=0.4)
        scalar = build_transport(num_nodes=8, seed=13, drop=0.4)
        v = vector.broadcast(0, "b", "x" * 20, recipients=range(8))
        scalar.scalar_broadcast = True
        s = scalar.broadcast(0, "b", "x" * 20, recipients=range(8))
        assert list(v.sent) == list(s.sent)
        assert stats_fingerprint(vector.stats) == stats_fingerprint(scalar.stats)

    def test_down_origin_sends_nothing_either_way(self):
        for scalar in (False, True):
            transport = build_transport(num_nodes=6, seed=3)
            transport.scalar_broadcast = scalar
            transport.network.set_down(0)
            result = transport.broadcast(0, "b", "p", recipients=range(6))
            assert not result.sent.any()
            assert transport.stats.total_messages == 0

    def test_duplicate_recipients_match_scalar_accounting(self):
        # Caller-supplied duplicates must charge per message on both paths
        # (the bulk per-destination update would collapse them, so the
        # vectorized path steps aside).
        vector = build_transport(num_nodes=6, seed=9)
        scalar = build_transport(num_nodes=6, seed=9)
        scalar.scalar_broadcast = True
        recipients = [1, 1, 2, 3]
        v = vector.broadcast(0, "b", "p" * 8, recipients=recipients)
        s = scalar.broadcast(0, "b", "p" * 8, recipients=recipients)
        vector.flush()
        scalar.flush()
        assert list(v.sent) == list(s.sent)
        assert stats_fingerprint(vector.stats) == stats_fingerprint(scalar.stats)
        assert vector.stats.per_peer_received[1] == 2 * (40 + 8)

    def test_listeners_force_scalar_path_and_see_every_message(self):
        transport = build_transport(num_nodes=6, seed=3)
        seen = []
        transport.network.add_send_listener(lambda m: seen.append(m.dst))
        transport.broadcast(0, "b", "p", recipients=range(6))
        assert seen == [1, 2, 3, 4, 5]

    def test_outcomes_materialize_lazily_and_cache(self):
        transport = build_transport(num_nodes=6, seed=3)
        result = transport.broadcast(0, "b", "p", recipients=range(6))
        assert result._outcomes is None  # nothing allocated yet
        outcomes = result.outcomes
        assert [dst for dst, _ in outcomes] == [1, 2, 3, 4, 5]
        assert all(o.delivered for _, o in outcomes)
        assert result.outcomes is outcomes  # cached
        assert result.delivered_to() == [1, 2, 3, 4, 5]
        assert result.delivered_count() == 5

    def test_record_message_block_matches_per_message_recording(self):
        bulk = StatsCollector()
        scalar = StatsCollector()
        bulk.record_message_block("t", 64, src=3, dsts=[1, 2, 5], hops=2)
        for dst in (1, 2, 5):
            scalar.record_traffic("t", 64, hops=2, src=3, dst=dst)
        assert stats_fingerprint(bulk) == stats_fingerprint(scalar)
        assert bulk.fingerprint_bytes() == scalar.fingerprint_bytes()
        assert bulk.digest() == scalar.digest()

    def test_pair_factors_match_scalar_mix(self):
        import numpy as np

        from repro.sim.network import pair_factors

        network = build_transport(num_nodes=1).network
        dsts = np.array([1, 7, 123, 10_000, 2 ** 40], dtype=np.uint64)
        vectorized = pair_factors(5, dsts)
        for dst, factor in zip(dsts.tolist(), vectorized.tolist()):
            assert factor == network._pair_base_latency(5, int(dst))

    def test_are_up_matches_is_up(self):
        network = build_transport(num_nodes=6).network
        network.set_down(2)
        network.unregister(4)
        flags = network.are_up([0, 2, 4, 5])
        assert list(flags) == [network.is_up(n) for n in (0, 2, 4, 5)]


class TestCodecAccounting:
    """The codec table changes accounting only: identity is byte-identical
    to the pre-codec stack, and non-identity codecs add a wire dimension
    without touching the event stream."""

    @pytest.mark.parametrize("name", ALL_OVERLAYS)
    def test_identity_table_matches_default_stack(self, name):
        explicit = build_transport(overlay_name=name, seed=7, codec="identity")
        default = build_transport(overlay_name=name, seed=7)
        drive_workload(explicit)
        drive_workload(default)
        assert (
            explicit.stats.fingerprint_bytes()
            == default.stats.fingerprint_bytes()
        )
        assert explicit.simulator.now == default.simulator.now

    @pytest.mark.parametrize("codec", ("gzip-model", "delta-sparse", "tuned"))
    def test_codec_changes_accounting_not_timing(self, codec):
        coded = build_transport(overlay_name="chord", seed=7, codec=codec)
        plain = build_transport(overlay_name="chord", seed=7)
        drive_workload(coded)
        drive_workload(plain)
        # The raw dimension and the event stream are untouched...
        assert coded.simulator.now == plain.simulator.now
        assert coded.simulator.events_processed == plain.simulator.events_processed
        assert dict(coded.stats.bytes_by_type) == dict(plain.stats.bytes_by_type)
        assert dict(coded.stats.per_peer_received) == dict(
            plain.stats.per_peer_received
        )
        # ...while the wire dimension shrinks below raw somewhere.
        assert coded.stats.total_wire_bytes < coded.stats.total_bytes

    def test_broadcast_wire_bytes_match_codec_model(self):
        transport = build_transport(overlay_name="chord", seed=4,
                                    codec="gzip-model")
        payload = "payload" * 40
        transport.broadcast(0, "b", payload)
        reference = Message(src=0, dst=1, msg_type="b", payload=payload)
        expected = transport.codec.wire_size("b", reference.size_bytes)
        assert transport.stats.wire_bytes_by_type["b"] == 11 * expected
        assert transport.stats.bytes_by_type["b"] == 11 * reference.size_bytes

    def test_charge_flows_through_codec(self):
        transport = build_transport(num_nodes=4, codec="gzip-model")
        transport.charge(src=1, dst=2, msg_type="probe", size_bytes=4000, hops=2)
        expected = transport.codec.wire_size("probe", 4000)
        assert transport.stats.wire_bytes_by_type["probe"] == 2 * expected
        assert transport.stats.bytes_by_type["probe"] == 2 * 4000

    def test_route_and_send_stamps_wire_size(self):
        from repro.overlay.idspace import key_id_for

        transport = build_transport(overlay_name="fullmesh", seed=2,
                                    codec="gzip-model")
        payload = {"weights": [0.5] * 100}
        outcome = transport.route_and_send(0, key_id_for("k"), "upload", payload)
        assert outcome.sent
        assert (
            transport.stats.wire_bytes_by_type["upload"]
            < transport.stats.bytes_by_type["upload"]
        )

    def test_swapping_codec_table_updates_identity_fast_path(self):
        transport = build_transport(num_nodes=4)
        assert transport._codec_is_identity
        transport.codec = make_codec_table("gzip-model")
        assert not transport._codec_is_identity
        transport.send(0, 1, "m", "x" * 500)
        assert transport.stats.has_compressed_traffic


class TestTransportErrors:
    def test_self_send_rejected(self):
        transport = build_transport(num_nodes=3)
        with pytest.raises(SimulationError):
            transport.send(1, 1, "m")

    def test_route_without_overlay_rejected(self):
        transport = build_transport(num_nodes=3)
        with pytest.raises(SimulationError):
            transport.route(0, 123)


class TestPairSeedStability:
    def test_explicit_values_pinned(self):
        # Pinned constants: if these move, latencies (and thus event order)
        # change between releases — bump deliberately, never accidentally.
        assert pair_seed(0, 1) == pair_seed(1, 0)
        assert pair_seed(0, 1) == 1145638755
        assert pair_seed(3, 17) == 1030546435

    def test_distinct_pairs_distinct_seeds(self):
        seeds = {pair_seed(a, b) for a in range(30) for b in range(a + 1, 30)}
        assert len(seeds) == 30 * 29 // 2
