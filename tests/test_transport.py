"""Tests for the unified transport layer.

Pins the three guarantees the refactor made: cross-overlay determinism
(same seed, same overlay → bit-identical stats), batched/unbatched send
equivalence (same RNG stream, same delivery times, same stats), and
hop-charging parity with the old per-protocol send paths.
"""

import pytest

from repro.errors import SimulationError
from repro.overlay import make_overlay, overlay_names
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import LatencyModel, PhysicalNetwork, pair_seed
from repro.sim.stats import StatsCollector
from repro.sim.transport import Transport

ALL_OVERLAYS = ("chord", "kademlia", "pastry", "unstructured", "fullmesh")


def build_transport(num_nodes=12, overlay_name=None, seed=0, drop=0.0):
    simulator = Simulator(seed=seed)
    stats = StatsCollector()
    network = PhysicalNetwork(
        simulator,
        latency=LatencyModel(drop_probability=drop),
        stats=stats,
    )
    for node in range(num_nodes):
        network.register(node, lambda message: None)
    overlay = None
    if overlay_name is not None:
        overlay = make_overlay(overlay_name, seed=seed, degree=4)
        for node in range(num_nodes):
            overlay.join(node)
        stabilize = getattr(overlay, "stabilize", None)
        if callable(stabilize):
            stabilize()
    return Transport(network, overlay=overlay, stats=stats)


def stats_fingerprint(stats):
    return (
        dict(stats.messages_by_type),
        dict(stats.bytes_by_type),
        dict(stats.hops_by_type),
        dict(stats.per_peer_bytes),
        dict(stats.per_peer_received),
        dict(stats.counters),
    )


def drive_workload(transport):
    """A deterministic mixed workload: routed sends, broadcasts, unicast."""
    from repro.overlay.idspace import key_id_for

    for origin in range(6):
        transport.route_and_send(
            origin, key_id_for(f"key{origin}"), "t.upload", {"w": [1.0] * origin}
        )
    transport.broadcast(0, "t.bcast", "payload" * 10)
    for origin in range(1, 6):
        transport.send(origin, 0, "t.query", "q" * origin, hops=2)
    transport.flush()


class TestRegistry:
    def test_all_five_overlays_registered(self):
        assert set(ALL_OVERLAYS) <= set(overlay_names())

    def test_make_overlay_unknown_name(self):
        from repro.errors import OverlayError

        with pytest.raises(OverlayError):
            make_overlay("no-such-overlay")

    @pytest.mark.parametrize("name", ALL_OVERLAYS)
    def test_factory_builds_working_overlay(self, name):
        overlay = make_overlay(name, seed=3, degree=4)
        for node in range(8):
            overlay.join(node)
        assert len(overlay.members()) == 8


class TestCrossOverlayDeterminism:
    @pytest.mark.parametrize("name", ALL_OVERLAYS)
    def test_same_seed_identical_stats(self, name):
        first = build_transport(overlay_name=name, seed=7)
        second = build_transport(overlay_name=name, seed=7)
        drive_workload(first)
        drive_workload(second)
        assert stats_fingerprint(first.stats) == stats_fingerprint(second.stats)
        assert first.simulator.now == second.simulator.now
        assert first.simulator.events_processed == second.simulator.events_processed


class TestBatchedEquivalence:
    @staticmethod
    def _messages():
        return [
            Message(src=i % 5, dst=(i + 1) % 5, msg_type="m", payload="x" * i)
            for i in range(1, 40)
        ]

    def _delivery_log(self, transport, batched):
        log = []
        network = transport.network
        for node in range(5):
            network.register(
                node,
                lambda message, log=log: log.append(
                    (transport.simulator.now, message.msg_id)
                ),
            )
        messages = self._messages()
        if batched:
            outcomes = transport.send_batch(messages)
        else:
            outcomes = [transport.send_message(m) for m in messages]
        transport.flush()
        times = [t for t, _ in log]
        return [o.delivered for o in outcomes], times, transport.stats

    def test_batch_matches_sequential(self):
        batched = build_transport(num_nodes=5, seed=11)
        sequential = build_transport(num_nodes=5, seed=11)
        b_ok, b_times, b_stats = self._delivery_log(batched, batched=True)
        s_ok, s_times, s_stats = self._delivery_log(sequential, batched=False)
        assert b_ok == s_ok
        assert b_times == s_times  # bit-identical jitter draws
        assert stats_fingerprint(b_stats) == stats_fingerprint(s_stats)

    def test_batch_matches_sequential_with_loss(self):
        # With loss the batch path must fall back to per-message draws to
        # keep the drop/jitter stream interleaving identical.
        batched = build_transport(num_nodes=5, seed=5, drop=0.3)
        sequential = build_transport(num_nodes=5, seed=5, drop=0.3)
        b_ok, b_times, b_stats = self._delivery_log(batched, batched=True)
        s_ok, s_times, s_stats = self._delivery_log(sequential, batched=False)
        assert b_ok == s_ok
        assert b_times == s_times
        assert stats_fingerprint(b_stats) == stats_fingerprint(s_stats)

    def test_batch_down_source_not_charged(self):
        transport = build_transport(num_nodes=4, seed=2)
        transport.network.set_down(1)
        messages = [
            Message(src=0, dst=2, msg_type="m"),
            Message(src=1, dst=2, msg_type="m"),  # down source: never sent
            Message(src=2, dst=3, msg_type="m"),
        ]
        outcomes = transport.send_batch(messages)
        assert [o.sent for o in outcomes] == [True, False, True]
        assert transport.stats.messages_by_type["m"] == 2

    def test_batch_loopback_rejected_before_side_effects(self):
        transport = build_transport(num_nodes=4, seed=2)
        with pytest.raises(SimulationError):
            transport.send_batch(
                [
                    Message(src=0, dst=2, msg_type="m"),
                    Message(src=3, dst=3, msg_type="m"),  # loopback
                ]
            )
        # The whole block is rejected up front: nothing charged or queued.
        assert transport.stats.total_messages == 0
        assert transport.simulator.pending_events == 0

    def test_listeners_see_attempts_from_down_sources(self):
        # Parity with the seed tracer, which recorded before the liveness
        # check: a down source's attempt is traced even though nothing is
        # charged or delivered.
        transport = build_transport(num_nodes=4, seed=2)
        seen = []
        transport.network.add_send_listener(
            lambda message: seen.append(message.src)
        )
        transport.network.set_down(1)
        transport.send_batch(
            [Message(src=1, dst=2, msg_type="m"),
             Message(src=0, dst=2, msg_type="m")]
        )
        transport.send_message(Message(src=1, dst=3, msg_type="m"))
        assert seen == [1, 0, 1]
        assert transport.stats.messages_by_type["m"] == 1


class TestHopChargingParity:
    """Transport.route_and_send must charge exactly what the old
    per-protocol code charged: a Message with hops=max(1, route.hops)."""

    @pytest.mark.parametrize("name", ("chord", "kademlia", "pastry", "fullmesh"))
    def test_route_and_send_matches_manual_path(self, name):
        from repro.overlay.idspace import key_id_for

        via_transport = build_transport(overlay_name=name, seed=9)
        manual = build_transport(overlay_name=name, seed=9)
        payload = {"weights": [0.5, 0.25]}
        for origin in range(12):
            key = key_id_for(f"sp|tag{origin % 3}|0")
            # New single-call path.
            via_transport.route_and_send(origin, key, "upload", payload)
            # Old per-protocol path, verbatim.
            route = manual.overlay.route(origin, key)
            if not route.success or route.owner is None:
                continue
            if route.owner == origin:
                continue
            manual.network.send(
                Message(
                    src=origin,
                    dst=route.owner,
                    msg_type="upload",
                    payload=payload,
                    hops=max(1, route.hops),
                )
            )
        via_transport.flush()
        manual.flush()
        assert stats_fingerprint(via_transport.stats) == stats_fingerprint(
            manual.stats
        )

    def test_loopback_sends_nothing(self):
        transport = build_transport(overlay_name="fullmesh", seed=0)
        owner_route = transport.route(3, 0)
        outcome = transport.route_and_send(
            owner_route.owner, 0, "upload", "data"
        )
        assert outcome.loopback and outcome.delivered and not outcome.sent
        assert transport.stats.total_messages == 0

    def test_charge_matches_record_message(self):
        charged = build_transport(num_nodes=4)
        messaged = build_transport(num_nodes=4)
        charged.charge(src=1, dst=2, msg_type="probe", size_bytes=48, hops=3)
        messaged.stats.record_message(
            Message(src=1, dst=2, msg_type="probe", size_bytes=48, hops=3)
        )
        assert stats_fingerprint(charged.stats) == stats_fingerprint(
            messaged.stats
        )


class TestBroadcast:
    def test_flood_supplies_recipients_on_unstructured(self):
        transport = build_transport(overlay_name="unstructured", seed=4)
        result = transport.broadcast(0, "b", "payload")
        reached = {dst for dst, _ in result.outcomes}
        assert 0 not in reached
        assert len(reached) == 11  # flood reaches the whole connected graph
        assert result.redundant_messages > 0

    def test_membership_recipients_on_dht(self):
        transport = build_transport(overlay_name="chord", seed=4)
        result = transport.broadcast(0, "b", "payload")
        assert {dst for dst, _ in result.outcomes} == set(range(1, 12))
        assert result.redundant_messages == 0

    def test_payload_sized_once_and_identically(self):
        transport = build_transport(overlay_name="chord", seed=4)
        payload = {"m": [1.0, 2.0, 3.0]}
        transport.broadcast(0, "b", payload)
        reference = Message(src=0, dst=1, msg_type="b", payload=payload)
        per_message = transport.stats.bytes_by_type["b"] / 11
        assert per_message == reference.size_bytes


class TestTransportErrors:
    def test_self_send_rejected(self):
        transport = build_transport(num_nodes=3)
        with pytest.raises(SimulationError):
            transport.send(1, 1, "m")

    def test_route_without_overlay_rejected(self):
        transport = build_transport(num_nodes=3)
        with pytest.raises(SimulationError):
            transport.route(0, 123)


class TestPairSeedStability:
    def test_explicit_values_pinned(self):
        # Pinned constants: if these move, latencies (and thus event order)
        # change between releases — bump deliberately, never accidentally.
        assert pair_seed(0, 1) == pair_seed(1, 0)
        assert pair_seed(0, 1) == 1145638755
        assert pair_seed(3, 17) == 1030546435

    def test_distinct_pairs_distinct_seeds(self):
        seeds = {pair_seed(a, b) for a in range(30) for b in range(a + 1, 30)}
        assert len(seeds) == 30 * 29 // 2
