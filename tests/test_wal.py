"""The simulation WAL: checkpoint, resume, and window-prefix replay.

Three layers of coverage:

- file framing — CRC-framed records, torn-tail tolerance, corruption
  detection, the ``truncate_wal`` crash simulator;
- resume semantics — verified prefix replay against checked-in golden
  digests for serial/mp executors under both control planes, the
  resume-at-every-window fuzz, hard-crash recovery, divergence and
  config-mismatch rejection;
- replay — the isolated window re-execution API and its CLI.

The fuzz sweep runs a handful of resume positions in tier-1 and the
full every-window matrix when ``REPRO_WAL_FUZZ=1`` (nightly).
"""

import json
import os
import pickle
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.envutil import env_flag
from repro.errors import ConfigurationError, SimulationError
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.shard import ShardedScenario, scenario_digest
from repro.sim.stats import StatsCollector
from repro.sim.wal import (
    WalReader,
    WalWriter,
    WindowRecord,
    replay_windows,
    truncate_wal,
)
from determinism_fixtures import run_training_sharded

SHARDED_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "training_digests_sharded.json"
)

#: gates the full resume-at-every-window sweep (nightly CI)
WAL_FUZZ_ENV = "REPRO_WAL_FUZZ"

FULL_FUZZ = env_flag(WAL_FUZZ_ENV)


def golden(key: str) -> str:
    digests = json.loads(SHARDED_GOLDEN_PATH.read_text(encoding="utf-8"))
    assert key in digests, f"no sharded golden digest for {key}"
    return digests[key]


def _config(num_peers, shards, **overrides):
    options = dict(
        num_peers=num_peers,
        overlay="fullmesh",
        churn="none",
        rng_mode="perpeer",
        jitter_floor=0.5,
        shards=shards,
        shard=ShardSpec(num_peers=num_peers),
        seed=5,
    )
    options.update(overrides)
    return ScenarioConfig(**options)


def _storm_workload(scenario):
    network = scenario.network
    for src in range(8):
        if scenario.owns(src):
            dsts = [d for d in range(8) if d != src]
            for _ in range(16):
                network.broadcast_block(src, dsts, "storm", None, 256)
    scenario.simulator.run_until_idle()
    return None


# ---------------------------------------------------------------------------
# File framing.
# ---------------------------------------------------------------------------


def _record(barrier: int) -> WindowRecord:
    return WindowRecord(
        barrier=barrier,
        window_start=0.5 * barrier,
        global_last=0.5 * barrier + 0.25,
        total_executed=10 * barrier + 3,
        statuses=[
            (0.5 * (barrier + 1), 0.5 * barrier + 0.25, 7, [], None),
            (0.5 * (barrier + 1), 0.5 * barrier + 0.125, 8, [],
             {"stats": {"counters": {"x": barrier}}, "kernel": {"seq": barrier}}),
        ],
        frames={(0, 1): b"frame-bytes-%d" % barrier},
        control=[(0.5 * barrier, f"delta-{barrier}")],
    )


def _write_log(path, windows: int, commit: bool = False) -> None:
    writer = WalWriter.create(
        str(path), num_shards=2, lookahead=0.5,
        meta={"config": {"seed": 5}, "cursor_every": 1, "use_frames": True},
    )
    for barrier in range(windows):
        writer.append_window(_record(barrier))
    if commit:
        writer.append_commit(
            {"digest": "d" * 64, "now": 9.75, "windows": windows, "tails": []}
        )
    writer.close()


def test_framing_roundtrip(tmp_path):
    path = tmp_path / "log.wal"
    _write_log(path, windows=3, commit=True)
    reader = WalReader(str(path))
    assert reader.num_shards == 2
    assert reader.lookahead == 0.5
    assert reader.meta["cursor_every"] == 1
    assert not reader.truncated
    assert len(reader.windows) == 3
    for barrier, record in enumerate(reader.windows):
        assert record == _record(barrier)
    assert reader.commit["windows"] == 3
    assert reader.valid_offset == os.path.getsize(path)


def test_reader_tolerates_torn_tail(tmp_path):
    """A crash mid-append leaves a partial record; the durable prefix must
    survive and the valid offset must point at the last complete record."""
    path = tmp_path / "log.wal"
    _write_log(path, windows=3)
    full = WalReader(str(path))
    with open(path, "r+b") as fh:
        fh.truncate(full.window_offsets[2] - 3)
    reader = WalReader(str(path))
    assert reader.truncated
    assert len(reader.windows) == 2
    assert reader.windows[1] == _record(1)
    assert reader.valid_offset == full.window_offsets[1]


def test_reader_treats_crc_corruption_as_torn_tail(tmp_path):
    path = tmp_path / "log.wal"
    _write_log(path, windows=3)
    full = WalReader(str(path))
    with open(path, "r+b") as fh:
        fh.seek(full.window_offsets[2] - 5)  # inside the last payload
        byte = fh.read(1)
        fh.seek(-1, os.SEEK_CUR)
        fh.write(bytes([byte[0] ^ 0xFF]))
    reader = WalReader(str(path))
    assert reader.truncated
    assert len(reader.windows) == 2


def test_reader_rejects_non_wal_files(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"not a write-ahead log, definitely" * 4)
    with pytest.raises(SimulationError, match="bad magic"):
        WalReader(str(path))
    with pytest.raises(ConfigurationError, match="not found"):
        WalReader(str(tmp_path / "missing.wal"))


def test_truncate_wal_keeps_exact_prefix(tmp_path):
    path = tmp_path / "log.wal"
    _write_log(path, windows=4, commit=True)
    out = truncate_wal(str(path), 2, out_path=str(tmp_path / "cut.wal"))
    reader = WalReader(out)
    assert len(reader.windows) == 2
    assert reader.commit is None  # the commit record is past the cut
    assert not reader.truncated
    with pytest.raises(ConfigurationError, match="only"):
        truncate_wal(str(path), 9)


# ---------------------------------------------------------------------------
# Checkpoint + resume against the checked-in golden digests.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "executor,control_plane",
    [
        ("serial", "replicated"),
        ("serial", "directory"),
        ("mp", "replicated"),
        ("mp", "directory"),
    ],
)
def test_checkpoint_then_resume_matches_golden(tmp_path, executor, control_plane):
    """Checkpoint a training combo, chop the log mid-run, resume: both the
    checkpointed and the resumed digests must equal the checked-in sharded
    golden — byte-identical to the uninterrupted run."""
    expected = golden("chord/pace/churn/k2")
    wal = str(tmp_path / "train.wal")
    run = run_training_sharded(
        "pace", "chord", "churn", 2, executor=executor,
        control_plane=control_plane, wal=wal,
    )
    assert run.digest() == expected
    reader = WalReader(wal)
    assert reader.commit is not None and reader.commit["digest"] == expected
    assert len(reader.windows) == run.windows

    truncate_wal(wal, len(reader.windows) // 2)
    resumed = run_training_sharded(
        "pace", "chord", "churn", 2, executor=executor,
        control_plane=control_plane, resume=wal,
    )
    assert resumed.digest() == expected
    assert WalReader(wal).commit["digest"] == expected  # re-sealed


def test_resume_committed_log_is_pure_verification(tmp_path):
    """Resuming a *committed* log appends nothing: the whole run executes
    in verify mode and the file must not change by a byte."""
    expected = golden("chord/pace/churn/k2")
    wal = str(tmp_path / "train.wal")
    run_training_sharded("pace", "chord", "churn", 2, wal=wal)
    before = Path(wal).read_bytes()
    resumed = run_training_sharded("pace", "chord", "churn", 2, resume=wal)
    assert resumed.digest() == expected
    assert Path(wal).read_bytes() == before


def test_cross_executor_resume(tmp_path):
    """A WAL written by the serial coordinator resumes under the mp
    executor (and vice versa): executor is excluded from the config
    fingerprint because the two are byte-equivalent by contract."""
    expected = golden("chord/pace/churn/k2")
    wal = str(tmp_path / "serial.wal")
    run_training_sharded("pace", "chord", "churn", 2, executor="serial", wal=wal)
    truncate_wal(wal, 10)
    resumed = run_training_sharded(
        "pace", "chord", "churn", 2, executor="mp", resume=wal
    )
    assert resumed.digest() == expected


def test_resume_and_relog_to_fresh_file(tmp_path):
    """``--resume OLD --wal NEW``: verify against OLD while rewriting the
    full verified+live stream to NEW; NEW becomes a complete committed log
    usable for further resumes."""
    expected = golden("chord/pace/churn/k2")
    old = str(tmp_path / "old.wal")
    new = str(tmp_path / "new.wal")
    run = run_training_sharded("pace", "chord", "churn", 2, wal=old)
    truncate_wal(old, 5)
    resumed = run_training_sharded(
        "pace", "chord", "churn", 2, resume=old, wal=new
    )
    assert resumed.digest() == expected
    reader = WalReader(new)
    assert len(reader.windows) == run.windows
    assert reader.commit["digest"] == expected
    assert WalReader(old).commit is None  # OLD keeps its 5-window prefix


def test_resume_zero_window_log(tmp_path):
    """Resuming a header-only log (every window chopped off) is legal:
    nothing verifies, the whole run executes live, and the digest still
    lands on the golden — the degenerate prefix is just 'from scratch'."""
    expected = golden("chord/pace/churn/k2")
    wal = str(tmp_path / "empty.wal")
    run_training_sharded("pace", "chord", "churn", 2, wal=wal)
    truncate_wal(wal, 0)
    reader = WalReader(wal)
    assert reader.windows == [] and reader.commit is None
    resumed = run_training_sharded("pace", "chord", "churn", 2, resume=wal)
    assert resumed.digest() == expected


def test_torn_tail_at_first_window_record(tmp_path):
    """A log whose torn tail is the *first* window record: the reader
    discards it (zero verified windows) and resume replays from scratch
    to the identical digest — the crash-window edge case of the torn-tail
    rule."""
    expected = golden("chord/pace/churn/k2")
    wal = str(tmp_path / "torn.wal")
    run_training_sharded("pace", "chord", "churn", 2, wal=wal)
    truncate_wal(wal, 1)  # exactly one window record
    with open(wal, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        handle.truncate(handle.tell() - 7)  # tear into that record
    reader = WalReader(wal)
    assert reader.truncated
    assert reader.windows == []
    resumed = run_training_sharded("pace", "chord", "churn", 2, resume=wal)
    assert resumed.digest() == expected


# ---------------------------------------------------------------------------
# Resume-at-every-window fuzz (K=2 storm combo).
# ---------------------------------------------------------------------------


def test_resume_at_every_window_fuzz(tmp_path, monkeypatch):
    """Chop the log at window W and resume, for W across the whole run:
    every resume must land on the identical digest.  Cursors are logged at
    every barrier (cadence 1) while the WAL is written, and the resume runs
    under a different env cadence to prove the logged cadence wins."""
    monkeypatch.setenv("REPRO_WAL_CURSORS_EVERY", "1")
    wal = str(tmp_path / "storm.wal")
    run = ShardedScenario(_config(8, shards=2, wal=wal)).run(_storm_workload)
    expected = run.digest()
    reader = WalReader(wal)
    assert len(reader.windows) == run.windows >= 3

    monkeypatch.setenv("REPRO_WAL_CURSORS_EVERY", "7")
    total = len(reader.windows)
    if FULL_FUZZ:
        positions = list(range(total + 1))
    else:
        positions = sorted({0, 1, total // 2, total - 1, total})
    for keep in positions:
        cut = str(tmp_path / f"storm-{keep}.wal")
        truncate_wal(wal, keep, out_path=cut)
        resumed = ShardedScenario(
            _config(8, shards=2, resume=cut)
        ).run(_storm_workload)
        assert resumed.digest() == expected, f"resume at window {keep} diverged"
        assert WalReader(cut).commit["digest"] == expected


# ---------------------------------------------------------------------------
# Hard-crash recovery (the PR 6 regression, extended to the WAL path).
# ---------------------------------------------------------------------------


def _crashing_workload(die: bool):
    """The storm workload plus one timer on peer 1's shard that either
    kills the process (checkpoint run) or does nothing (resume run).  The
    timer is scheduled in *both* runs so the kernel's sequence cursor — a
    logged, verified observable — is identical across them."""

    def workload(scenario):
        if scenario.owns(1):
            scenario.simulator.schedule_at(
                1.6, (lambda: os._exit(3)) if die else (lambda: None),
                label="die",
            )
        return _storm_workload(scenario)

    return workload


def test_crash_recovery_resumes_to_identical_digest(tmp_path, monkeypatch):
    """Kill a worker mid-window while checkpointing, then resume from the
    durable prefix: the final fingerprint must be byte-identical to the
    never-crashed run."""
    monkeypatch.setenv("REPRO_EXCHANGE_TIMEOUT_S", "10")
    reference = ShardedScenario(_config(8, shards=2)).run(
        _crashing_workload(die=False)
    )
    wal = str(tmp_path / "crash.wal")
    with pytest.raises(SimulationError, match="died mid-window"):
        ShardedScenario(
            _config(8, shards=2, wal=wal), executor="mp"
        ).run(_crashing_workload(die=True))

    reader = WalReader(wal)
    assert reader.commit is None
    assert len(reader.windows) >= 2  # the prefix before the crash is durable

    resumed = ShardedScenario(_config(8, shards=2, resume=wal)).run(
        _crashing_workload(die=False)
    )
    assert resumed.digest() == reference.digest()
    assert WalReader(wal).commit["digest"] == reference.digest()


# ---------------------------------------------------------------------------
# Divergence + misconfiguration rejection.
# ---------------------------------------------------------------------------


def test_resume_detects_divergence(tmp_path):
    """A log whose records do not match the re-executed run must fail
    loudly at the first divergent window, naming what moved."""
    wal = str(tmp_path / "storm.wal")
    ShardedScenario(_config(8, shards=2, wal=wal)).run(_storm_workload)
    reader = WalReader(wal)

    # Rewrite the log with window 1's executed-event total off by one.
    forged = str(tmp_path / "forged.wal")
    writer = WalWriter.create(
        forged, reader.num_shards, reader.lookahead, reader.meta
    )
    for record in reader.windows:
        if record.barrier == 1:
            record.total_executed += 1
        writer.append_window(record)
    writer.close()

    with pytest.raises(SimulationError, match="WAL divergence at window 1"):
        ShardedScenario(_config(8, shards=2, resume=forged)).run(_storm_workload)


def test_resume_rejects_mismatched_config(tmp_path):
    wal = str(tmp_path / "storm.wal")
    ShardedScenario(_config(8, shards=2, wal=wal)).run(_storm_workload)
    with pytest.raises(ConfigurationError, match="seed"):
        ShardedScenario(_config(8, shards=2, seed=6, resume=wal)).run(
            _storm_workload
        )


def test_resume_rejects_mismatched_shard_count(tmp_path):
    wal = str(tmp_path / "storm.wal")
    ShardedScenario(_config(8, shards=2, wal=wal)).run(_storm_workload)
    with pytest.raises(ConfigurationError, match="2 shards"):
        ShardedScenario(_config(8, shards=4, resume=wal)).run(_storm_workload)


def test_wal_requires_sharded_kernel():
    with pytest.raises(ConfigurationError, match="shards >= 1"):
        _config(8, shards=0, wal="x.wal").validate()


def test_wal_rejects_scalar_exchange(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR_EXCHANGE", "1")
    with pytest.raises(ConfigurationError, match="SCALAR_EXCHANGE"):
        ShardedScenario(
            _config(8, shards=2, wal=str(tmp_path / "x.wal"))
        ).run(_storm_workload)


# ---------------------------------------------------------------------------
# The delta algebra: Σ(window deltas) + commit tails == final fingerprint.
# ---------------------------------------------------------------------------


def test_logged_deltas_and_tails_reconstruct_final_stats(tmp_path):
    wal = str(tmp_path / "storm.wal")
    run = ShardedScenario(_config(8, shards=2, wal=wal)).run(_storm_workload)
    reader = WalReader(wal)

    rebuilt = StatsCollector()
    for record in reader.windows:
        for status in record.statuses:
            extras = None if status[4] is None else pickle.loads(status[4])
            if extras is not None and extras.get("stats"):
                rebuilt.apply_delta(extras["stats"])
    for tail in reader.commit["tails"]:
        if tail is not None and tail.get("stats"):
            rebuilt.apply_delta(tail["stats"])

    for family in StatsCollector._DELTA_FAMILIES:
        got = {k: v for k, v in getattr(rebuilt, family).items() if v}
        want = {k: v for k, v in getattr(run.stats, family).items() if v}
        assert got == want, f"family {family} does not reconstruct"
    assert scenario_digest(rebuilt, run.now) == run.digest()


# ---------------------------------------------------------------------------
# Replay.
# ---------------------------------------------------------------------------


def test_replay_reexecutes_logged_windows(tmp_path):
    wal = str(tmp_path / "storm.wal")
    run = ShardedScenario(_config(8, shards=2, wal=wal)).run(_storm_workload)
    windows = list(replay_windows(wal))
    assert len(windows) == run.windows
    total = sum(len(w.deliveries) for w in windows)
    assert total == run.stats.exchange["records"]
    for window in windows:
        for (time, src, dst, msg_type, size, wire, hops) in window.deliveries:
            assert window.window_start <= time
            assert msg_type == "storm" and size == 256 and hops >= 1
    # A sub-range replays in isolation.
    subset = list(replay_windows(wal, start=1, stop=3))
    assert [w.barrier for w in subset] == [1, 2]
    assert subset[0].deliveries == windows[1].deliveries
    with pytest.raises(ConfigurationError, match="outside the log"):
        list(replay_windows(wal, start=5, stop=2))


def test_replay_cli(tmp_path, capsys):
    wal = str(tmp_path / "storm.wal")
    ShardedScenario(_config(8, shards=2, wal=wal)).run(_storm_workload)
    assert cli_main(["replay", wal, "--from", "0", "--to", "2", "--records"]) == 0
    out = capsys.readouterr().out
    assert "[wal]" in out and "window 0:" in out and "commit:" in out
    assert "storm" in out
