"""Batch/sequential equivalence for scheduled training rounds and the
vectorized broadcast.

The tentpole refactor keeps two legacy drivers behind debug flags — the
sequential ``_advance`` stagger loop (``scalar_rounds``) and the
message-per-recipient broadcast path (``scalar_broadcast``).  These
property tests run every round-driving protocol through both drivers on
every overlay under no-churn, churn, and loss, and assert *byte-identical*
``StatsCollector`` output (canonical-JSON fingerprint bytes) plus an
identical final virtual clock.  The baselines' bulk-scheduled upload blocks
are checked against per-message sequential sends the same way.
"""

import pytest

from tests.determinism_fixtures import (
    OVERLAYS,
    VARIANTS,
    build_classifier,
    build_scenario,
    run_training,
)

#: protocols whose training rounds stagger peer activations
ROUND_PROTOCOLS = ("pace", "private", "cempar", "nbagg")


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("overlay", OVERLAYS)
@pytest.mark.parametrize("protocol", ROUND_PROTOCOLS)
def test_scheduled_round_matches_scalar_round(protocol, overlay, variant):
    batch_scenario, batch_classifier = run_training(protocol, overlay, variant)
    scalar_scenario, scalar_classifier = run_training(
        protocol, overlay, variant, scalar=True
    )
    assert (
        batch_scenario.stats.fingerprint_bytes()
        == scalar_scenario.stats.fingerprint_bytes()
    )
    assert batch_scenario.simulator.now == scalar_scenario.simulator.now
    # Spot-check protocol state beyond the stats stream.
    if protocol in ("pace", "private"):
        for address in batch_scenario.peer_addresses:
            assert batch_classifier.models_indexed_at(
                address
            ) == scalar_classifier.models_indexed_at(address)
    if protocol == "cempar":
        assert set(batch_classifier.regional_models) == set(
            scalar_classifier.regional_models
        )
    if protocol == "nbagg":
        assert set(batch_classifier._models) == set(scalar_classifier._models)


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("protocol", ("centralized", "popularity"))
def test_baseline_batched_round_matches_sequential_sends(protocol, variant):
    """The baselines' one-block upload rounds must equal per-message sends."""
    batched_scenario, _ = run_training(protocol, "chord", variant)

    sequential_scenario = build_scenario("chord", variant)
    classifier = build_classifier(protocol, sequential_scenario)
    transport = classifier.transport
    transport.send_batch = lambda messages: [
        transport.send_message(m) for m in messages
    ]
    classifier.train()

    assert (
        batched_scenario.stats.fingerprint_bytes()
        == sequential_scenario.stats.fingerprint_bytes()
    )
    assert batched_scenario.simulator.now == sequential_scenario.simulator.now


@pytest.mark.parametrize("scalar", (False, True))
@pytest.mark.parametrize("protocol", ("pace", "cempar"))
def test_identity_codec_matches_precodec_stack(protocol, scalar):
    """An explicit identity codec table is byte-identical to the default
    (pre-codec) stack on both the scheduled/vectorized and scalar drivers."""
    explicit_scenario, _ = run_training(
        protocol, "chord", "none", scalar=scalar, codec="identity"
    )
    default_scenario, _ = run_training(protocol, "chord", "none", scalar=scalar)
    assert (
        explicit_scenario.stats.fingerprint_bytes()
        == default_scenario.stats.fingerprint_bytes()
    )
    assert explicit_scenario.simulator.now == default_scenario.simulator.now


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("codec", ("gzip-model", "tuned"))
@pytest.mark.parametrize("protocol", ("pace", "cempar"))
def test_scheduled_round_matches_scalar_round_under_codec(
    protocol, codec, variant
):
    """Wire-byte accounting joins the byte-identity contract: both round
    drivers must agree on the compressed dimension too."""
    batch_scenario, _ = run_training(
        protocol, "chord", variant, codec=codec
    )
    scalar_scenario, _ = run_training(
        protocol, "chord", variant, scalar=True, codec=codec
    )
    assert batch_scenario.stats.has_compressed_traffic
    assert (
        batch_scenario.stats.fingerprint_bytes()
        == scalar_scenario.stats.fingerprint_bytes()
    )
    assert batch_scenario.simulator.now == scalar_scenario.simulator.now
    # Codecs change accounting, never timing: the raw dimension matches the
    # identity run bit-for-bit.
    identity_scenario, _ = run_training(protocol, "chord", variant)
    assert dict(batch_scenario.stats.bytes_by_type) == dict(
        identity_scenario.stats.bytes_by_type
    )
    assert batch_scenario.simulator.now == identity_scenario.simulator.now
    assert (
        batch_scenario.stats.total_wire_bytes
        < identity_scenario.stats.total_bytes
    )


def test_scalar_flags_default_off_and_env_override(monkeypatch):
    scenario = build_scenario("chord", "none")
    classifier = build_classifier("pace", scenario)
    assert classifier.scalar_rounds is False
    assert classifier.transport.scalar_broadcast is False

    monkeypatch.setenv("REPRO_SCALAR_ROUNDS", "1")
    monkeypatch.setenv("REPRO_SCALAR_BROADCAST", "1")
    scenario = build_scenario("chord", "none")
    classifier = build_classifier("pace", scenario)
    assert classifier.scalar_rounds is True
    assert classifier.transport.scalar_broadcast is True


def test_round_activations_are_bulk_scheduled():
    """The scheduled-batch driver registers every activation up front: when
    the first peer activates, the rest of the round is already queued —
    rather than each slot being discovered through its own
    ``run(until=...)`` call as the scalar driver does."""
    scenario = build_scenario("chord", "none")
    classifier = build_classifier("pace", scenario)
    simulator = scenario.simulator
    participants = sorted(scenario.peer_addresses)
    pending_at_activation = []

    def action(address):
        pending_at_activation.append((address, simulator.pending_events))

    classifier._run_staggered_round(participants, 1.0, classifier._rng, action)
    assert [address for address, _ in pending_at_activation] == participants
    # At the first activation the other len-1 activations are still queued.
    assert pending_at_activation[0][1] == len(participants) - 1
    assert pending_at_activation[-1][1] == 0
    assert simulator.now > 0
