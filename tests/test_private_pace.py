"""Tests for the privacy-preserving PACE variant."""

import pytest

from repro.errors import ConfigurationError
from repro.ml.metrics import micro_f1
from repro.p2pclass.pace import PaceClassifier, PaceConfig
from repro.p2pclass.private import PrivatePaceClassifier, PrivatePaceConfig

from tests.test_classifiers import (
    PEER_DATA,
    TAGS,
    TEST_ITEMS,
    evaluate,
    fresh_scenario,
)


@pytest.fixture(scope="module")
def trained_private():
    classifier = PrivatePaceClassifier(
        fresh_scenario(), PEER_DATA, TAGS, PrivatePaceConfig(epsilon=2.0)
    )
    classifier.train()
    return classifier


class TestPrivatePace:
    def test_trains_and_predicts(self, trained_private):
        scores = trained_private.predict_scores(0, TEST_ITEMS[0][0])
        assert set(scores) == set(TAGS)
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_moderate_epsilon_still_learns(self, trained_private):
        assert evaluate(trained_private, TEST_ITEMS) > 0.3

    def test_bundles_differ_from_plain_pace(self):
        plain = PaceClassifier(fresh_scenario(), PEER_DATA, TAGS, PaceConfig())
        plain.train()
        private = PrivatePaceClassifier(
            fresh_scenario(), PEER_DATA, TAGS, PrivatePaceConfig(epsilon=1.0)
        )
        private.train()
        plain_bundle = plain._received[0][1]
        private_bundle = private._received[0][1]
        shared_tag = next(iter(plain_bundle.models))
        assert (
            plain_bundle.models[shared_tag].weights
            != private_bundle.models[shared_tag].weights
        )

    def test_noise_scales_with_epsilon(self):
        """Smaller epsilon -> larger perturbation of the shared weights."""

        def weight_distortion(epsilon):
            plain = PaceClassifier(
                fresh_scenario(), PEER_DATA, TAGS, PaceConfig()
            )
            plain.train()
            private = PrivatePaceClassifier(
                fresh_scenario(), PEER_DATA, TAGS,
                PrivatePaceConfig(epsilon=epsilon),
            )
            private.train()
            total = 0.0
            count = 0
            for origin, plain_bundle in plain._received[0].items():
                private_bundle = private._received[0].get(origin)
                if private_bundle is None:
                    continue
                for tag, model in plain_bundle.models.items():
                    noisy = private_bundle.models.get(tag)
                    if noisy is None:
                        continue
                    total += model.weights.add(noisy.weights, -1.0).norm()
                    count += 1
            return total / max(1, count)

        assert weight_distortion(0.1) > weight_distortion(10.0)

    def test_accuracies_clamped(self, trained_private):
        for store in trained_private._received.values():
            for bundle in store.values():
                for accuracy in bundle.accuracies.values():
                    assert 0.0 <= accuracy <= 1.0

    def test_privacy_budget_validation(self):
        with pytest.raises(ConfigurationError):
            PrivatePaceClassifier(
                fresh_scenario(), PEER_DATA, TAGS, PrivatePaceConfig(epsilon=0)
            )
        with pytest.raises(ConfigurationError):
            PrivatePaceClassifier(
                fresh_scenario(), PEER_DATA, TAGS,
                PrivatePaceConfig(weight_sensitivity=0),
            )

    def test_deterministic_given_seed(self):
        a = PrivatePaceClassifier(
            fresh_scenario(), PEER_DATA, TAGS, PrivatePaceConfig(epsilon=1.0)
        )
        a.train()
        b = PrivatePaceClassifier(
            fresh_scenario(), PEER_DATA, TAGS, PrivatePaceConfig(epsilon=1.0)
        )
        b.train()
        sa = a.predict_scores(0, TEST_ITEMS[0][0])
        sb = b.predict_scores(0, TEST_ITEMS[0][0])
        assert sa == sb

    def test_no_document_vectors_leave_peer(self, trained_private):
        """The inherited privacy property: bundles carry no documents."""
        for store in trained_private._received.values():
            for bundle in store.values():
                assert set(vars(bundle)) == {
                    "origin", "models", "accuracies", "calibration", "centroids",
                }
