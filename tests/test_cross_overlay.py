"""Classifiers across overlay types.

PACE's propagation uses the flood primitive on unstructured overlays and
unicast elsewhere; CEMPaR and NB-Agg need a DHT but must work on any of the
three structured ones.  These tests pin those paths.
"""

import pytest

from repro.p2pclass.cempar import CemparClassifier, CemparConfig
from repro.p2pclass.nbagg import NBAggClassifier
from repro.p2pclass.pace import PaceClassifier, PaceConfig
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig

from tests.test_classifiers import NUM_PEERS, PEER_DATA, TAGS, TEST_ITEMS, evaluate


def scenario_with(overlay: str, seed: int = 0) -> Scenario:
    return Scenario(
        ScenarioConfig(
            num_peers=NUM_PEERS,
            overlay=overlay,
            shard=ShardSpec(num_peers=NUM_PEERS),
            seed=seed,
        )
    )


class TestPaceOnUnstructured:
    @pytest.fixture(scope="class")
    def trained(self):
        classifier = PaceClassifier(
            scenario_with("unstructured"), PEER_DATA, TAGS, PaceConfig()
        )
        classifier.train()
        return classifier

    def test_flood_propagation_reaches_everyone(self, trained):
        for address in range(NUM_PEERS):
            assert trained.models_indexed_at(address) == NUM_PEERS

    def test_flood_redundancy_charged(self, trained):
        # Flooding crosses more edges than there are recipients; the excess
        # is charged as redundant traffic.
        assert trained.scenario.stats.counters["pace_flood_redundant"] > 0

    def test_accuracy_comparable_to_chord(self, trained):
        chord = PaceClassifier(
            scenario_with("chord"), PEER_DATA, TAGS, PaceConfig()
        )
        chord.train()
        f1_unstructured = evaluate(trained, TEST_ITEMS)
        f1_chord = evaluate(chord, TEST_ITEMS)
        assert abs(f1_unstructured - f1_chord) < 0.15


@pytest.mark.parametrize("overlay", ["chord", "kademlia", "pastry", "superpeer"])
class TestDhtClassifiersAcrossOverlays:
    def test_cempar_trains_and_predicts(self, overlay):
        classifier = CemparClassifier(
            scenario_with(overlay), PEER_DATA, TAGS,
            CemparConfig(num_regions=1),
        )
        classifier.train()
        assert evaluate(classifier, TEST_ITEMS[:20]) > 0.25

    def test_nbagg_trains_and_predicts(self, overlay):
        classifier = NBAggClassifier(scenario_with(overlay), PEER_DATA, TAGS)
        classifier.train()
        assert evaluate(classifier, TEST_ITEMS[:20]) > 0.25


class TestSystemAcrossOverlays:
    def test_system_builds_on_every_overlay(self):
        from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
        from repro.data.delicious import DeliciousGenerator

        corpus = DeliciousGenerator(
            num_users=4, seed=9, num_tags=5, docs_per_user_range=(10, 12),
            vocabulary_size=300, topic_words_per_tag=25,
            doc_length_range=(25, 45),
        ).generate()
        for overlay in ("chord", "kademlia", "pastry", "unstructured", "superpeer"):
            system = P2PDocTaggerSystem(
                corpus,
                SystemConfig(
                    algorithm="pace", overlay=overlay, train_fraction=0.3
                ),
            )
            system.train()
            report = system.evaluate(max_documents=10)
            assert 0.0 <= report.metrics.micro_f1 <= 1.0
