"""Regenerate the golden training digests.

Run after an *intentional* change to the RNG stream, event ordering, or
accounting arithmetic, then commit the diff (the diff itself documents how
wide the behavioural change is):

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    from tests.determinism_fixtures import OVERLAYS, PROTOCOLS, VARIANTS
    from tests.test_golden_determinism import GOLDEN_PATH, combo_digest, combo_key

    digests = {}
    for overlay in OVERLAYS:
        for protocol in PROTOCOLS:
            for variant in VARIANTS:
                key = combo_key(overlay, protocol, variant)
                digests[key] = combo_digest(protocol, overlay, variant)
                print(f"{key:<40} {digests[key][:16]}…")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(digests, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {len(digests)} digests to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
