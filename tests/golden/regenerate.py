"""Regenerate the golden training digests.

Run after an *intentional* change to the RNG stream, event ordering, or
accounting arithmetic, then commit the diff (the diff itself documents how
wide the behavioural change is):

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    from tests.determinism_fixtures import (
        LARGE_OVERLAYS,
        LARGE_PROTOCOLS,
        LARGE_VARIANTS,
        OVERLAYS,
        PROTOCOLS,
        SHARDED_COUNTS,
        SHARDED_OVERLAYS,
        SHARDED_PROTOCOLS,
        SHARDED_VARIANTS,
        VARIANTS,
    )
    from tests.test_golden_determinism import (
        GOLDEN_PATH,
        LARGE_GOLDEN_PATH,
        SHARDED_GOLDEN_PATH,
        combo_digest,
        combo_digest_large,
        combo_digest_sharded,
        combo_key,
        sharded_combo_key,
    )

    digests = {}
    for overlay in OVERLAYS:
        for protocol in PROTOCOLS:
            for variant in VARIANTS:
                key = combo_key(overlay, protocol, variant)
                digests[key] = combo_digest(protocol, overlay, variant)
                print(f"{key:<40} {digests[key][:16]}…")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(digests, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {len(digests)} digests to {GOLDEN_PATH}")

    large = {}
    for overlay in LARGE_OVERLAYS:
        for protocol in LARGE_PROTOCOLS:
            for variant in LARGE_VARIANTS:
                key = combo_key(overlay, protocol, variant)
                large[key] = combo_digest_large(protocol, overlay, variant)
                print(f"[N=100] {key:<32} {large[key][:16]}…")
    LARGE_GOLDEN_PATH.write_text(
        json.dumps(large, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(large)} large-N digests to {LARGE_GOLDEN_PATH}")

    sharded = {}
    for overlay in SHARDED_OVERLAYS:
        for protocol in SHARDED_PROTOCOLS:
            for variant in SHARDED_VARIANTS:
                for shards in SHARDED_COUNTS:
                    key = sharded_combo_key(overlay, protocol, variant, shards)
                    sharded[key] = combo_digest_sharded(
                        protocol, overlay, variant, shards
                    )
                    print(f"[shard] {key:<36} {sharded[key][:16]}…")
    SHARDED_GOLDEN_PATH.write_text(
        json.dumps(sharded, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(sharded)} sharded digests to {SHARDED_GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
