"""Differential fuzz suite for the sharded event kernel.

The sharding contract (see :mod:`repro.sim.shard`): for any scenario in the
decomposed-randomness mode, the K-shard serial executor produces a
**byte-identical** stats fingerprint + final clock to the unsharded
single-heap kernel, and the multiprocessing executor is byte-identical to
serial.  This suite samples ~50 randomized fixed-seed configurations across
every axis — overlay × protocol × churn/loss variant × codec × shard count —
and asserts both equalities.

The sample is drawn from a fixed seed so the matrix is stable across runs
(a failure always reproduces); widening the space only requires bumping
``FUZZ_CASES``.  The mp leg runs a deterministic subset in tier-1 (process
startup dominates its cost) and the whole matrix in the nightly job
(``REPRO_SHARD_MP_FULL=1``); the tcp leg (socket-connected worker fleets
over localhost, :mod:`repro.sim.tcpexec`) likewise runs a subset in tier-1
and its full matrix under ``REPRO_SHARD_TCP_FULL=1``, plus a golden smoke
against the checked-in sharded digests.

Also here: algebraic property tests for :meth:`StatsCollector.merge`
(commutativity / associativity / identity, including the wire-byte
counters), which is the operation the sharded executors rely on to fold
per-shard collectors into the global observables.
"""

import random
from functools import lru_cache

import pytest

from repro.envutil import env_flag
from repro.sim.messages import Message
from repro.sim.stats import StatsCollector

from tests.determinism_fixtures import (
    OVERLAYS,
    PROTOCOLS,
    VARIANTS,
    digest_of,
    run_training_perpeer,
    run_training_sharded,
)

FUZZ_CASES = 50
FUZZ_SEED = 0x5A4D
CODECS = ("identity", "tuned", "gzip-model")
SHARD_COUNTS = (1, 2, 3, 4)

#: the directory-control-plane leg: fewer combos (the serial replicated leg
#: already pins the window machinery), but shard counts reach past the peer
#: population — K ∈ {8, 16} > N = 5 exercises zero-owned-peer workers.
DIRECTORY_FUZZ_CASES = 18
DIRECTORY_SHARD_COUNTS = (1, 2, 4, 8, 16)

#: tier-1 runs this many mp-vs-serial cases; nightly runs the full matrix
MP_SUBSET = 6
DIRECTORY_MP_SUBSET = 3
MP_FULL_ENV = "REPRO_SHARD_MP_FULL"

#: the tcp-executor leg (PR 8): localhost worker fleets over overlay ×
#: protocol × control-plane × codec × K ∈ {1, 2, 4}.  Worker startup is a
#: whole interpreter (not a fork), so tier-1 runs a small subset and the
#: nightly job the full matrix (``REPRO_SHARD_TCP_FULL=1``).
TCP_FUZZ_CASES = 12
TCP_SUBSET = 4
TCP_SHARD_COUNTS = (1, 2, 4)
TCP_FULL_ENV = "REPRO_SHARD_TCP_FULL"


def _sample_cases(count=FUZZ_CASES, shard_counts=SHARD_COUNTS, salt=0):
    """``count`` distinct fixed-seed combos over the full config space."""
    rng = random.Random(FUZZ_SEED + salt)
    seen = set()
    cases = []
    while len(cases) < count:
        case = (
            rng.choice(OVERLAYS),
            rng.choice(PROTOCOLS),
            rng.choice(VARIANTS),
            rng.choice(CODECS),
            rng.choice(shard_counts),
        )
        if case in seen:
            continue
        seen.add(case)
        cases.append(case)
    return cases


CASES = _sample_cases()
DIRECTORY_CASES = _sample_cases(
    count=DIRECTORY_FUZZ_CASES,
    shard_counts=DIRECTORY_SHARD_COUNTS,
    salt=0xD1,
)


def _case_id(case):
    overlay, protocol, variant, codec, shards = case
    return f"{overlay}-{protocol}-{variant}-{codec}-k{shards}"


@lru_cache(maxsize=None)
def _reference_digest(protocol, overlay, variant, codec):
    """Unsharded-kernel digest, cached — several fuzz cases share a base
    combo and differ only in shard count."""
    stats, now = run_training_perpeer(protocol, overlay, variant, codec=codec)
    return digest_of(stats, now)


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_sharded_serial_matches_unsharded_kernel(case):
    """Serial sharded fingerprints are byte-identical to the single heap."""
    overlay, protocol, variant, codec, shards = case
    reference = _reference_digest(protocol, overlay, variant, codec)
    run = run_training_sharded(
        protocol, overlay, variant, shards, executor="serial", codec=codec
    )
    assert run.digest() == reference, (
        f"K={shards} serial sharded run diverged from the unsharded kernel "
        f"on {_case_id(case)}"
    )


def _mp_cases():
    if env_flag(MP_FULL_ENV):
        return [c for c in CASES if c[4] >= 2]
    return [c for c in CASES if c[4] >= 2][:MP_SUBSET]


@pytest.mark.parametrize("case", _mp_cases(), ids=_case_id)
def test_sharded_mp_matches_serial(case):
    """The multiprocessing executor reproduces the serial reference."""
    pytest.importorskip("multiprocessing")
    try:
        import multiprocessing

        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        pytest.skip("mp executor requires the fork start method")
    overlay, protocol, variant, codec, shards = case
    serial = run_training_sharded(
        protocol, overlay, variant, shards, executor="serial", codec=codec
    )
    parallel = run_training_sharded(
        protocol, overlay, variant, shards, executor="mp", codec=codec
    )
    assert parallel.digest() == serial.digest(), (
        f"mp executor diverged from serial on {_case_id(case)}"
    )
    assert parallel.now == serial.now


_SCALAR_SUBSET = [c for c in CASES if c[4] >= 2][:4]


@pytest.mark.parametrize("case", _SCALAR_SUBSET, ids=_case_id)
@pytest.mark.parametrize("executor", ["serial", "mp"])
def test_scalar_exchange_env_matches_soa_default(case, executor, monkeypatch):
    """REPRO_SCALAR_EXCHANGE=1 pins the legacy tuple/pickle exchange path;
    it must stay byte-identical to the default SoA frame path (it is the
    reference the columnar encoder is proven against)."""
    overlay, protocol, variant, codec, shards = case
    monkeypatch.delenv("REPRO_SCALAR_EXCHANGE", raising=False)
    soa = run_training_sharded(
        protocol, overlay, variant, shards, executor=executor, codec=codec
    )
    assert soa.stats.exchange.get("records", 0) > 0 or shards == 1
    monkeypatch.setenv("REPRO_SCALAR_EXCHANGE", "1")
    scalar = run_training_sharded(
        protocol, overlay, variant, shards, executor=executor, codec=codec
    )
    assert not scalar.stats.exchange  # the legacy path ships no frames
    assert scalar.digest() == soa.digest(), (
        f"scalar exchange diverged from SoA frames on {_case_id(case)} "
        f"({executor})"
    )
    assert scalar.now == soa.now


def test_fuzz_matrix_covers_every_axis():
    """The fixed sample touches each overlay, protocol, variant, codec and
    shard count at least once (a regression here means the sampling seed
    was changed without checking coverage)."""
    overlays = {c[0] for c in CASES}
    protocols = {c[1] for c in CASES}
    variants = {c[2] for c in CASES}
    codecs = {c[3] for c in CASES}
    counts = {c[4] for c in CASES}
    assert overlays == set(OVERLAYS)
    assert protocols == set(PROTOCOLS)
    assert variants == set(VARIANTS)
    assert codecs == set(CODECS)
    assert counts == set(SHARD_COUNTS)


# ---------------------------------------------------------------------------
# The tcp executor: the same byte-identity contract with workers running as
# socket-connected processes behind a coordinator (localhost fleets here;
# the protocol is machine-agnostic).
# ---------------------------------------------------------------------------


def _sample_tcp_cases(count=TCP_FUZZ_CASES):
    """Fixed-seed combos over the tcp leg's space — the control plane is a
    sampled axis here (both planes must survive the wire)."""
    rng = random.Random(FUZZ_SEED + 0x7C9)
    seen = set()
    cases = []
    while len(cases) < count:
        case = (
            rng.choice(OVERLAYS),
            rng.choice(PROTOCOLS),
            rng.choice(VARIANTS),
            rng.choice(CODECS),
            rng.choice(("replicated", "directory")),
            rng.choice(TCP_SHARD_COUNTS),
        )
        if case in seen:
            continue
        seen.add(case)
        cases.append(case)
    return cases


TCP_CASES = _sample_tcp_cases()


def _tcp_case_id(case):
    overlay, protocol, variant, codec, plane, shards = case
    return f"{overlay}-{protocol}-{variant}-{codec}-{plane}-k{shards}"


def _tcp_cases():
    if env_flag(TCP_FULL_ENV):
        return TCP_CASES
    return TCP_CASES[:TCP_SUBSET]


@pytest.mark.parametrize("case", _tcp_cases(), ids=_tcp_case_id)
def test_sharded_tcp_matches_mp_serial_and_unsharded(case):
    """tcp ≡ mp ≡ serial ≡ unsharded, byte for byte, over localhost."""
    overlay, protocol, variant, codec, plane, shards = case
    reference = _reference_digest(protocol, overlay, variant, codec)
    serial = run_training_sharded(
        protocol, overlay, variant, shards, executor="serial", codec=codec,
        control_plane=plane,
    )
    tcp = run_training_sharded(
        protocol, overlay, variant, shards, executor="tcp", codec=codec,
        control_plane=plane,
    )
    assert serial.digest() == reference, (
        f"serial sharded run diverged from the unsharded kernel on "
        f"{_tcp_case_id(case)}"
    )
    assert tcp.digest() == serial.digest(), (
        f"tcp executor diverged from serial on {_tcp_case_id(case)}"
    )
    assert tcp.now == serial.now
    assert tcp.windows == serial.windows
    try:
        import multiprocessing

        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return
    mp = run_training_sharded(
        protocol, overlay, variant, shards, executor="mp", codec=codec,
        control_plane=plane,
    )
    assert tcp.digest() == mp.digest(), (
        f"tcp executor diverged from mp on {_tcp_case_id(case)}"
    )


def test_tcp_fuzz_covers_every_axis():
    """The full tcp sample touches each shard count and both control
    planes (the tier-1 subset is a prefix of this matrix)."""
    assert {c[4] for c in TCP_CASES} == {"replicated", "directory"}
    assert {c[5] for c in TCP_CASES} == set(TCP_SHARD_COUNTS)


@pytest.mark.parametrize(
    "key",
    ["chord/pace/none/k2", "superpeer/nbagg/churn/k4"],
)
def test_tcp_matches_checked_in_sharded_golden(key):
    """Golden smoke: the tcp executor lands the *checked-in* sharded
    golden digests — asserted against the committed file, never
    regenerated."""
    import json
    from pathlib import Path

    golden_path = (
        Path(__file__).parent / "golden" / "training_digests_sharded.json"
    )
    digests = json.loads(golden_path.read_text(encoding="utf-8"))
    overlay, protocol, variant, k = key.split("/")
    run = run_training_sharded(
        protocol, overlay, variant, int(k[1:]), executor="tcp"
    )
    assert run.digest() == digests[key], (
        f"tcp executor diverged from the checked-in golden digest for {key}"
    )


# ---------------------------------------------------------------------------
# Directory control plane: the same byte-identity contract with the SPMD
# replication replaced by one authoritative control plane serving overlay
# snapshots + per-window deltas — including K > N (zero-owned-peer workers).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", DIRECTORY_CASES, ids=_case_id)
def test_directory_serial_matches_unsharded_kernel(case):
    """Directory-served sharded runs are byte-identical to the single heap."""
    overlay, protocol, variant, codec, shards = case
    reference = _reference_digest(protocol, overlay, variant, codec)
    run = run_training_sharded(
        protocol, overlay, variant, shards, executor="serial", codec=codec,
        control_plane="directory",
    )
    assert run.digest() == reference, (
        f"K={shards} directory-mode run diverged from the unsharded kernel "
        f"on {_case_id(case)}"
    )


def _directory_mp_cases():
    cases = [c for c in DIRECTORY_CASES if c[4] >= 2]
    if env_flag(MP_FULL_ENV):
        return cases
    return cases[:DIRECTORY_MP_SUBSET]


@pytest.mark.parametrize("case", _directory_mp_cases(), ids=_case_id)
def test_directory_mp_matches_serial(case):
    """The mp executor reproduces the serial directory reference (control
    deltas ride pipes; the snapshot rides fork memory)."""
    try:
        import multiprocessing

        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        pytest.skip("mp executor requires the fork start method")
    overlay, protocol, variant, codec, shards = case
    serial = run_training_sharded(
        protocol, overlay, variant, shards, executor="serial", codec=codec,
        control_plane="directory",
    )
    parallel = run_training_sharded(
        protocol, overlay, variant, shards, executor="mp", codec=codec,
        control_plane="directory",
    )
    assert parallel.digest() == serial.digest(), (
        f"directory mp executor diverged from serial on {_case_id(case)}"
    )
    assert parallel.now == serial.now


def test_directory_fuzz_covers_high_shard_counts():
    counts = {c[4] for c in DIRECTORY_CASES}
    assert counts == set(DIRECTORY_SHARD_COUNTS)
    assert {8, 16} <= counts  # the K > N (zero-owned-peer) regime


def test_zero_owned_peer_shards_merge_to_the_unsharded_digest():
    """K=8 workers over N=5 peers: shards 5..7 own nothing (and under churn
    the active population drops further).  Their collectors contribute
    nothing but per-shard control bookkeeping, and the merged observables
    still equal the unsharded kernel byte for byte."""
    from repro.sim.shard import ShardedScenario
    from tests.determinism_fixtures import (
        build_classifier,
        build_scenario_config,
    )

    per_shard = []

    def workload(scenario):
        scenario.start_churn()
        classifier = build_classifier("nbagg", scenario)
        classifier.train()
        return (
            scenario.construction_cost(),
            scenario.stats.fingerprint_bytes(),
        )

    config = build_scenario_config(
        "chord", "churn", rng_mode="perpeer", shards=8,
        control_plane="directory",
    )
    run = ShardedScenario(config, executor="serial").run(workload)
    reference = _reference_digest("nbagg", "chord", "churn", "identity")
    assert run.digest() == reference
    per_shard = [cost for cost, _ in run.results]
    materialized = [cost["peers_materialized"] for cost in per_shard]
    # 5 peers across 8 shards: shard i owns peer i for i < 5, nothing after.
    assert materialized == [1, 1, 1, 1, 1, 0, 0, 0]
    # Directory views never compute routing entries at construction; the
    # only entries built locally are the replicated churn-join ops.
    for cost in per_shard:
        assert cost["overlay_entries_built"] < 200


# ---------------------------------------------------------------------------
# StatsCollector.merge algebra: the operation the sharded executors use to
# fold per-shard collectors must be order-insensitive, including the
# wire-byte counters PR 3 added.
# ---------------------------------------------------------------------------


def _random_collector(seed):
    """A collector with randomized traffic across every recording path,
    including wire sizes that diverge from raw (compressed traffic)."""
    rng = random.Random(seed)
    stats = StatsCollector()
    types = ("a.upload", "b.query", "c.model", "d.control")
    for _ in range(rng.randrange(5, 25)):
        msg_type = rng.choice(types)
        size = rng.randrange(40, 4000)
        src = rng.randrange(0, 12)
        dst = rng.randrange(0, 12)
        path = rng.randrange(3)
        if path == 0:
            wire = rng.choice((size, size, max(1, size // 3)))
            message = Message(
                src=src, dst=dst if dst != src else src + 1,
                msg_type=msg_type, size_bytes=size, wire_bytes=wire,
                hops=rng.randrange(1, 4),
            )
            stats.record_message(message)
        elif path == 1:
            stats.record_traffic(
                msg_type, size, hops=rng.randrange(1, 4), src=src, dst=dst,
                wire_bytes=rng.choice((None, max(1, size // 2))),
            )
        else:
            dsts = rng.sample(range(20), rng.randrange(1, 6))
            stats.record_message_block(
                msg_type, size, src=src, dsts=dsts,
                wire_bytes=rng.choice((None, max(1, size // 4))),
            )
    for _ in range(rng.randrange(0, 6)):
        stats.increment(rng.choice(("x", "y", "z")), rng.randrange(1, 5))
    return stats


def _merged(*collectors):
    out = StatsCollector()
    for collector in collectors:
        out.merge(collector)
    return out


@pytest.mark.parametrize("seed", range(8))
def test_merge_commutes(seed):
    a, b = _random_collector(seed), _random_collector(seed + 100)
    ab = _merged(a, b)
    ba = _merged(b, a)
    assert ab.fingerprint_bytes() == ba.fingerprint_bytes()
    assert ab.total_wire_bytes == ba.total_wire_bytes
    assert ab.has_compressed_traffic == ba.has_compressed_traffic


@pytest.mark.parametrize("seed", range(8))
def test_merge_associates(seed):
    a = _random_collector(seed)
    b = _random_collector(seed + 200)
    c = _random_collector(seed + 400)
    left = _merged(_merged(a, b), c)
    right = _merged(a, _merged(b, c))
    assert left.fingerprint_bytes() == right.fingerprint_bytes()
    assert left.wire_bytes_by_type == right.wire_bytes_by_type
    assert left.per_peer_wire_bytes == right.per_peer_wire_bytes


def test_merge_identity_and_wire_flag_propagation():
    a = _random_collector(7)
    empty = StatsCollector()
    assert _merged(empty, a).fingerprint_bytes() == a.fingerprint_bytes()
    assert _merged(a, empty).fingerprint_bytes() == a.fingerprint_bytes()
    # The compressed flag survives any merge ordering once set anywhere.
    compressed = StatsCollector()
    compressed.record_traffic("m", 100, wire_bytes=40)
    assert compressed.has_compressed_traffic
    assert _merged(empty, compressed).has_compressed_traffic
    assert _merged(compressed, empty).has_compressed_traffic


def test_merge_equals_unsharded_recording_order():
    """Recording N events into one collector equals recording disjoint
    subsets into per-shard collectors and merging — the exact claim the
    sharded stats plane rests on."""
    rng = random.Random(99)
    events = []
    for index in range(60):
        events.append(
            ("t%d" % (index % 5), rng.randrange(40, 900),
             rng.randrange(0, 8), rng.randrange(8, 16),
             rng.choice((None, 33)))
        )
    whole = StatsCollector()
    shards = [StatsCollector() for _ in range(3)]
    for msg_type, size, src, dst, wire in events:
        whole.record_traffic(msg_type, size, src=src, dst=dst, wire_bytes=wire)
        shards[src % 3].record_traffic(
            msg_type, size, src=src, dst=dst, wire_bytes=wire
        )
    assert _merged(*shards).fingerprint_bytes() == whole.fingerprint_bytes()
