"""The deterministic fault plane and the self-healing tcp fleet.

Three layers of coverage:

- the plan — spec grammar, seeded schedule determinism, the JSON
  description, worker-side injector filtering, WAL tearing;
- the plumbing — config validation (faults target the sharded tcp
  fleet), fingerprint exclusion (a faulted run resumes a clean log);
- chaos — tcp runs with injected crashes / wire garbage / half-open
  sockets / stalls, asserting the supervision loop respawns and
  WAL-replays workers to the **byte-identical** checked-in golden
  digest, that recovery without a WAL degrades to the loud abort naming
  the missing checkpoint, and that ``REPRO_TCP_MAX_RESPAWNS`` bounds it.

Tier-1 runs one crash-and-recover smoke per concern; ``REPRO_CHAOS_FULL=1``
(nightly) sweeps fault kinds over overlay x control-plane x K and writes
the injected schedules to ``benchmarks/results/chaos_fault_schedules.json``
as the CI artifact.
"""

import json
import os
from pathlib import Path

import pytest

from repro.envutil import env_flag
from repro.errors import ConfigurationError, SimulationError
from repro.sim.faults import KINDS, FaultEvent, FaultPlan, mix64, splitmix64
from repro.sim.tcpexec import TCP_MAX_RESPAWNS_ENV, TCP_TIMEOUT_ENV
from repro.sim.wal import WalReader, config_fingerprint
from determinism_fixtures import (
    build_scenario_config,
    run_training_sharded,
)

SHARDED_GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "training_digests_sharded.json"
)

#: gates the full chaos sweep (nightly CI); the schedule artifact lands in
#: benchmarks/results/ for upload
CHAOS_FULL_ENV = "REPRO_CHAOS_FULL"
SCHEDULE_ARTIFACT = (
    Path(__file__).parent.parent
    / "benchmarks" / "results" / "chaos_fault_schedules.json"
)

CHAOS_FULL = env_flag(CHAOS_FULL_ENV)


def golden(key: str) -> str:
    digests = json.loads(SHARDED_GOLDEN_PATH.read_text(encoding="utf-8"))
    assert key in digests, f"no sharded golden digest for {key}"
    return digests[key]


# ---------------------------------------------------------------------------
# The plan: grammar and the drawn schedule.
# ---------------------------------------------------------------------------


def test_parse_none_and_blank_mean_no_plan():
    assert FaultPlan.parse(None) is None
    assert FaultPlan.parse("") is None
    assert FaultPlan.parse("   ") is None


def test_explicit_positions_are_used_verbatim():
    events = FaultPlan.parse("crash@3:1").resolve(4)
    assert events == [FaultEvent("crash", 3, 1)]


def test_missing_positions_are_drawn_deterministically():
    first = FaultPlan.parse("seed=7,crash,stall").resolve(4)
    second = FaultPlan.parse("seed=7,crash,stall").resolve(4)
    assert first == second
    assert all(0 <= e.window < 6 for e in first)  # default horizon
    assert all(0 <= e.shard < 4 for e in first)
    # a different seed draws a different schedule
    assert FaultPlan.parse("seed=8,crash,stall").resolve(4) != first


def test_schedule_depends_on_shard_count_but_not_workload_rng():
    plan = FaultPlan.parse("seed=7,crash")
    assert plan.resolve(2) == plan.resolve(2)
    # the draw stream is keyed on (seed, num_shards): shard positions
    # must be valid for the actual fleet size
    for num_shards in (1, 2, 4, 8):
        for event in plan.resolve(num_shards):
            assert 0 <= event.shard < num_shards


def test_count_expansion_and_knobs():
    plan = FaultPlan.parse("seed=3,horizon=12,stall_s=0.25,stall*3")
    assert plan.seed == 3 and plan.horizon == 12 and plan.stall_s == 0.25
    events = plan.resolve(2)
    assert len(events) == 3
    assert {e.kind for e in events} == {"stall"}
    assert all(0 <= e.window < 12 for e in events)


def test_tear_events_draw_byte_counts():
    events = FaultPlan.parse("seed=1,tear*2").resolve(2)
    assert [e.kind for e in events] == ["tear", "tear"]
    assert all(e.window == -1 and e.shard == -1 for e in events)
    assert all(1 <= e.arg <= 40 for e in events)


@pytest.mark.parametrize(
    "spec",
    [
        "explode@1",            # unknown kind
        "crash,",               # empty entry
        "seed=x,crash",         # bad knob value
        "horizon=0,crash",      # horizon must be >= 1
        "stall_s=0,stall",      # stall must be positive
        "depth=3,crash",        # unknown knob
        "crash@x",              # bad window
        "crash@1:x",            # bad shard
        "crash@-1",             # negative position
        "crash*0",              # bad repeat count
        "seed=5",               # knobs only, no faults
    ],
)
def test_bad_specs_are_configuration_errors(spec):
    with pytest.raises(ConfigurationError):
        FaultPlan(spec)


def test_explicit_shard_out_of_range_is_rejected():
    with pytest.raises(ConfigurationError, match="shard 5"):
        FaultPlan.parse("crash@1:5").resolve(2)


def test_describe_is_json_serializable():
    description = FaultPlan.parse("seed=7,crash,tear").describe(2)
    assert json.loads(json.dumps(description)) == description
    assert description["seed"] == 7
    assert [e["kind"] for e in description["events"]] == ["crash", "tear"]


def test_injector_filters_to_one_shard_and_skips_tears():
    plan = FaultPlan.parse("crash@2:0,stall@3:1,tear")
    injector = plan.injector(1, 2)
    assert injector is not None
    assert injector._barrier_faults == {3: "stall"}
    assert plan.injector(0, 2)._barrier_faults == {2: "crash"}
    # shard untouched by the schedule gets no injector at all
    assert FaultPlan.parse("crash@1:0").injector(1, 2) is None


def test_splitmix64_is_the_reference_stream():
    # First outputs from state 0 — pinned so the schedule (and therefore
    # every chaos golden assertion) can never drift silently.
    state, first = splitmix64(0)
    _, second = splitmix64(state)
    assert first == 0xE220A8397B1DCDAF
    assert second == 0x6E789E6AA1B965F4
    assert mix64(1, 2) != mix64(2, 1)


# ---------------------------------------------------------------------------
# Plumbing: config validation and fingerprint exclusion.
# ---------------------------------------------------------------------------


def test_faults_require_sharded_run():
    config = build_scenario_config("fullmesh", "none")
    config.faults = "crash@1"
    with pytest.raises(ConfigurationError, match="shards >= 1"):
        config.validate()


def test_bad_fault_spec_fails_config_validation():
    config = build_scenario_config(
        "fullmesh", "none", shards=2, rng_mode="perpeer"
    )
    config.faults = "explode@1"
    with pytest.raises(ConfigurationError, match="unknown fault kind"):
        config.validate()


@pytest.mark.parametrize("executor", ["serial", "mp"])
def test_faults_reject_non_tcp_executors(executor):
    with pytest.raises(ConfigurationError, match="tcp"):
        run_training_sharded(
            "pace", "chord", "none", 2, executor=executor, faults="crash@1"
        )


def test_fingerprint_excludes_faults():
    clean = build_scenario_config(
        "fullmesh", "none", shards=2, rng_mode="perpeer"
    )
    faulted = build_scenario_config(
        "fullmesh", "none", shards=2, rng_mode="perpeer"
    )
    faulted.faults = "seed=7,crash"
    assert config_fingerprint(clean) == config_fingerprint(faulted)


# ---------------------------------------------------------------------------
# WAL tears.
# ---------------------------------------------------------------------------


def test_apply_wal_tears_chops_the_tail(tmp_path):
    wal = tmp_path / "torn.wal"
    run_training_sharded("pace", "chord", "none", 2, wal=str(wal))
    size = os.path.getsize(wal)
    torn = FaultPlan.parse("tear,seed=3").apply_wal_tears(str(wal), 2)
    assert 1 <= torn <= 40
    assert os.path.getsize(wal) == size - torn
    # the torn log still opens; the mangled tail record is discarded
    assert WalReader(str(wal)).truncated


def test_apply_wal_tears_never_eats_the_header(tmp_path):
    wal = tmp_path / "tiny.wal"
    run_training_sharded("pace", "chord", "none", 2, wal=str(wal))
    plan = FaultPlan.parse("tear*4000,seed=1")  # far more than the file
    plan.apply_wal_tears(str(wal), 2)
    reader = WalReader(str(wal))  # header + meta survive; zero windows ok
    assert reader.num_shards == 2
    assert reader.windows == []


def test_apply_wal_tears_missing_file_is_a_noop(tmp_path):
    assert FaultPlan.parse("tear").apply_wal_tears(
        str(tmp_path / "absent.wal"), 2
    ) == 0


# ---------------------------------------------------------------------------
# Chaos: injected faults against the live tcp fleet.  Every recovered run
# must land the checked-in sharded golden digest byte-for-byte.
# ---------------------------------------------------------------------------


def _chaos_run(faults, wal=None, resume=None, shards=2, overlay="chord",
               control_plane="replicated"):
    return run_training_sharded(
        "pace", overlay, "none", shards, executor="tcp",
        control_plane=control_plane,
        wal=wal, resume=resume, faults=faults,
    )


def test_crash_recovers_to_identical_digest(tmp_path, monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    run = _chaos_run("crash@2", wal=str(tmp_path / "chaos.wal"))
    assert run.digest() == golden("chord/pace/none/k2")
    assert run.stats.faults["respawns"] >= 1
    assert run.stats.faults["replayed_windows"] >= 1
    assert run.stats.faults["worker_deaths"] >= 1


def test_crash_at_window_zero_recovers(tmp_path, monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    run = _chaos_run("crash@0:1", wal=str(tmp_path / "chaos.wal"))
    assert run.digest() == golden("chord/pace/none/k2")
    assert run.stats.faults["respawns"] == 1
    # death at barrier 0: nothing logged yet, nothing to replay
    assert run.stats.faults["replayed_windows"] == 0


def test_corrupt_frame_quarantines_and_recovers(tmp_path, monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    run = _chaos_run("corrupt@1", wal=str(tmp_path / "chaos.wal"))
    assert run.digest() == golden("chord/pace/none/k2")
    assert run.stats.faults["respawns"] >= 1


def test_truncated_frame_quarantines_and_recovers(tmp_path, monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    run = _chaos_run("truncate@2", wal=str(tmp_path / "chaos.wal"))
    assert run.digest() == golden("chord/pace/none/k2")
    assert run.stats.faults["respawns"] >= 1


def test_half_open_worker_is_unmasked_and_recovered(tmp_path, monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "4")
    run = _chaos_run("halfopen@2", wal=str(tmp_path / "chaos.wal"))
    assert run.digest() == golden("chord/pace/none/k2")
    assert run.stats.faults["respawns"] >= 1
    assert run.stats.faults["worker_deaths"] >= 1


def test_stalled_worker_heartbeats_through_the_deadline(monkeypatch):
    # The stall (6s) far exceeds the read deadline (4s): without the
    # heartbeat the coordinator would declare the worker dead.  No WAL on
    # purpose — a false death declaration would abort the run loudly.
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "4")
    run = _chaos_run("stall@1,stall_s=6")
    assert run.digest() == golden("chord/pace/none/k2")
    assert run.stats.faults["stalls"] >= 1
    assert run.stats.faults["heartbeats"] >= 1
    assert run.stats.faults["respawns"] == 0


def test_crash_without_wal_aborts_naming_the_checkpoint(monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    with pytest.raises(SimulationError) as excinfo:
        _chaos_run("crash@1")
    message = str(excinfo.value)
    assert "died mid-window" in message
    assert "no WAL checkpoint" in message
    assert "--wal" in message


def test_respawn_budget_bounds_recovery(tmp_path, monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    monkeypatch.setenv(TCP_MAX_RESPAWNS_ENV, "0")
    with pytest.raises(SimulationError, match=TCP_MAX_RESPAWNS_ENV):
        _chaos_run("crash@1", wal=str(tmp_path / "chaos.wal"))


def test_recover_replays_a_serial_written_log(tmp_path, monkeypatch):
    # Cross-executor RECOVER: the replay source was written by the serial
    # executor; tcp resumes it, a worker crashes mid-resume, and the
    # replacement replays from the foreign log to the same digest.
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    wal = tmp_path / "serial.wal"
    reference = run_training_sharded(
        "pace", "chord", "none", 2, executor="serial", wal=str(wal)
    )
    run = _chaos_run("crash@1", resume=str(wal))
    assert run.digest() == reference.digest() == golden("chord/pace/none/k2")
    assert run.stats.faults["respawns"] == 1


def test_injected_tear_on_resume_log_replays_shorter_prefix(
    tmp_path, monkeypatch
):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    wal = tmp_path / "torn.wal"
    run_training_sharded(
        "pace", "chord", "none", 2, executor="serial", wal=str(wal)
    )
    run = _chaos_run("tear,seed=3", resume=str(wal))
    assert run.digest() == golden("chord/pace/none/k2")


def test_multiple_faults_in_one_run(tmp_path, monkeypatch):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "30")
    run = _chaos_run(
        "crash@1:0,crash@3:1", wal=str(tmp_path / "chaos.wal")
    )
    assert run.digest() == golden("chord/pace/none/k2")
    assert run.stats.faults["respawns"] == 2
    assert run.stats.faults["worker_deaths"] == 2


# ---------------------------------------------------------------------------
# The nightly chaos fuzz (REPRO_CHAOS_FULL=1): fault kinds over overlay x
# control-plane x K, schedules dumped as the CI artifact.
# ---------------------------------------------------------------------------

_FUZZ_MATRIX = [
    # (faults, overlay, control_plane, shards)
    ("seed=11,crash", "chord", "replicated", 2),
    ("seed=12,crash*2", "chord", "replicated", 4),
    ("seed=13,crash", "superpeer", "directory", 2),
    ("seed=14,corrupt", "chord", "directory", 2),
    ("seed=15,truncate", "superpeer", "replicated", 4),
    ("seed=16,crash,corrupt", "chord", "replicated", 4),
    ("seed=17,halfopen", "superpeer", "replicated", 2),
    ("seed=18,stall,crash,stall_s=1.5", "chord", "directory", 2),
]


@pytest.mark.skipif(
    not CHAOS_FULL, reason=f"full chaos sweep runs with {CHAOS_FULL_ENV}=1"
)
@pytest.mark.parametrize(
    "faults,overlay,control_plane,shards",
    _FUZZ_MATRIX,
    ids=[f"{f}/{o}/{p}/k{k}" for f, o, p, k in _FUZZ_MATRIX],
)
def test_chaos_fuzz_full(
    faults, overlay, control_plane, shards, tmp_path, monkeypatch
):
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "8")
    run = _chaos_run(
        faults, wal=str(tmp_path / "chaos.wal"), shards=shards,
        overlay=overlay, control_plane=control_plane,
    )
    assert run.digest() == golden(f"{overlay}/pace/none/k{shards}")
    plan = FaultPlan.parse(faults)
    injected = plan.resolve(shards)
    # One respawn per shard with a deadly event: the first kill fires,
    # and the RECOVER-ed replacement suppresses the rest of that shard's
    # schedule (or recovery would crash-loop).
    deadly_shards = {
        e.shard for e in injected
        if e.kind in ("crash", "halfopen", "corrupt", "truncate")
    }
    assert run.stats.faults["respawns"] == len(deadly_shards)
    # append this schedule to the CI artifact
    SCHEDULE_ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    existing = (
        json.loads(SCHEDULE_ARTIFACT.read_text(encoding="utf-8"))
        if SCHEDULE_ARTIFACT.exists()
        else []
    )
    existing.append(
        {
            "schedule": plan.describe(shards),
            "overlay": overlay,
            "control_plane": control_plane,
            "digest": run.digest(),
            "faults_observed": dict(run.stats.faults),
        }
    )
    SCHEDULE_ARTIFACT.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
