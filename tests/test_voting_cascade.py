"""Tests for vote combiners and cascade-SVM merging."""

import pytest

from repro.errors import ConfigurationError
from repro.ml.kernel_svm import KernelSVM
from repro.ml.sparse import SparseVector
from repro.p2pclass.cascade import cascade_merge, support_vectors_payload
from repro.p2pclass.voting import (
    combine_score_maps,
    majority_vote,
    weighted_majority_vote,
    weighted_score,
)


class TestVoting:
    def test_majority(self):
        assert majority_vote([1, 1, -1]) == 1
        assert majority_vote([-1, -1, 1]) == -1
        assert majority_vote([]) == -1
        assert majority_vote([1, -1]) == 1  # tie breaks positive

    def test_weighted_majority(self):
        assert weighted_majority_vote([(1, 0.1), (-1, 5.0)]) == -1
        assert weighted_majority_vote([(1, 5.0), (-1, 0.1)]) == 1
        assert weighted_majority_vote([]) == -1

    def test_negative_weights_clamped(self):
        assert weighted_majority_vote([(1, 1.0), (-1, -100.0)]) == 1

    def test_weighted_score(self):
        assert weighted_score([(1.0, 1.0), (0.0, 1.0)]) == pytest.approx(0.5)
        assert weighted_score([(0.8, 3.0), (0.2, 1.0)]) == pytest.approx(0.65)
        assert weighted_score([]) == 0.0
        assert weighted_score([(0.9, 0.0)]) == 0.0

    def test_combine_score_maps_abstention(self):
        maps = [({"a": 1.0}, 1.0), ({"a": 0.0, "b": 0.8}, 1.0)]
        combined = combine_score_maps(maps, ["a", "b", "c"])
        assert combined["a"] == pytest.approx(0.5)
        assert combined["b"] == pytest.approx(0.8)  # first map abstained on b
        assert combined["c"] == 0.0


def train_child(points, labels, seed=0):
    return KernelSVM(seed=seed).fit(points, labels).model


class TestCascade:
    def separable_children(self):
        left = [SparseVector({0: -2.0 - 0.1 * i}) for i in range(6)]
        right = [SparseVector({0: 2.0 + 0.1 * i}) for i in range(6)]
        child_a = train_child(left[:3] + right[:3], [-1] * 3 + [1] * 3)
        child_b = train_child(left[3:] + right[3:], [-1] * 3 + [1] * 3)
        return [child_a, child_b]

    def test_merge_produces_accurate_model(self):
        cascaded = cascade_merge(self.separable_children())
        assert cascaded is not None
        assert cascaded.svm.predict(SparseVector({0: 3.0})) == 1
        assert cascaded.svm.predict(SparseVector({0: -3.0})) == -1
        assert cascaded.training_accuracy >= 0.9

    def test_probability_monotone(self):
        cascaded = cascade_merge(self.separable_children())
        low = cascaded.probability(SparseVector({0: -3.0}))
        high = cascaded.probability(SparseVector({0: 3.0}))
        assert high > low

    def test_empty_children(self):
        degenerate = train_child([SparseVector({0: 1.0})], [1])
        assert degenerate.num_support_vectors == 0
        assert cascade_merge([degenerate]) is None
        assert cascade_merge([]) is None

    def test_one_class_pool(self):
        # Children whose SVs all carry the same label.
        positives = [SparseVector({0: float(i)}) for i in range(1, 4)]
        negatives = [SparseVector({1: float(i)}) for i in range(1, 4)]
        child = train_child(positives + negatives, [1, 1, 1, -1, -1, -1])
        only_pos = [
            sv for sv in child.support_vectors if sv.label == 1
        ]
        from repro.ml.kernel_svm import KernelSVMModel

        one_class = KernelSVMModel(
            support_vectors=only_pos, bias=0.0, gamma=0.5
        )
        cascaded = cascade_merge([one_class])
        assert cascaded is not None
        assert cascaded.svm.predict(SparseVector({5: 1.0})) == 1

    def test_max_training_size_respected(self):
        children = self.separable_children()
        cascaded = cascade_merge(children, max_training_size=4)
        assert cascaded is not None
        assert cascaded.training_size <= 4

    def test_invalid_max_size(self):
        with pytest.raises(ConfigurationError):
            cascade_merge(self.separable_children(), max_training_size=0)

    def test_wire_size_positive(self):
        cascaded = cascade_merge(self.separable_children())
        assert cascaded.wire_size() > 16

    def test_support_vectors_payload(self):
        child = self.separable_children()[0]
        payload = support_vectors_payload(child)
        assert len(payload) == child.num_support_vectors
