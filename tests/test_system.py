"""Integration tests: the full P2PDocTagger system end to end."""

import pytest

from repro.core.metadata import TagSource
from repro.core.tagger import (
    ALGORITHMS,
    EvaluationReport,
    P2PDocTaggerSystem,
    SystemConfig,
)
from repro.data.delicious import DeliciousGenerator
from repro.errors import ConfigurationError, NotTrainedError


def small_corpus(seed=0, num_users=5):
    return DeliciousGenerator(
        num_users=num_users,
        seed=seed,
        num_tags=6,
        docs_per_user_range=(12, 16),
        vocabulary_size=400,
        topic_words_per_tag=30,
        doc_length_range=(30, 60),
    ).generate()


@pytest.fixture(scope="module")
def trained_system():
    system = P2PDocTaggerSystem.from_corpus(
        small_corpus(), algorithm="pace", seed=1, train_fraction=0.35
    )
    system.train()
    return system


class TestConstruction:
    def test_from_corpus_defaults(self):
        system = P2PDocTaggerSystem.from_corpus(small_corpus())
        assert system.config.algorithm == "pace"
        assert len(system.peers) == 5

    def test_empty_corpus_rejected(self):
        from repro.data.corpus import Corpus

        with pytest.raises(ConfigurationError):
            P2PDocTaggerSystem.from_corpus(Corpus([]))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(algorithm="magic").validate()

    def test_all_algorithms_construct(self):
        corpus = small_corpus()
        for algorithm in ALGORITHMS:
            system = P2PDocTaggerSystem.from_corpus(corpus, algorithm=algorithm)
            assert system.classifier is not None

    def test_train_test_split_follows_fraction(self):
        system = P2PDocTaggerSystem.from_corpus(
            small_corpus(), train_fraction=0.2
        )
        total = len(system.train_corpus) + len(system.test_corpus)
        assert total == len(system.corpus)
        fraction = len(system.train_corpus) / total
        assert 0.1 < fraction < 0.35

    def test_manual_tags_registered_for_training_docs(self):
        system = P2PDocTaggerSystem.from_corpus(small_corpus())
        tagged = sum(len(p.store) for p in system.peers.values())
        assert tagged == len(system.train_corpus)
        for peer in system.peers.values():
            for doc_id in peer.store.documents():
                records = peer.store.records_of(doc_id)
                assert all(r.source == TagSource.MANUAL for r in records)


class TestTraining:
    def test_evaluate_before_train_raises(self):
        system = P2PDocTaggerSystem.from_corpus(small_corpus())
        with pytest.raises(NotTrainedError):
            system.evaluate()

    def test_evaluate_returns_report(self, trained_system):
        report = trained_system.evaluate(max_documents=25)
        assert isinstance(report, EvaluationReport)
        assert report.algorithm == "pace"
        assert 0.0 <= report.metrics.micro_f1 <= 1.0
        assert report.total_messages > 0
        assert "microF1" in report.summary()

    def test_learns_something(self, trained_system):
        report = trained_system.evaluate(max_documents=30)
        assert report.metrics.micro_f1 > 0.3

    def test_vector_cache(self, trained_system):
        document = trained_system.test_corpus[0]
        first = trained_system.vector_of(document)
        second = trained_system.vector_of(document)
        assert first is second


class TestPeerOperations:
    def test_auto_tag_persists_metadata(self, trained_system):
        document = trained_system.test_corpus[0]
        peer = trained_system.peer_of(document)
        assigned = peer.auto_tag(document.untagged())
        assert assigned
        assert peer.store.tags_of(document.doc_id) == assigned
        records = peer.store.records_of(document.doc_id)
        assert all(r.source == TagSource.AUTO for r in records)

    def test_auto_tag_all(self, trained_system):
        assignments = trained_system.auto_tag_all()
        assert len(assignments) == len(trained_system.test_corpus)
        assert all(tags for tags in assignments.values())

    def test_manual_tag(self, trained_system):
        peer = trained_system.peers[0]
        peer.manual_tag(999_999, ["custom-tag"])
        assert "custom-tag" in peer.store.tags_of(999_999)
        with pytest.raises(ConfigurationError):
            peer.manual_tag(1, [])

    def test_suggest_tags_structure(self, trained_system):
        document = trained_system.test_corpus[1]
        peer = trained_system.peer_of(document)
        suggestions = peer.suggest_tags(document, confidence_threshold=0.2)
        assert suggestions
        kept = [s for s in suggestions if not s.struck_out]
        struck = [s for s in suggestions if s.struck_out]
        # Kept block alphabetical, struck block alphabetical, kept first.
        assert [s.tag for s in kept] == sorted(s.tag for s in kept)
        assert [s.tag for s in struck] == sorted(s.tag for s in struck)

    def test_tag_cloud_from_peer(self, trained_system):
        peer = trained_system.peers[0]
        cloud = peer.tag_cloud()
        assert len(cloud.frequencies()) > 0

    def test_global_tag_cloud(self, trained_system):
        cloud = trained_system.global_tag_cloud()
        assert len(cloud.frequencies()) > 0


class TestRefinementIntegration:
    def test_refine_updates_store_and_schedules_retrain(self):
        system = P2PDocTaggerSystem.from_corpus(
            small_corpus(seed=3), algorithm="local", train_fraction=0.3
        )
        system.train()
        document = system.test_corpus[0]
        peer = system.peer_of(document)
        fired = peer.refine(document, ["music"])
        assert not fired  # batch threshold not reached
        assert peer.store.tags_of(document.doc_id) == {"music"}
        assert system.refinement.pending_count == 1

    def test_refinement_batch_triggers_retrain(self):
        system = P2PDocTaggerSystem.from_corpus(
            small_corpus(seed=4), algorithm="local", train_fraction=0.3
        )
        system.train()
        system.refinement.retrain_every = 3
        fired_any = False
        for document in system.test_corpus.documents[:3]:
            peer = system.peer_of(document)
            fired_any |= peer.refine(document, sorted(document.tags)[:1])
        assert fired_any
        assert system.refinement.retrain_count == 1
        assert system.refinement.pending_count == 0

    def test_refinement_improves_or_maintains_accuracy(self):
        system = P2PDocTaggerSystem.from_corpus(
            small_corpus(seed=5), algorithm="local", train_fraction=0.25
        )
        system.train()
        before = system.evaluate(max_documents=30).metrics.micro_f1
        system.refinement.retrain_every = 1000  # batch manually
        for document in system.test_corpus.documents[:20]:
            peer = system.peer_of(document)
            peer.refine(document, sorted(document.tags))  # perfect corrections
        system.refinement.flush()
        after = system.evaluate(max_documents=30).metrics.micro_f1
        assert after >= before - 0.02


class TestChurnIntegration:
    def test_training_under_churn_still_works(self):
        system = P2PDocTaggerSystem.from_corpus(
            small_corpus(seed=6),
            algorithm="pace",
            churn="exponential",
            mean_session=400.0,
            mean_downtime=30.0,
            train_fraction=0.3,
        )
        system.train()
        report = system.evaluate(max_documents=20)
        assert report.metrics.micro_f1 >= 0.0  # completes without error
