"""End-to-end tests for CEMPaR, PACE, and the baselines on synthetic corpora."""

import pytest

from repro.baselines.centralized import CentralizedConfig, CentralizedTagger
from repro.baselines.localonly import LocalOnlyTagger
from repro.baselines.popularity import PopularityTagger
from repro.data.delicious import DeliciousGenerator
from repro.data.splits import per_user_split
from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.metrics import micro_f1
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import corpus_to_peer_data
from repro.p2pclass.cempar import CemparClassifier, CemparConfig
from repro.p2pclass.pace import PaceClassifier, PaceConfig
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.text.vectorizer import PreprocessingPipeline

NUM_PEERS = 6


def make_setting(seed=0, train_fraction=0.35):
    """Small corpus split per user; returns scenario factory inputs."""
    corpus = DeliciousGenerator(
        num_users=NUM_PEERS,
        seed=seed,
        num_tags=6,
        docs_per_user_range=(14, 18),
        vocabulary_size=400,
        topic_words_per_tag=30,
        doc_length_range=(30, 60),
    ).generate()
    train, test = per_user_split(corpus, train_fraction=train_fraction, seed=seed)
    pipeline = PreprocessingPipeline(dimension=2 ** 16)
    peer_data = corpus_to_peer_data(train, pipeline)
    test_items = [
        (pipeline.process(d.text), d.tags, d.owner) for d in test.documents[:40]
    ]
    tags = corpus.tag_universe()
    return peer_data, test_items, tags


def fresh_scenario(seed=0):
    return Scenario(
        ScenarioConfig(
            num_peers=NUM_PEERS, shard=ShardSpec(num_peers=NUM_PEERS), seed=seed
        )
    )


def evaluate(classifier, test_items, threshold=0.5):
    true_sets, predicted = [], []
    for vector, tags, owner in test_items:
        true_sets.append(tags)
        predicted.append(classifier.predict_tags(owner, vector, threshold))
    return micro_f1(true_sets, predicted)


PEER_DATA, TEST_ITEMS, TAGS = make_setting()


@pytest.fixture(scope="module")
def trained_cempar():
    classifier = CemparClassifier(
        fresh_scenario(), PEER_DATA, TAGS, CemparConfig(num_regions=2)
    )
    classifier.train()
    return classifier


@pytest.fixture(scope="module")
def trained_pace():
    classifier = PaceClassifier(
        fresh_scenario(), PEER_DATA, TAGS, PaceConfig(top_k=6)
    )
    classifier.train()
    return classifier


class TestCempar:
    def test_learns_better_than_chance(self, trained_cempar):
        f1 = evaluate(trained_cempar, TEST_ITEMS)
        assert f1 > 0.35

    def test_scores_in_unit_interval(self, trained_cempar):
        scores = trained_cempar.predict_scores(0, TEST_ITEMS[0][0])
        assert set(scores) == set(TAGS)
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_regional_models_exist(self, trained_cempar):
        assert len(trained_cempar.regional_models) > 0
        tags_covered = {tag for tag, _ in trained_cempar.regional_models}
        assert tags_covered <= set(TAGS)

    def test_communication_charged(self, trained_cempar):
        stats = trained_cempar.scenario.stats
        assert stats.messages_for("cempar.model_upload") > 0
        assert stats.bytes_for("cempar.model_upload") > 0

    def test_query_charges_messages(self, trained_cempar):
        stats = trained_cempar.scenario.stats
        before = stats.messages_for("cempar.query")
        trained_cempar.predict_scores(1, TEST_ITEMS[0][0])
        assert stats.messages_for("cempar.query") > before

    def test_untrained_guard(self):
        classifier = CemparClassifier(fresh_scenario(), PEER_DATA, TAGS)
        with pytest.raises(NotTrainedError):
            classifier.predict_scores(0, SparseVector({0: 1.0}))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CemparClassifier(
                fresh_scenario(), PEER_DATA, TAGS, CemparConfig(num_regions=0)
            )

    def test_upload_privacy_no_text(self, trained_cempar):
        """CEMPaR messages carry vectors (word ids + counts), never strings."""
        for (tag, region), model in trained_cempar.regional_models.items():
            for sv in model.svm.support_vectors:
                assert isinstance(sv.vector, SparseVector)


class TestPace:
    def test_learns_better_than_chance(self, trained_pace):
        f1 = evaluate(trained_pace, TEST_ITEMS)
        assert f1 > 0.35

    def test_prediction_is_local(self, trained_pace):
        stats = trained_pace.scenario.stats
        before = stats.total_messages
        trained_pace.predict_scores(2, TEST_ITEMS[0][0])
        assert stats.total_messages == before  # zero query traffic

    def test_broadcast_charged(self, trained_pace):
        stats = trained_pace.scenario.stats
        assert stats.messages_for("pace.model_broadcast") > 0

    def test_all_peers_indexed_models(self, trained_pace):
        for address in range(NUM_PEERS):
            assert trained_pace.models_indexed_at(address) >= NUM_PEERS - 1

    def test_no_document_vectors_in_bundles(self, trained_pace):
        """PACE privacy property: bundles hold weights/centroids only."""
        for store in trained_pace._received.values():
            for bundle in store.values():
                assert not hasattr(bundle, "documents")
                assert set(vars(bundle)) == {
                    "origin", "models", "accuracies", "calibration", "centroids",
                }

    def test_scores_cover_tag_universe(self, trained_pace):
        scores = trained_pace.predict_scores(0, TEST_ITEMS[0][0])
        assert set(scores) == set(TAGS)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PaceClassifier(fresh_scenario(), PEER_DATA, TAGS, PaceConfig(top_k=0))


class TestBaselines:
    def test_centralized_accuracy_best_or_close(self):
        classifier = CentralizedTagger(fresh_scenario(), PEER_DATA, TAGS)
        classifier.train()
        f1 = evaluate(classifier, TEST_ITEMS)
        assert f1 > 0.4

    def test_centralized_uploads_raw_data(self):
        classifier = CentralizedTagger(fresh_scenario(), PEER_DATA, TAGS)
        classifier.train()
        stats = classifier.scenario.stats
        assert stats.messages_for("central.data_upload") == NUM_PEERS - 1
        assert stats.bytes_for("central.data_upload") > 0

    def test_centralized_server_validation(self):
        with pytest.raises(ConfigurationError):
            CentralizedTagger(
                fresh_scenario(), PEER_DATA, TAGS, CentralizedConfig(server=99)
            )

    def test_local_only_zero_traffic(self):
        classifier = LocalOnlyTagger(fresh_scenario(), PEER_DATA, TAGS)
        classifier.train()
        evaluate(classifier, TEST_ITEMS)
        assert classifier.scenario.stats.total_messages == 0

    def test_local_only_weaker_than_centralized(self):
        local = LocalOnlyTagger(fresh_scenario(), PEER_DATA, TAGS)
        local.train()
        central = CentralizedTagger(fresh_scenario(), PEER_DATA, TAGS)
        central.train()
        assert evaluate(local, TEST_ITEMS) <= evaluate(central, TEST_ITEMS) + 0.05

    def test_popularity_scores_constant(self):
        classifier = PopularityTagger(fresh_scenario(), PEER_DATA, TAGS)
        classifier.train()
        a = classifier.predict_scores(0, TEST_ITEMS[0][0])
        b = classifier.predict_scores(3, TEST_ITEMS[1][0])
        assert a == b
        assert max(a.values()) == pytest.approx(1.0)


class TestCollaborationValue:
    def test_p2p_beats_local_only(self):
        """The paper's core claim: collaboration recovers accuracy that
        isolated peers cannot reach."""
        local = LocalOnlyTagger(fresh_scenario(), PEER_DATA, TAGS)
        local.train()
        pace = PaceClassifier(fresh_scenario(), PEER_DATA, TAGS, PaceConfig(top_k=6))
        pace.train()
        assert evaluate(pace, TEST_ITEMS) >= evaluate(local, TEST_ITEMS) - 0.02

    def test_centralized_concentrates_load_p2p_spreads_it(self):
        """The scalability argument: the central server receives nearly all
        training traffic, while CEMPaR spreads uploads over super-peers."""
        central = CentralizedTagger(fresh_scenario(), PEER_DATA, TAGS)
        central.train()
        received = central.scenario.stats.per_peer_received
        total = sum(received.values())
        server_share = received[0] / total
        assert server_share > 0.95

        cempar = CemparClassifier(fresh_scenario(), PEER_DATA, TAGS)
        cempar.train()
        received = cempar.scenario.stats.per_peer_received
        total = sum(received.values())
        cempar_max_share = max(received.values()) / total
        assert cempar_max_share < server_share

    def test_pace_queries_free_centralized_queries_cost(self):
        """After training, PACE predictions are local; centralized ones pay
        a round trip per document — the usage-proportional cost."""
        queries = [
            (vector, 1 + (i % (NUM_PEERS - 1)))  # never the server itself
            for i, (vector, _, _) in enumerate(TEST_ITEMS[:10])
        ]
        central = CentralizedTagger(fresh_scenario(), PEER_DATA, TAGS)
        central.train()
        base = central.scenario.stats.total_bytes
        for vector, origin in queries:
            central.predict_scores(origin, vector)
        central_query_bytes = central.scenario.stats.total_bytes - base

        pace = PaceClassifier(fresh_scenario(), PEER_DATA, TAGS)
        pace.train()
        base = pace.scenario.stats.total_bytes
        for vector, origin in queries:
            pace.predict_scores(origin, vector)
        pace_query_bytes = pace.scenario.stats.total_bytes - base

        assert pace_query_bytes == 0
        assert central_query_bytes > 0
