"""Tests for stop-word and sensitive-word filtering."""

from repro.text.sensitive import SensitiveWordFilter
from repro.text.stopwords import ENGLISH_STOP_WORDS, is_stop_word, remove_stop_words


class TestStopWords:
    def test_paper_examples_are_stop_words(self):
        # The paper names "a, for, and, not" explicitly.
        for word in ("a", "for", "and", "not"):
            assert is_stop_word(word)

    def test_content_words_are_not_stop_words(self):
        for word in ("document", "tagging", "peer", "network"):
            assert not is_stop_word(word)

    def test_remove_preserves_order(self):
        tokens = ["the", "peer", "and", "the", "tag"]
        assert remove_stop_words(tokens) == ["peer", "tag"]

    def test_list_is_lowercase(self):
        assert all(word == word.lower() for word in ENGLISH_STOP_WORDS)

    def test_list_reasonably_sized(self):
        assert 150 <= len(ENGLISH_STOP_WORDS) <= 500


class TestSensitiveWordFilter:
    def test_exact_word_filtered(self):
        f = SensitiveWordFilter(["secret"])
        assert f.filter(["a", "secret", "plan"]) == ["a", "plan"]

    def test_prefix_pattern(self):
        f = SensitiveWordFilter(["salar*"])
        assert f.is_sensitive("salary")
        assert f.is_sensitive("salaries")
        assert not f.is_sensitive("salad")

    def test_case_normalized_on_add(self):
        f = SensitiveWordFilter(["SeCrEt"])
        assert f.is_sensitive("secret")

    def test_add_and_remove(self):
        f = SensitiveWordFilter()
        f.add("hidden")
        assert f.is_sensitive("hidden")
        f.remove("hidden")
        assert not f.is_sensitive("hidden")

    def test_remove_prefix_pattern(self):
        f = SensitiveWordFilter(["med*"])
        f.remove("med*")
        assert not f.is_sensitive("medical")

    def test_empty_and_blank_words_ignored(self):
        f = SensitiveWordFilter(["", "   "])
        assert len(f) == 0

    def test_bare_star_ignored(self):
        f = SensitiveWordFilter(["*"])
        assert len(f) == 0
        assert not f.is_sensitive("anything")

    def test_len_counts_both_kinds(self):
        f = SensitiveWordFilter(["a-word", "pre*"])
        assert len(f) == 2

    def test_duplicate_prefix_not_double_counted(self):
        f = SensitiveWordFilter(["pre*", "pre*"])
        assert len(f) == 1
