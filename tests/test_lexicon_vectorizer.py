"""Tests for the lexicon and vectorization pipeline."""

import pytest

from repro.errors import VocabularyError
from repro.ml.sparse import SparseVector
from repro.text.lexicon import Lexicon, stable_word_id
from repro.text.sensitive import SensitiveWordFilter
from repro.text.vectorizer import (
    BagOfWordsVectorizer,
    PreprocessingPipeline,
    TfidfTransformer,
    build_lexicon,
)


class TestStableWordId:
    def test_deterministic(self):
        assert stable_word_id("peer", 1000) == stable_word_id("peer", 1000)

    def test_in_range(self):
        for word in ("a", "tagging", "classification"):
            assert 0 <= stable_word_id(word, 128) < 128

    def test_different_words_usually_differ(self):
        ids = {stable_word_id(w, 2 ** 18) for w in ("peer", "tag", "doc", "net")}
        assert len(ids) == 4


class TestLexicon:
    def test_add_and_lookup(self):
        lex = Lexicon()
        ids = lex.add_document(["tag", "peer", "tag"])
        assert len(ids) == 3
        assert lex.id_of("tag") is not None
        assert lex.word_of(lex.id_of("tag")) == "tag"

    def test_document_frequency_counts_documents_not_tokens(self):
        lex = Lexicon()
        lex.add_document(["tag", "tag", "tag"])
        lex.add_document(["tag", "peer"])
        assert lex.document_frequency("tag") == 2
        assert lex.document_frequency("peer") == 1

    def test_frozen_lexicon_drops_unknown(self):
        lex = Lexicon()
        lex.add_document(["known"])
        lex.freeze()
        ids = lex.add_document(["known", "unknown"])
        assert len(ids) == 1
        assert "unknown" not in lex

    def test_prune_by_min_df(self):
        lex = Lexicon()
        lex.add_document(["common", "rare"])
        lex.add_document(["common"])
        pruned = lex.prune(min_df=2)
        assert "common" in pruned
        assert "rare" not in pruned

    def test_prune_by_max_df_fraction(self):
        lex = Lexicon()
        for i in range(10):
            tokens = ["boilerplate"] if i >= 5 else ["boilerplate", "unique"]
            lex.add_document(tokens)
        pruned = lex.prune(max_df_fraction=0.8)
        assert "boilerplate" not in pruned
        assert "unique" in pruned

    def test_prune_empty_raises(self):
        with pytest.raises(VocabularyError):
            Lexicon().prune()

    def test_word_of_out_of_range_raises(self):
        with pytest.raises(VocabularyError):
            Lexicon().word_of(0)


class TestBagOfWords:
    def test_counts_repeated_tokens(self):
        vec = BagOfWordsVectorizer(dimension=2 ** 16)
        v = vec.vectorize_tokens(["tag", "tag", "peer"])
        tag_id = stable_word_id("tag", 2 ** 16)
        assert v[tag_id] == 2.0

    def test_sublinear_tf(self):
        vec = BagOfWordsVectorizer(dimension=2 ** 16, sublinear_tf=True)
        v = vec.vectorize_tokens(["tag"] * 10)
        tag_id = stable_word_id("tag", 2 ** 16)
        assert 1.0 < v[tag_id] < 10.0

    def test_empty_tokens(self):
        vec = BagOfWordsVectorizer()
        assert vec.vectorize_tokens([]).nnz == 0

    def test_bad_dimension_raises(self):
        with pytest.raises(VocabularyError):
            BagOfWordsVectorizer(dimension=0)


class TestTfidf:
    def test_transform_before_fit_raises(self):
        with pytest.raises(VocabularyError):
            TfidfTransformer().transform(SparseVector({1: 1.0}))

    def test_rare_features_upweighted(self):
        common = SparseVector({1: 1.0})
        rare = SparseVector({2: 1.0})
        both = SparseVector({1: 1.0, 2: 1.0})
        transformer = TfidfTransformer().fit([common, common, common, both])
        weighted = transformer.transform(both, normalize=False)
        assert weighted[2] > weighted[1]

    def test_normalized_output(self):
        t = TfidfTransformer().fit([SparseVector({1: 1.0, 2: 2.0})])
        out = t.transform(SparseVector({1: 3.0, 2: 1.0}))
        assert out.norm() == pytest.approx(1.0)


class TestPipeline:
    def test_stop_words_removed(self):
        pipeline = PreprocessingPipeline()
        tokens = pipeline.tokens("the peer and the network")
        assert "the" not in tokens
        assert "and" not in tokens

    def test_stemming_applied(self):
        pipeline = PreprocessingPipeline()
        assert pipeline.tokens("tagging documents") == ["tag", "document"]

    def test_sensitive_words_never_vectorized(self):
        pipeline = PreprocessingPipeline(
            sensitive_filter=SensitiveWordFilter(["confidential"])
        )
        v_with = pipeline.process("confidential project report")
        v_without = pipeline.process("project report")
        assert v_with == v_without

    def test_process_deterministic_across_instances(self):
        a = PreprocessingPipeline(dimension=2 ** 16)
        b = PreprocessingPipeline(dimension=2 ** 16)
        text = "peers collaboratively tag shared documents"
        assert a.process(text) == b.process(text)

    def test_process_many(self):
        pipeline = PreprocessingPipeline()
        vectors = pipeline.process_many(["first document", "second document"])
        assert len(vectors) == 2
        assert all(v.nnz > 0 for v in vectors)

    def test_build_lexicon(self):
        lex = build_lexicon(["tagging documents", "tagging peers"])
        assert "tag" in lex
        assert lex.num_documents == 2
        assert lex.document_frequency("tag") == 2


class TestPipelineTfidf:
    def test_fit_enables_tfidf(self):
        pipeline = PreprocessingPipeline(dimension=2 ** 16)
        assert not pipeline.uses_tfidf
        pipeline.fit_tfidf(["alpha beta gamma", "alpha beta", "alpha"])
        assert pipeline.uses_tfidf

    def test_tfidf_downweights_common_words(self):
        pipeline = PreprocessingPipeline(dimension=2 ** 16)
        pipeline.fit_tfidf(["common rare", "common", "common word", "common also"])
        vector = pipeline.process("common rare")
        common_id = stable_word_id("common", 2 ** 16)
        rare_id = stable_word_id("rare", 2 ** 16)
        assert vector[rare_id] > vector[common_id]

    def test_tfidf_output_normalized(self):
        pipeline = PreprocessingPipeline(dimension=2 ** 16)
        pipeline.fit_tfidf(["alpha beta gamma", "beta gamma delta"])
        assert pipeline.process("alpha beta").norm() == pytest.approx(1.0)

    def test_fit_on_empty_raises(self):
        with pytest.raises(VocabularyError):
            PreprocessingPipeline().fit_tfidf([])

    def test_unnormalized_variant(self):
        pipeline = PreprocessingPipeline(dimension=2 ** 16, normalize=False)
        pipeline.fit_tfidf(["a word here", "another word there"])
        vector = pipeline.process("word word word")
        assert vector.norm() != pytest.approx(1.0)
