"""End-to-end integration: trained system + query workload + message trace.

A "day in the life" run: train collaboratively, then replay a Poisson
tagging workload through the simulator while tracing every message, and
check the pieces agree with each other (trace totals vs stats totals,
metadata growth vs queries served, maintenance traffic under churn).
"""

import pytest

from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.data.delicious import DeliciousGenerator
from repro.sim.trace import MessageTrace
from repro.sim.workload import QueryWorkload, WorkloadConfig


def build_system(algorithm="nbagg", churn="none", seed=4):
    corpus = DeliciousGenerator(
        num_users=6, seed=seed, num_tags=6, docs_per_user_range=(14, 18),
        vocabulary_size=400, topic_words_per_tag=30, doc_length_range=(30, 60),
    ).generate()
    return P2PDocTaggerSystem(
        corpus,
        SystemConfig(
            algorithm=algorithm, churn=churn, mean_session=300.0,
            mean_downtime=30.0, train_fraction=0.3, seed=seed,
        ),
    )


class TestWorkloadIntegration:
    def test_workload_replay_tags_documents(self):
        system = build_system()
        system.train()
        workload = QueryWorkload(
            WorkloadConfig(
                peers=list(system.peers),
                rate_per_peer=0.02,
                duration=300.0,
                seed=1,
            )
        )
        events = workload.generate()
        assert events
        pools = {
            address: [
                d for d in system.test_corpus
                if system._owner_to_peer[d.owner] == address
            ]
            for address in system.peers
        }

        served = []

        def handle(event):
            pool = pools[event.peer]
            if not pool:
                return
            document = pool[event.doc_index % len(pool)]
            tags = system.peers[event.peer].auto_tag(document.untagged())
            served.append((event.peer, document.doc_id, tags))

        workload.replay(events, handle, simulator=system.scenario.simulator)
        assert len(served) == len(events)
        assert all(tags for _, _, tags in served)
        # Every served document got persisted metadata on its peer.
        for peer_id, doc_id, tags in served:
            assert system.peers[peer_id].store.tags_of(doc_id) == tags

    def test_trace_agrees_with_stats(self):
        system = build_system()
        with MessageTrace().attach(system.scenario.network) as trace:
            system.train()
        stats = system.scenario.stats
        assert len(trace) == stats.total_messages
        traced_bytes = sum(r.size_bytes * max(1, r.hops) for r in trace.records())
        assert traced_bytes == stats.total_bytes

    def test_churn_run_charges_maintenance(self):
        system = build_system(churn="exponential")
        system.train()
        system.scenario.run(duration=120.0)
        stats = system.scenario.stats
        assert stats.counters["stabilize_rounds"] > 0
        assert stats.bytes_for("overlay.maintenance") > 0
        assert stats.messages_for("overlay.maintenance") > 0

    def test_static_run_has_no_maintenance(self):
        system = build_system(churn="none")
        system.train()
        assert system.scenario.stats.bytes_for("overlay.maintenance") == 0
