"""Tests for data distribution, scenarios, and visualization helpers."""

import numpy as np
import pytest

from repro.data.delicious import DeliciousGenerator
from repro.errors import ConfigurationError, DataError
from repro.sim.distribution import DataDistributor, ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.sim.visualize import (
    adjacency_table,
    ascii_summary,
    connectivity_report,
    degree_statistics,
    overlay_to_graph,
)


def corpus(num_users=6, seed=0):
    return DeliciousGenerator(
        num_users=num_users, seed=seed, docs_per_user_range=(10, 10)
    ).generate()


class TestShardSpec:
    def test_valid(self):
        ShardSpec(num_peers=4).validate()

    def test_invalid(self):
        with pytest.raises(DataError):
            ShardSpec(num_peers=0).validate()
        with pytest.raises(DataError):
            ShardSpec(num_peers=2, size_distribution="weird").validate()
        with pytest.raises(DataError):
            ShardSpec(num_peers=2, class_distribution="weird").validate()
        with pytest.raises(DataError):
            ShardSpec(num_peers=2, dirichlet_alpha=0).validate()


class TestDataDistributor:
    def test_every_document_assigned_once(self):
        data = corpus()
        sharded = DataDistributor(ShardSpec(num_peers=8)).distribute(data)
        assert len(sharded) == len(data)
        assert {d.doc_id for d in sharded} == {d.doc_id for d in data}

    def test_owners_are_peer_indices(self):
        sharded = DataDistributor(ShardSpec(num_peers=8)).distribute(corpus())
        assert set(sharded.owners) <= set(range(8))

    def test_every_peer_nonempty(self):
        sharded = DataDistributor(ShardSpec(num_peers=10)).distribute(corpus())
        assert len(sharded.owners) == 10

    def test_uniform_sizes_balanced(self):
        sharded = DataDistributor(ShardSpec(num_peers=6)).distribute(corpus())
        sizes = [len(sharded.documents_of(o)) for o in sharded.owners]
        assert max(sizes) - min(sizes) <= 3

    def test_zipf_sizes_skewed(self):
        spec = ShardSpec(
            num_peers=10, size_distribution="zipf", zipf_exponent=1.5, seed=1
        )
        sharded = DataDistributor(spec).distribute(corpus(num_users=12))
        sizes = sorted(len(sharded.documents_of(o)) for o in sharded.owners)
        assert sizes[-1] >= 3 * max(1, sizes[0])

    def test_dirichlet_class_skew(self):
        """Smaller alpha concentrates each peer's tags more."""

        def mean_peer_tag_entropy(alpha):
            spec = ShardSpec(
                num_peers=6,
                class_distribution="dirichlet",
                dirichlet_alpha=alpha,
                seed=0,
            )
            sharded = DataDistributor(spec).distribute(corpus(num_users=10, seed=3))
            entropies = []
            for owner in sharded.owners:
                counts = sharded.user_profile(owner).tag_counts()
                total = sum(counts.values())
                p = np.array([c / total for c in counts.values()])
                entropies.append(-(p * np.log(p + 1e-12)).sum())
            return float(np.mean(entropies))

        assert mean_peer_tag_entropy(0.05) < mean_peer_tag_entropy(100.0)

    def test_reproducible(self):
        spec = ShardSpec(num_peers=5, seed=9)
        a = DataDistributor(spec).distribute(corpus())
        b = DataDistributor(spec).distribute(corpus())
        assert [d.owner for d in a] == [d.owner for d in b]

    def test_too_few_documents(self):
        small = corpus(num_users=1)
        with pytest.raises(DataError):
            DataDistributor(ShardSpec(num_peers=1000)).distribute(small)

    def test_empty_corpus(self):
        from repro.data.corpus import Corpus

        with pytest.raises(DataError):
            DataDistributor(ShardSpec(num_peers=2)).distribute(Corpus([]))


class TestScenario:
    def test_build_defaults(self):
        scenario = Scenario(
            ScenarioConfig(num_peers=16, shard=ShardSpec(num_peers=16))
        )
        assert len(scenario.overlay.members()) == 16
        assert scenario.live_peers() == list(range(16))

    def test_mismatched_shard_peers_rejected(self):
        config = ScenarioConfig(num_peers=8, shard=ShardSpec(num_peers=4))
        with pytest.raises(ConfigurationError):
            Scenario(config)

    def test_each_overlay_type_builds(self):
        for overlay in ("chord", "kademlia", "unstructured"):
            config = ScenarioConfig(
                num_peers=8, overlay=overlay, shard=ShardSpec(num_peers=8)
            )
            scenario = Scenario(config)
            assert scenario.overlay.name == overlay

    def test_churn_changes_membership(self):
        config = ScenarioConfig(
            num_peers=16,
            churn="exponential",
            mean_session=10.0,
            mean_downtime=20.0,
            shard=ShardSpec(num_peers=16),
            seed=5,
        )
        scenario = Scenario(config)
        scenario.start_churn()
        scenario.run(duration=60.0)
        assert scenario.stats.counters["churn_leaves"] > 0
        assert len(scenario.live_peers()) < 16

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            Scenario(ScenarioConfig(num_peers=0, shard=ShardSpec(num_peers=1)))
        with pytest.raises(ConfigurationError):
            Scenario(
                ScenarioConfig(
                    num_peers=2, overlay="hypercube", shard=ShardSpec(num_peers=2)
                )
            )


class TestVisualize:
    def overlay(self):
        from repro.overlay.unstructured import UnstructuredOverlay

        overlay = UnstructuredOverlay(degree=3, seed=0)
        for address in range(12):
            overlay.join(address)
        return overlay

    def test_graph_export(self):
        graph = overlay_to_graph(self.overlay())
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() > 0

    def test_degree_statistics(self):
        stats = degree_statistics(self.overlay())
        assert stats["nodes"] == 12
        assert stats["mean_degree"] >= 2

    def test_connectivity(self):
        report = connectivity_report(self.overlay())
        assert report["connected"] == 1.0

    def test_ascii_and_table(self):
        overlay = self.overlay()
        assert "unstructured" in ascii_summary(overlay)
        assert "->" in adjacency_table(overlay)

    def test_empty_overlay(self):
        from repro.overlay.unstructured import UnstructuredOverlay

        empty = UnstructuredOverlay()
        assert degree_statistics(empty)["nodes"] == 0
        assert connectivity_report(empty)["components"] == 0.0
