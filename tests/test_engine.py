"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.schedule(1.0, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(5.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [5.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(10.0, lambda: hits.append(2))
        executed = sim.run(until=5.0)
        assert executed == 1
        assert hits == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_then_continue(self):
        sim = Simulator()
        hits = []
        sim.schedule(10.0, lambda: hits.append(1))
        sim.run(until=5.0)
        sim.run()
        assert hits == [1]

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert sim.pending_events == 7

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        hits = []
        event = sim.schedule(1.0, lambda: hits.append("cancelled"))
        sim.schedule(2.0, lambda: hits.append("kept"))
        event.cancel()
        sim.run()
        assert hits == ["kept"]

    def test_run_until_idle_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)

    def test_clear(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.clear()
        assert sim.pending_events == 0

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_deterministic_rng(self):
        a = Simulator(seed=42).rng.random()
        b = Simulator(seed=42).rng.random()
        assert a == b


class TestCallbackArgs:
    def test_args_passed_without_closure(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, hits.append, args=("payload",))
        sim.run()
        assert hits == ["payload"]


class TestScheduleBatch:
    def test_batch_interleaves_with_singles(self):
        sim = Simulator()
        order = []
        sim.schedule(2.5, lambda: order.append("single"))
        sim.schedule_batch(
            [1.0, 3.0, 2.0], order.append, [("a",), ("c",), ("b",)]
        )
        sim.run()
        assert order == ["a", "b", "single", "c"]

    def test_batch_ties_keep_submission_order(self):
        sim = Simulator()
        order = []
        sim.schedule_batch([1.0] * 4, order.append, [(i,) for i in range(4)])
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_batch_counts_as_pending(self):
        sim = Simulator()
        scheduled = sim.schedule_batch([1.0, 2.0], lambda: None)
        assert scheduled == 2
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_large_batch_heapify_path(self):
        # Batches larger than the live queue take the extend+heapify path;
        # ordering must be identical to one-by-one pushes.
        sim = Simulator()
        order = []
        delays = [float((i * 7) % 20 + 1) for i in range(50)]
        sim.schedule_batch(delays, order.append, [(d,) for d in delays])
        sim.run()
        assert order == sorted(delays) != delays

    def test_negative_batch_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_batch([1.0, -0.5], lambda: None)


class TestScheduleBatchAt:
    def test_absolute_times_used_exactly(self):
        # schedule_batch_at must not re-add `now`: the activation instants
        # land bit-identically on the given floats (the scheduled-round
        # pattern depends on this for scalar/batch equivalence).
        sim = Simulator()
        sim.schedule(0.5, lambda: None)
        sim.run()  # now == 0.5
        seen = []
        times = [0.5 + 0.1, 0.5 + 0.1 + 0.2]
        sim.schedule_batch_at(times, lambda: seen.append(sim.now))
        sim.run()
        assert seen == times

    def test_interleaves_with_relative_schedules(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("mid"))
        sim.schedule_batch_at([1.0, 3.0], order.append, [("a",), ("b",)])
        sim.run()
        assert order == ["a", "mid", "b"]

    def test_past_time_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_batch_at([0.5], lambda: None)

    def test_counts_as_pending_and_without_args(self):
        sim = Simulator()
        fired = []
        assert sim.schedule_batch_at([1.0, 2.0], lambda: fired.append(sim.now)) == 2
        assert sim.pending_events == 2
        sim.run()
        assert fired == [1.0, 2.0]
        assert sim.pending_events == 0


class TestPendingCounter:
    def test_pending_is_live_counter(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        events[0].cancel()
        events[0].cancel()  # idempotent
        assert sim.pending_events == 4
        sim.run(max_events=2)
        assert sim.pending_events == 2

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending_events == 0
        event.cancel()
        assert sim.pending_events == 0

    def test_cancel_after_clear_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.clear()
        event.cancel()
        assert sim.pending_events == 0


class TestScheduleBlock:
    """The array-native block path must be observationally identical to
    schedule_batch_at over the same records — same pop order, same
    sequence-number consumption, same pending accounting."""

    def _run_both(self, plan):
        """plan(sim, schedule) builds one scenario; schedule(times, cb,
        columns) is either the block or the per-event path."""

        def batch(sim, times, callback, columns):
            sim.schedule_batch_at(times, callback, zip(*columns))

        def block(sim, times, callback, columns):
            sim.schedule_block(times, callback, columns)

        logs = []
        for schedule in (batch, block):
            sim = Simulator(seed=9)
            log = []
            plan(sim, lambda t, cb, cols: schedule(sim, t, cb, cols), log)
            logs.append(log)
        assert logs[0] == logs[1]
        return logs[1]

    def test_matches_batch_pop_order_with_interleaving(self):
        def plan(sim, schedule, log):
            sim.schedule(1.5, lambda: log.append(("single", sim.now)))
            schedule(
                [1.0, 1.5, 1.5, 3.0],
                lambda tag: log.append((tag, sim.now)),
                [["a", "b", "c", "d"]],
            )
            # later schedules must tie-break AFTER the whole block's
            # pre-allocated sequence range
            sim.schedule_at(1.5, lambda: log.append(("late", sim.now)))
            sim.run()

        log = self._run_both(plan)
        assert [entry[0] for entry in log] == [
            "a", "single", "b", "c", "late", "d",
        ]

    def test_multi_column_arguments(self):
        sim = Simulator()
        seen = []
        sim.schedule_block(
            [1.0, 2.0],
            lambda a, b: seen.append((a, b, sim.now)),
            [[10, 20], ["x", "y"]],
        )
        sim.run()
        assert seen == [(10, "x", 1.0), (20, "y", 2.0)]

    def test_pending_accounting_and_return_value(self):
        sim = Simulator()
        assert sim.schedule_block([], lambda: None, []) == 0
        assert sim.schedule_block([1.0, 2.0, 3.0], lambda v: None, [[1, 2, 3]]) == 3
        assert sim.pending_events == 3
        sim.run(max_events=1)
        assert sim.pending_events == 2
        assert sim.events_processed == 1
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_processed == 3

    def test_until_clamp_mid_block_resumes(self):
        sim = Simulator()
        seen = []
        sim.schedule_block(
            [1.0, 2.0, 3.0], seen.append, [["a", "b", "c"]]
        )
        sim.run(until=1.5)
        assert seen == ["a"] and sim.now == 1.5
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_clear_drops_remaining_block(self):
        sim = Simulator()
        seen = []
        sim.schedule_block([1.0, 2.0], seen.append, [["a", "b"]])
        sim.run(max_events=1)
        sim.clear()
        sim.run()
        assert seen == ["a"]
        assert sim.pending_events == 0

    def test_past_time_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_block([0.5], lambda v: None, [[1]])

    def test_decreasing_times_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="non-decreasing"):
            sim.schedule_block([2.0, 1.0], lambda v: None, [[1, 2]])

    def test_column_length_mismatch_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="mismatch"):
            sim.schedule_block([1.0, 2.0], lambda v: None, [[1]])
