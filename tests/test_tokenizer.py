"""Tests for repro.text.tokenizer."""

from repro.text.tokenizer import iter_tokens, sentence_split, tokenize


class TestTokenize:
    def test_basic_lowercasing_and_splitting(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_punctuation_removed(self):
        assert tokenize("tags, files; docs!") == ["tags", "files", "docs"]

    def test_numbers_dropped(self):
        assert tokenize("version 42 released in 2010") == [
            "version",
            "released",
            "in",
        ]

    def test_single_letters_dropped_by_default(self):
        assert tokenize("a b c word") == ["word"]

    def test_min_length_configurable(self):
        assert tokenize("a b word", min_length=1) == ["a", "b", "word"]

    def test_possessives_collapsed(self):
        assert tokenize("the user's documents") == ["the", "user", "documents"]

    def test_hyphenated_words_split(self):
        assert tokenize("peer-to-peer") == ["peer", "to", "peer"]

    def test_empty_and_none_like_inputs(self):
        assert tokenize("") == []
        assert tokenize("   \n\t  ") == []
        assert tokenize("!!!???") == []

    def test_max_length_filter(self):
        long_word = "x" * 50
        assert tokenize(f"short {long_word}") == ["short"]

    def test_unicode_text_keeps_ascii_words(self):
        tokens = tokenize("café naïve documents")
        assert "documents" in tokens

    def test_iter_tokens_matches_tokenize(self):
        text = "The quick brown fox's jump-start, over 9 dogs!"
        assert list(iter_tokens(text)) == tokenize(text)


class TestSentenceSplit:
    def test_splits_on_terminal_punctuation(self):
        parts = sentence_split("First one. Second one! Third one?")
        assert parts == ["First one.", "Second one!", "Third one?"]

    def test_no_punctuation_yields_single_sentence(self):
        assert sentence_split("no terminal punctuation here") == [
            "no terminal punctuation here"
        ]

    def test_empty_input(self):
        assert sentence_split("") == []
