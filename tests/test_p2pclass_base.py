"""Tests for the shared P2P classification machinery."""

import numpy as np
import pytest

from repro.data.delicious import DeliciousGenerator
from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import (
    P2PTagClassifier,
    TaggedVector,
    binary_problems,
    collect_tag_universe,
    corpus_to_peer_data,
)
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig


def tv(entries, tags):
    return TaggedVector(vector=SparseVector(entries), tags=frozenset(tags))


def scenario(n=4, seed=0):
    return Scenario(
        ScenarioConfig(num_peers=n, shard=ShardSpec(num_peers=n), seed=seed)
    )


ITEMS = [
    tv({0: 1.0}, {"a"}),
    tv({1: 1.0}, {"a", "b"}),
    tv({2: 1.0}, {"b"}),
    tv({3: 1.0}, {"c"}),
]


class TestBinaryProblems:
    def test_positive_and_negative_labels(self):
        problems = binary_problems(ITEMS, ["a", "b", "c"])
        vectors, labels = problems["a"]
        assert labels.count(1) == 2
        assert all(label in (-1, 1) for label in labels)
        assert len(vectors) == len(labels)

    def test_tag_without_positives_skipped(self):
        problems = binary_problems(ITEMS, ["zzz"])
        assert problems == {}

    def test_negative_ratio_cap(self):
        many = [tv({i: 1.0}, {"x"} if i == 0 else {"y"}) for i in range(50)]
        problems = binary_problems(many, ["x"], max_negative_ratio=2.0)
        _, labels = problems["x"]
        assert labels.count(-1) <= 2

    def test_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            binary_problems(ITEMS, ["a"], max_negative_ratio=0)

    def test_deterministic_with_rng(self):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        p1 = binary_problems(ITEMS, ["a"], rng=rng1)
        p2 = binary_problems(ITEMS, ["a"], rng=rng2)
        assert p1["a"][1] == p2["a"][1]


class TestHelpers:
    def test_collect_tag_universe(self):
        peer_data = {0: ITEMS[:2], 1: ITEMS[2:]}
        assert collect_tag_universe(peer_data) == ["a", "b", "c"]

    def test_corpus_to_peer_data(self):
        corpus = DeliciousGenerator(num_users=3, seed=0).generate()
        peer_data = corpus_to_peer_data(corpus)
        assert set(peer_data) == set(corpus.owners)
        total = sum(len(v) for v in peer_data.values())
        assert total == len(corpus)
        for items in peer_data.values():
            for item in items:
                assert item.vector.nnz > 0
                assert item.tags

    def test_tagged_vector_wire_size(self):
        item = tv({0: 1.0, 1: 2.0}, {"ab"})
        assert item.wire_size() == 24 + 2 + 2


class _StubClassifier(P2PTagClassifier):
    """Minimal concrete classifier for interface tests."""

    def train(self):
        self._trained = True

    def predict_scores(self, origin, vector):
        return {"a": 0.9, "b": 0.4, "c": 0.1}


class TestInterface:
    def make(self):
        s = scenario()
        peer_data = {0: ITEMS[:2], 1: ITEMS[2:]}
        return _StubClassifier(s, peer_data)

    def test_tags_inferred(self):
        assert self.make().tags == ["a", "b", "c"]

    def test_untrained_guard(self):
        classifier = self.make()
        with pytest.raises(NotTrainedError):
            classifier.predict_tags(0, SparseVector({0: 1.0}))

    def test_predict_tags_threshold(self):
        classifier = self.make()
        classifier.train()
        tags = classifier.predict_tags(0, SparseVector({0: 1.0}), threshold=0.5)
        assert tags == {"a"}

    def test_predict_tags_never_empty(self):
        classifier = self.make()
        classifier.train()
        tags = classifier.predict_tags(0, SparseVector({0: 1.0}), threshold=0.99)
        assert tags == {"a"}  # falls back to the single best tag

    def test_rank_tags_sorted(self):
        classifier = self.make()
        classifier.train()
        ranked = classifier.rank_tags(0, SparseVector({0: 1.0}))
        assert [t for t, _ in ranked] == ["a", "b", "c"]

    def test_empty_peer_data_rejected(self):
        with pytest.raises(ConfigurationError):
            _StubClassifier(scenario(), {})

    def test_unknown_peer_rejected(self):
        with pytest.raises(ConfigurationError):
            _StubClassifier(scenario(n=2), {5: ITEMS})

    def test_no_tags_rejected(self):
        with pytest.raises(ConfigurationError):
            _StubClassifier(scenario(), {0: [tv({0: 1.0}, set())]})
