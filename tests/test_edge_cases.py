"""Edge-case coverage across modules: boundaries the main suites skip."""

import pytest

from repro.core.tagger import EvaluationReport, P2PDocTaggerSystem, SystemConfig
from repro.data.corpus import Corpus, Document
from repro.data.delicious import DeliciousGenerator
from repro.errors import ConfigurationError, DataError
from repro.ml.metrics import MultiLabelReport
from repro.sim.distribution import DataDistributor, ShardSpec
from repro.sim.engine import Simulator


class TestEngineBoundaries:
    def test_event_exactly_at_until_runs(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(5.0, lambda: fired.append(1))
        simulator.run(until=5.0)
        assert fired == [1]

    def test_until_beyond_all_events_advances_clock(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run(until=10.0)
        assert simulator.now == 10.0

    def test_run_on_empty_queue_with_until(self):
        simulator = Simulator()
        simulator.run(until=3.0)
        assert simulator.now == 3.0


class TestDistributionBranches:
    def test_dirichlet_with_untagged_documents(self):
        documents = [
            Document(doc_id=i, text="x", tags=frozenset({"a"} if i % 2 else set()),
                     owner=0)
            for i in range(12)
        ]
        spec = ShardSpec(
            num_peers=3, class_distribution="dirichlet", dirichlet_alpha=0.5
        )
        sharded = DataDistributor(spec).distribute(Corpus(documents))
        assert len(sharded) == 12
        assert len(sharded.owners) == 3

    def test_dirichlet_all_untagged_rejected(self):
        documents = [
            Document(doc_id=i, text="x", tags=frozenset(), owner=0)
            for i in range(6)
        ]
        spec = ShardSpec(num_peers=2, class_distribution="dirichlet")
        with pytest.raises(DataError):
            DataDistributor(spec).distribute(Corpus(documents))


class TestSystemConfig:
    def test_threshold_bounds(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(threshold=1.5).validate()
        with pytest.raises(ConfigurationError):
            SystemConfig(train_fraction=0.0).validate()

    def test_min_tag_support_filters_rare_tags(self):
        corpus = DeliciousGenerator(
            num_users=4, seed=1, docs_per_user_range=(10, 12)
        ).generate()
        system = P2PDocTaggerSystem(
            corpus, SystemConfig(algorithm="local", min_tag_support=3)
        )
        counts = corpus.tag_counts()
        for tag in system.corpus.tag_universe():
            assert counts[tag] >= 3

    def test_min_tag_support_too_high_rejected(self):
        corpus = DeliciousGenerator(
            num_users=2, seed=1, docs_per_user_range=(5, 6)
        ).generate()
        with pytest.raises(ConfigurationError):
            P2PDocTaggerSystem(
                corpus, SystemConfig(algorithm="local", min_tag_support=10 ** 6)
            )


class TestEvaluationReport:
    def test_summary_contains_all_cost_fields(self):
        report = EvaluationReport(
            algorithm="x",
            metrics=MultiLabelReport.compute([{"a"}], [{"a"}]),
            total_messages=5,
            total_bytes=100,
            max_peer_sent_bytes=60,
            max_peer_received_bytes=40,
            virtual_time=1.5,
        )
        summary = report.summary()
        for token in ("[x]", "msgs=5", "bytes=100", "maxTx=60", "maxRx=40"):
            assert token in summary


class TestTuneThresholdsIntegration:
    def test_tune_before_train_raises(self):
        from repro.errors import NotTrainedError

        corpus = DeliciousGenerator(
            num_users=4, seed=2, docs_per_user_range=(10, 12)
        ).generate()
        system = P2PDocTaggerSystem.from_corpus(corpus, algorithm="local")
        with pytest.raises(NotTrainedError):
            system.tune_thresholds()

    def test_tune_installs_per_tag_policy(self):
        from repro.core.multilabel import PerTagThreshold

        corpus = DeliciousGenerator(
            num_users=4, seed=2, docs_per_user_range=(12, 14)
        ).generate()
        system = P2PDocTaggerSystem.from_corpus(
            corpus, algorithm="local", train_fraction=0.3
        )
        system.train()
        thresholds = system.tune_thresholds()
        assert isinstance(system.policy, PerTagThreshold)
        assert set(thresholds) == set(system.corpus.tag_universe())
        assert all(0.0 <= t <= 1.0 for t in thresholds.values())
