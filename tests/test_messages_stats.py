"""Tests for message size accounting and the stats collector."""

from repro.ml.sparse import SparseVector
from repro.sim.messages import Message, payload_size
from repro.sim.stats import ActivityLog, StatsCollector


class TestPayloadSize:
    def test_primitives(self):
        assert payload_size(None) == 0
        assert payload_size(True) == 1
        assert payload_size(7) == 8
        assert payload_size(3.14) == 8
        assert payload_size("abcd") == 4
        assert payload_size(b"abc") == 3

    def test_containers(self):
        assert payload_size([1, 2]) == 18
        assert payload_size({"a": 1}) == 1 + 8 + 2

    def test_wire_size_protocol_preferred(self):
        vector = SparseVector({1: 1.0, 2: 2.0})
        assert payload_size(vector) == vector.wire_size() == 24

    def test_nested_structures(self):
        payload = {"vectors": [SparseVector({1: 1.0}), SparseVector({2: 2.0})]}
        assert payload_size(payload) == 7 + (12 + 12 + 2) + 2

    def test_bool_is_one_byte_not_eight(self):
        # Regression: the docstring used to claim bool=8 while the code
        # returned 1.  The documented rule is now bool=1 (checked before the
        # int branch, since bool subclasses int); pin both truth values.
        assert payload_size(True) == 1
        assert payload_size(False) == 1
        assert payload_size([True, False]) == 1 + 1 + 2
        assert payload_size(1) == 8  # the int 1 still costs a full word

    def test_object_fallback_uses_public_attrs(self):
        class Thing:
            def __init__(self):
                self.x = 1
                self._private = "should not count"

        assert payload_size(Thing()) == 1 + 8 + 2


class TestMessage:
    def test_size_computed_from_payload(self):
        message = Message(src=1, dst=2, msg_type="m", payload="abcd")
        assert message.size_bytes == 40 + 4

    def test_explicit_size_respected(self):
        message = Message(src=1, dst=2, msg_type="m", payload="abcd", size_bytes=7)
        assert message.size_bytes == 7

    def test_total_bytes_scales_with_hops(self):
        message = Message(src=1, dst=2, msg_type="m", payload=None, hops=3)
        assert message.total_bytes() == 40 * 3

    def test_message_ids_unique(self):
        a = Message(src=1, dst=2, msg_type="m")
        b = Message(src=1, dst=2, msg_type="m")
        assert a.msg_id != b.msg_id


class TestStatsCollector:
    def make(self):
        stats = StatsCollector()
        stats.record_message(Message(src=1, dst=2, msg_type="model", payload="xx"))
        stats.record_message(Message(src=2, dst=3, msg_type="model", payload="yy"))
        stats.record_message(Message(src=1, dst=3, msg_type="query", payload="z"))
        return stats

    def test_totals(self):
        stats = self.make()
        assert stats.total_messages == 3
        assert stats.total_bytes == (42 + 42 + 41)

    def test_by_type(self):
        stats = self.make()
        assert stats.messages_for("model") == 2
        assert stats.bytes_for("query") == 41
        assert stats.messages_for("model", "query") == 3

    def test_per_peer_bytes(self):
        stats = self.make()
        assert stats.per_peer_bytes[1] == 42 + 41
        assert stats.per_peer_bytes[2] == 42

    def test_counters_and_series(self):
        stats = StatsCollector()
        stats.increment("lookups")
        stats.increment("lookups", 2)
        stats.observe("accuracy", time=1.0, value=0.5)
        stats.observe("accuracy", time=2.0, value=0.7)
        assert stats.counters["lookups"] == 3
        assert stats.series_values("accuracy") == [0.5, 0.7]

    def test_merge(self):
        a, b = self.make(), self.make()
        a.merge(b)
        assert a.total_messages == 6
        assert a.per_peer_bytes[1] == 2 * (42 + 41)

    def test_traffic_table_renders(self):
        table = self.make().traffic_table()
        assert "model" in table and "TOTAL" in table


class TestActivityLog:
    def test_record_and_filter(self):
        log = ActivityLog()
        log.record(1.0, actor=5, action="join")
        log.record(2.0, actor=6, action="leave")
        log.record(3.0, actor=5, action="leave", detail="crash")
        assert len(log) == 3
        assert len(log.entries(action="leave")) == 2
        assert len(log.entries(actor=5)) == 2
        assert log.entries(action="leave", actor=5)[0].detail == "crash"

    def test_capacity_evicts_oldest(self):
        log = ActivityLog(capacity=2)
        for i in range(5):
            log.record(float(i), actor=0, action=f"a{i}")
        assert len(log) == 2
        assert log.entries()[0].action == "a3"
