"""Tests for the block-listener API, the trace-layer hot-path fixes, and
the queryable trace store (`repro.sim.tracestore`).

The invariants under test:

- block listeners observe every send attempt on all three network paths
  without forcing any of them off their fast path (the old per-message
  send-listener gate disabled the vectorized broadcast);
- a capacity-bounded :class:`MessageTrace` evicts in O(1) (deque, not
  ``list.pop(0)``);
- :class:`TraceRecord` carries ``wire_bytes`` end to end (JSONL included,
  with the pre-wire back-compat default);
- trace-store ingest is accounting-only: golden digests are byte-identical
  with a store attached, across the sharded fuzz sample;
- K per-shard stores merge to exactly the unsharded store's row set.
"""

import collections
import time as _time

import pytest

from determinism_fixtures import (
    SHARD_JITTER_FLOOR,
    TrainingWorkload,
    build_scenario_config,
    digest_of,
    run_training_perpeer,
    run_training_sharded,
)
from repro.cli import main
from repro.sim.codec import make_codec_table
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import PhysicalNetwork, SendBlock
from repro.sim.scenario import Scenario
from repro.sim.shard import ShardedScenario
from repro.sim.stats import StatsCollector
from repro.sim.trace import MessageTrace, TraceRecord
from repro.sim.tracestore import (
    TraceStore,
    duckdb_available,
    merge_stores,
)
from repro.sim.transport import Transport


def make_stack(num_nodes=6, seed=0, codec=None):
    simulator = Simulator(seed=seed)
    stats = StatsCollector()
    network = PhysicalNetwork(simulator, stats=stats)
    transport = Transport(
        network, stats=stats,
        codec=make_codec_table(codec) if codec else None,
    )
    for node in range(num_nodes):
        network.register(node, lambda message: None)
    return simulator, stats, network, transport


ROW_QUERY = (
    "SELECT time, src, dst, msg_type, size_bytes, wire_bytes, hops"
    " FROM traffic"
)


def store_rows(path):
    with TraceStore(path) as store:
        _, rows = store.sql(ROW_QUERY)
    return sorted(rows)


# ---------------------------------------------------------------------------
# Block-listener API.
# ---------------------------------------------------------------------------


class TestBlockListeners:
    def test_blocks_cover_all_three_send_paths(self):
        simulator, stats, network, transport = make_stack()
        blocks = []
        network.add_block_listener(blocks.append)
        network.send(Message(src=0, dst=1, msg_type="uni", payload="x"))
        network.send_batch([
            Message(src=1, dst=2, msg_type="bat", size_bytes=10),
            Message(src=2, dst=3, msg_type="bat", size_bytes=11),
        ])
        network.broadcast_block(4, [0, 1, 2], "cast", None, 50,
                                wire_bytes=30)
        assert [b.count for b in blocks] == [1, 2, 3]
        unicast, batch, cast = blocks
        assert list(unicast.rows())[0][2] == "uni"
        assert [row[3] for row in batch.rows()] == [10, 11]
        # Broadcast columns stay scalar — no per-recipient expansion.
        assert cast.src == 4 and cast.msg_type == "cast"
        assert cast.size_bytes == 50 and cast.wire_bytes == 30
        assert [row[1] for row in cast.rows()] == [0, 1, 2]

    def test_attempts_recorded_before_liveness(self):
        simulator, stats, network, transport = make_stack()
        network.set_down(0)
        blocks = []
        network.add_block_listener(blocks.append)
        sent = network.send(Message(src=0, dst=1, msg_type="a"))
        assert not sent  # down source: dropped...
        assert blocks and blocks[0].count == 1  # ...but the attempt is seen

    def test_remove_block_listener(self):
        simulator, stats, network, transport = make_stack()
        blocks = []
        network.add_block_listener(blocks.append)
        network.remove_block_listener(blocks.append)
        assert not network.has_block_listeners
        network.send(Message(src=0, dst=1, msg_type="a"))
        assert blocks == []

    def test_block_listener_does_not_force_scalar_broadcast(self):
        """The satellite-2 fix: a trace rides the vectorized fast path."""
        simulator, stats, network, transport = make_stack(num_nodes=20)
        calls = []
        original = network.broadcast_block

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        network.broadcast_block = spy
        with MessageTrace().attach(network) as trace:
            assert not network.has_send_listeners
            assert network.has_block_listeners
            transport.broadcast(
                0, "cast", "y" * 64, recipients=list(range(1, 20))
            )
        assert calls == [1], "trace attached forced the scalar fallback"
        assert len(trace) == 19

    def test_digest_invariant_and_scalar_trace_equal(self):
        """Same digest with/without trace; same records scalar/vectorized."""

        def run(trace=None, scalar=False, codec="gzip-model"):
            simulator, stats, network, transport = make_stack(
                num_nodes=12, codec=codec
            )
            transport.scalar_broadcast = scalar
            if trace is not None:
                trace.attach(network)
            for origin in (0, 1):
                transport.broadcast(
                    origin, "cast", "z" * 100,
                    recipients=[n for n in range(12) if n != origin],
                )
            simulator.run()
            if trace is not None:
                trace.detach()
            return stats

        bare = run()
        traced_trace = MessageTrace()
        traced = run(trace=traced_trace)
        assert bare.fingerprint_bytes() == traced.fingerprint_bytes()

        scalar_trace = MessageTrace()
        scalar_stats = run(trace=scalar_trace, scalar=True)
        assert scalar_stats.fingerprint_bytes() == bare.fingerprint_bytes()
        assert scalar_trace.records() == traced_trace.records()
        # The codec dimension is captured, not defaulted.
        assert all(
            r.wire_bytes < r.size_bytes for r in traced_trace.records()
        )


# ---------------------------------------------------------------------------
# MessageTrace hot-path fixes.
# ---------------------------------------------------------------------------


class TestTraceFixes:
    def test_capacity_eviction_is_deque(self):
        trace = MessageTrace(capacity=3)
        assert isinstance(trace._records, collections.deque)
        assert trace._records.maxlen == 3

    def test_capacity_bounded_storm_stays_linear(self):
        """50k sends into a capacity-bounded trace: the old list.pop(0)
        made this quadratic (~1.5B element moves); the deque finishes in
        well under the generous absolute bound."""
        simulator, stats, network, transport = make_stack()
        trace = MessageTrace(capacity=1000).attach(network)
        message = Message(src=0, dst=1, msg_type="storm", size_bytes=8)
        start = _time.perf_counter()
        for _ in range(50_000):
            network.send(message)
        elapsed = _time.perf_counter() - start
        trace.detach()
        assert len(trace) == 1000
        assert elapsed < 10.0, f"capacity-bounded trace took {elapsed:.1f}s"

    def test_capacity_keeps_newest_records(self):
        simulator, stats, network, transport = make_stack()
        trace = MessageTrace(capacity=2).attach(network)
        for index in range(5):
            network.send(
                Message(src=0, dst=1, msg_type=f"m{index}")
            )
        trace.detach()
        assert [r.msg_type for r in trace.records()] == ["m3", "m4"]

    def test_trace_record_wire_bytes_default(self):
        record = TraceRecord(
            time=0.0, src=1, dst=2, msg_type="a", size_bytes=40, hops=1
        )
        assert record.wire_bytes == 40  # identity default, like Message
        explicit = TraceRecord(
            time=0.0, src=1, dst=2, msg_type="a", size_bytes=40, hops=1,
            wire_bytes=9,
        )
        assert explicit.wire_bytes == 9
        assert explicit.to_dict()["wire"] == 9

    def test_jsonl_roundtrip_preserves_wire(self, tmp_path):
        simulator, stats, network, transport = make_stack(codec="gzip-model")
        trace = MessageTrace().attach(network)
        transport.broadcast(0, "cast", "q" * 80, recipients=[1, 2])
        trace.detach()
        path = tmp_path / "trace.jsonl"
        assert trace.export_jsonl(path) == 2
        loaded = MessageTrace.load_jsonl(path)
        assert loaded.records() == trace.records()
        assert loaded.records()[0].wire_bytes < loaded.records()[0].size_bytes

    def test_jsonl_backcompat_without_wire(self, tmp_path):
        """Pre-wire exports (no "wire" key) load with wire = raw bytes."""
        path = tmp_path / "old.jsonl"
        path.write_text(
            '{"time": 1.5, "src": 1, "dst": 2, "type": "a", "bytes": 64,'
            ' "hops": 2}\n'
        )
        record = MessageTrace.load_jsonl(path).records()[0]
        assert record.wire_bytes == 64
        assert record.hops == 2


# ---------------------------------------------------------------------------
# TraceStore ingest + analytics.
# ---------------------------------------------------------------------------


class TestTraceStore:
    def test_ingest_counts_and_batching(self, tmp_path):
        path = tmp_path / "s.db"
        simulator, stats, network, transport = make_stack(num_nodes=10)
        with TraceStore(path, batch_records=16).attach(network) as store:
            for origin in range(3):
                transport.broadcast(
                    origin, "cast", "p" * 32,
                    recipients=[n for n in range(10) if n != origin],
                )
            simulator.run()
            assert store.rows_written >= 16  # mid-run flush happened
            store.record_stats(stats)
        with TraceStore(path) as reopened:
            _, rows = reopened.sql("SELECT COUNT(*) FROM messages")
            assert rows[0][0] == 27 == stats.total_messages
            _, types = reopened.sql("SELECT name FROM msg_types")
            assert [t[0] for t in types] == ["cast"]

    def test_store_counts_attempts_like_the_tracer(self, tmp_path):
        """Down-source sends land in the store (tracer convention), not in
        the stats (post-liveness)."""
        path = tmp_path / "s.db"
        simulator, stats, network, transport = make_stack()
        network.set_down(0)
        with TraceStore(path).attach(network) as store:
            network.send(Message(src=0, dst=1, msg_type="a"))
            network.send(Message(src=1, dst=2, msg_type="a"))
        assert stats.total_messages == 1
        assert len(store_rows(path)) == 2

    def test_window_stats_deltas_compose(self, tmp_path):
        path = tmp_path / "s.db"
        stats = StatsCollector()
        with TraceStore(path) as store:
            stats.record_message_block(
                "cast", 100, src=7, dsts=[1, 2, 3], wire_bytes=60
            )
            store.record_stats(stats)
            stats.increment("churn_leaves")
            stats.record_message_block(
                "cast", 100, src=8, dsts=[1, 2], wire_bytes=40
            )
            store.record_stats(stats)
            # Replaying every window's rows reproduces the totals.
            _, rows = store.sql(
                "SELECT family, key, SUM(delta) FROM window_stats"
                " GROUP BY family, key"
            )
        totals = {(family, key): delta for family, key, delta in rows}
        assert totals[("messages_by_type", "cast")] == 5
        assert totals[("counters", "churn_leaves")] == 1
        assert totals[("bytes_by_type", "cast")] == 500
        with TraceStore(path) as store:
            _, churn = store.report_churn()
        assert [row[1] for row in churn] == ["steady", "churn"]
        assert churn[-1][6] == 1  # cumulative churn events

    def test_analyze_cli(self, tmp_path, capsys):
        path = str(tmp_path / "s.db")
        simulator, stats, network, transport = make_stack(num_nodes=8)
        with TraceStore(path).attach(network):
            transport.broadcast(0, "cast", "c" * 48,
                                recipients=list(range(1, 8)))
            simulator.run()
        assert main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "Store summary" in out and "Traffic by message type" in out
        assert main([
            "analyze", path, "--report", "peers", "--report", "routes",
            "--report", "codec",
        ]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p99" in out
        assert main([
            "analyze", path, "--sql",
            "SELECT COUNT(*) AS n FROM messages",
        ]) == 0
        assert "7" in capsys.readouterr().out
        assert main(["analyze", str(tmp_path / "missing.db")]) == 2

    def test_reporting_from_store_matches_stats(self, tmp_path):
        from repro.bench.reporting import traffic_rows_from_store

        path = str(tmp_path / "s.db")
        simulator, stats, network, transport = make_stack(
            num_nodes=9, codec="gzip-model"
        )
        with TraceStore(path).attach(network):
            transport.broadcast(0, "cast", "r" * 64,
                                recipients=list(range(1, 9)))
            network.send(Message(src=1, dst=2, msg_type="uni",
                                 size_bytes=33))
            simulator.run()
        headers, rows = traffic_rows_from_store(path)
        by_type = {row[0]: row for row in rows}
        assert by_type["cast"][1] == stats.messages_by_type["cast"]
        assert by_type["cast"][2] == stats.bytes_by_type["cast"]
        assert by_type["cast"][3] == stats.wire_bytes_by_type["cast"]
        assert by_type["uni"][2] == 33

    @pytest.mark.skipif(
        not duckdb_available(), reason="duckdb not installed"
    )
    def test_duckdb_backend_same_schema(self, tmp_path):
        path = tmp_path / "s.duckdb"
        simulator, stats, network, transport = make_stack()
        with TraceStore(path, backend="duckdb").attach(network) as store:
            network.send(Message(src=0, dst=1, msg_type="a"))
            _, rows = store.sql(ROW_QUERY)
        assert len(rows) == 1

    def test_unknown_backend_rejected(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TraceStore(tmp_path / "s.db", backend="parquet")


# ---------------------------------------------------------------------------
# Sharded ingest: digest invariance, merge equality, barrier flushing.
# ---------------------------------------------------------------------------


class TracingTrainingWorkload(TrainingWorkload):
    """The golden training workload with a per-shard TraceStore attached.

    Module-level (not a closure) so the mp executor can pickle it into
    worker processes; each worker opens ``{store_base}.{shard_id}``.
    """

    def __init__(self, protocol, variant, store_base, codec="identity"):
        super().__init__(protocol, variant, codec)
        self.store_base = store_base

    def __call__(self, scenario):
        store = TraceStore(
            f"{self.store_base}.{scenario.shard_id}",
            shard=scenario.shard_id,
        ).attach_scenario(scenario)
        try:
            return super().__call__(scenario)
        finally:
            store.record_stats(scenario.stats)
            store.close()


def run_unsharded_with_store(protocol, overlay, variant, store_base):
    config = build_scenario_config(
        overlay, variant, rng_mode="perpeer",
    )
    scenario = Scenario(config)
    TracingTrainingWorkload(protocol, variant, store_base)(scenario)
    return digest_of(scenario.stats, scenario.simulator.now)


def run_sharded_with_store(protocol, overlay, variant, shards, executor,
                           control_plane, store_base):
    config = build_scenario_config(
        overlay, variant, rng_mode="perpeer", shards=shards,
        control_plane=control_plane,
    )
    run = ShardedScenario(config, executor=executor).run(
        TracingTrainingWorkload(protocol, variant, str(store_base))
    )
    return run.digest()


#: the sharded fuzz sample from the ISSUE: serial/mp x replicated/directory
STORE_FUZZ = (
    ("pace", "chord", "churn", 2, "serial", "replicated"),
    ("nbagg", "superpeer", "none", 2, "serial", "directory"),
    ("pace", "chord", "none", 2, "mp", "replicated"),
    ("centralized", "superpeer", "churn", 4, "mp", "directory"),
)


class TestShardedStore:
    @pytest.mark.parametrize(
        "protocol,overlay,variant,shards,executor,plane", STORE_FUZZ
    )
    def test_golden_digest_invariant_with_store(
        self, tmp_path, protocol, overlay, variant, shards, executor, plane
    ):
        """Fingerprints byte-identical with and without ingest."""
        bare = run_training_sharded(
            protocol, overlay, variant, shards, executor=executor,
            control_plane=plane,
        ).digest()
        stored = run_sharded_with_store(
            protocol, overlay, variant, shards, executor, plane,
            tmp_path / "shard",
        )
        assert stored == bare
        # And both equal the unsharded per-peer reference.
        stats, now = run_training_perpeer(protocol, overlay, variant)
        assert digest_of(stats, now) == bare

    def test_merge_equals_unsharded_rows(self, tmp_path):
        """K per-shard stores merged == the unsharded store's row set."""
        protocol, overlay, variant = "pace", "chord", "churn"
        unsharded_digest = run_unsharded_with_store(
            protocol, overlay, variant, tmp_path / "flat"
        )
        reference = store_rows(tmp_path / "flat.0")
        assert reference, "unsharded store captured nothing"
        for shards in (2, 4):
            base = tmp_path / f"k{shards}"
            sharded_digest = run_sharded_with_store(
                protocol, overlay, variant, shards, "serial", "replicated",
                base,
            )
            assert sharded_digest == unsharded_digest
            sources = sorted(
                tmp_path.glob(f"k{shards}.*"), key=lambda p: p.suffix
            )
            assert len(sources) == shards
            merged_path = tmp_path / f"merged{shards}.db"
            merge_stores(merged_path, sources).close()
            assert store_rows(merged_path) == reference

    def test_barrier_hook_flushes_per_window(self, tmp_path):
        """Sharded ingest records a window_stats timeline, one delta set
        per barrier, composable back to the merged totals."""
        base = tmp_path / "w"
        run = ShardedScenario(
            build_scenario_config(
                "chord", "churn", rng_mode="perpeer", shards=2,
            ),
            executor="serial",
        ).run(TracingTrainingWorkload("pace", "churn", str(base)))
        assert run.windows > 1
        merged = tmp_path / "w.db"
        merge_stores(merged, sorted(tmp_path.glob("w.*"))).close()
        with TraceStore(merged) as store:
            _, windows = store.sql(
                "SELECT COUNT(DISTINCT win) FROM window_stats"
            )
            _, totals = store.sql(
                "SELECT SUM(delta) FROM window_stats"
                " WHERE family = 'messages_by_type'"
            )
        assert windows[0][0] > 1, "expected per-window stats deltas"
        assert totals[0][0] == run.stats.total_messages

    def test_base_scenario_hooks(self):
        scenario = Scenario(
            build_scenario_config("chord", "none", rng_mode="perpeer")
        )
        assert scenario.shard_id == 0
        assert scenario.num_shards == 1
        assert scenario.add_barrier_hook(lambda window: None) is False
