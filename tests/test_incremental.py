"""Tests for incremental (delta-statistics) refinement updates."""

import pytest

from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.data.delicious import DeliciousGenerator
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import TaggedVector
from repro.p2pclass.nbagg import NBAggClassifier
from repro.p2pclass.pace import PaceClassifier, PaceConfig

from tests.test_classifiers import PEER_DATA, TAGS, TEST_ITEMS, fresh_scenario


def delta_items():
    return [
        TaggedVector(vector=TEST_ITEMS[0][0], tags=TEST_ITEMS[0][1]),
        TaggedVector(vector=TEST_ITEMS[1][0], tags=TEST_ITEMS[1][1]),
    ]


class TestIncrementalProtocol:
    def test_nbagg_advertises_support(self):
        assert NBAggClassifier.supports_incremental
        assert not PaceClassifier.supports_incremental

    def test_unsupported_classifier_raises(self):
        classifier = PaceClassifier(
            fresh_scenario(), PEER_DATA, TAGS, PaceConfig()
        )
        classifier.train()
        with pytest.raises(NotImplementedError):
            classifier.incremental_update(0, delta_items())

    def test_update_before_train_raises(self):
        from repro.errors import NotTrainedError

        classifier = NBAggClassifier(fresh_scenario(), PEER_DATA, TAGS)
        with pytest.raises(NotTrainedError):
            classifier.incremental_update(0, delta_items())


class TestNBAggIncremental:
    def test_delta_matches_full_retrain_statistics(self):
        """Additivity: delta upload == retraining with the enlarged corpus
        (for tags the peer already uploads for)."""
        incremental = NBAggClassifier(fresh_scenario(), PEER_DATA, TAGS)
        incremental.train()
        items = delta_items()
        incremental.incremental_update(0, items)

        enlarged = {k: list(v) for k, v in PEER_DATA.items()}
        enlarged[0] = enlarged[0] + items
        retrained = NBAggClassifier(fresh_scenario(), enlarged, TAGS)
        retrained.train()

        probe = TEST_ITEMS[5][0]
        common = set(incremental._models) & set(retrained._models)
        assert common
        for tag in common:
            a = incremental._models[tag]
            b = retrained._models[tag]
            if a.stats.num_documents == b.stats.num_documents:
                assert a.log_odds(probe) == pytest.approx(b.log_odds(probe))

    def test_delta_upload_is_cheaper_than_retrain(self):
        incremental = NBAggClassifier(fresh_scenario(), PEER_DATA, TAGS)
        incremental.train()
        base = incremental.scenario.stats.total_bytes
        incremental.incremental_update(0, delta_items())
        delta_bytes = incremental.scenario.stats.total_bytes - base
        assert 0 <= delta_bytes < base / 2

    def test_empty_delta_noop(self):
        classifier = NBAggClassifier(fresh_scenario(), PEER_DATA, TAGS)
        classifier.train()
        base = classifier.scenario.stats.total_messages
        classifier.incremental_update(0, [])
        assert classifier.scenario.stats.total_messages == base


class TestRefinementLoopIntegration:
    def make_system(self, algorithm):
        corpus = DeliciousGenerator(
            num_users=5, seed=8, num_tags=6, docs_per_user_range=(12, 16),
            vocabulary_size=400, topic_words_per_tag=30,
            doc_length_range=(30, 60),
        ).generate()
        system = P2PDocTaggerSystem.from_corpus(
            corpus, algorithm=algorithm, train_fraction=0.3
        )
        system.train()
        return system

    def test_loop_uses_incremental_path_for_nbagg(self):
        system = self.make_system("nbagg")
        system.refinement.retrain_every = 2
        for document in system.test_corpus.documents[:2]:
            peer = system.peer_of(document)
            peer.refine(document, sorted(document.tags))
        assert system.refinement.incremental_count == 1
        assert system.refinement.retrain_count == 0

    def test_loop_falls_back_to_retrain_for_local(self):
        system = self.make_system("local")
        system.refinement.retrain_every = 2
        for document in system.test_corpus.documents[:2]:
            peer = system.peer_of(document)
            peer.refine(document, sorted(document.tags))
        assert system.refinement.retrain_count == 1
        assert system.refinement.incremental_count == 0

    def test_incremental_refinement_improves_accuracy(self):
        system = self.make_system("nbagg")
        before = system.evaluate(max_documents=25).metrics.micro_f1
        system.refinement.retrain_every = 10 ** 9
        for document in system.test_corpus.documents[25:45]:
            peer = system.peer_of(document)
            peer.refine(document, sorted(document.tags))
        system.refinement.flush()
        after = system.evaluate(max_documents=25).metrics.micro_f1
        assert after >= before - 0.03
