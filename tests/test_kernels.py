"""Tests for kernel functions and the Gram matrix."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.kernels import (
    gram_matrix,
    kernel_by_name,
    linear_kernel,
    make_polynomial,
    make_rbf,
    polynomial_kernel,
    rbf_kernel,
)
from repro.ml.sparse import SparseVector


def sv(d):
    return SparseVector(d)


class TestLinearKernel:
    def test_matches_dot(self):
        a, b = sv({0: 2.0, 1: 1.0}), sv({0: 1.0, 2: 5.0})
        assert linear_kernel(a, b) == a.dot(b) == 2.0


class TestRbfKernel:
    def test_self_similarity_is_one(self):
        a = sv({0: 1.0, 3: 2.0})
        assert rbf_kernel(a, a) == pytest.approx(1.0)

    def test_decays_with_distance(self):
        origin = sv({0: 0.0})
        near = sv({0: 0.5})
        far = sv({0: 5.0})
        assert rbf_kernel(origin, near) > rbf_kernel(origin, far)

    def test_gamma_controls_width(self):
        a, b = sv({0: 1.0}), sv({0: 2.0})
        sharp = make_rbf(5.0)
        wide = make_rbf(0.1)
        assert sharp(a, b) < wide(a, b)

    def test_explicit_value(self):
        a, b = sv({0: 1.0}), sv({0: 2.0})
        assert rbf_kernel(a, b, gamma=1.0) == pytest.approx(math.exp(-1.0))


class TestPolynomialKernel:
    def test_explicit_value(self):
        a, b = sv({0: 2.0}), sv({0: 3.0})
        assert polynomial_kernel(a, b, degree=2, coef0=1.0) == pytest.approx(49.0)

    def test_factory(self):
        kernel = make_polynomial(3, coef0=0.0)
        assert kernel(sv({0: 2.0}), sv({0: 1.0})) == pytest.approx(8.0)


class TestKernelByName:
    def test_resolution(self):
        a, b = sv({0: 1.0}), sv({0: 2.0})
        assert kernel_by_name("linear")(a, b) == 2.0
        assert kernel_by_name("rbf", gamma=1.0)(a, b) == pytest.approx(
            math.exp(-1.0)
        )
        assert kernel_by_name("poly", degree=2)(a, b) == pytest.approx(9.0)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            kernel_by_name("sigmoid")


class TestGramMatrix:
    def test_symmetry_and_diagonal(self):
        vectors = [sv({0: 1.0}), sv({1: 2.0}), sv({0: 1.0, 1: 1.0})]
        gram = gram_matrix(vectors, make_rbf(0.5))
        np.testing.assert_allclose(gram, gram.T)
        np.testing.assert_allclose(np.diag(gram), 1.0)

    def test_rbf_gram_positive_semidefinite(self):
        rng = np.random.default_rng(0)
        vectors = [
            sv({i: float(rng.normal()) for i in range(4)}) for _ in range(8)
        ]
        gram = gram_matrix(vectors, make_rbf(0.3))
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8


entries = st.dictionaries(
    st.integers(min_value=0, max_value=30),
    st.floats(min_value=-5, max_value=5).filter(lambda x: abs(x) > 1e-3),
    max_size=6,
)


@given(entries, entries)
def test_rbf_symmetric_and_bounded(a, b):
    va, vb = sv(a), sv(b)
    value = rbf_kernel(va, vb)
    assert 0.0 < value <= 1.0 + 1e-12
    assert value == pytest.approx(rbf_kernel(vb, va))


@given(entries, entries)
def test_linear_kernel_bilinear_in_scale(a, b):
    va, vb = sv(a), sv(b)
    assert linear_kernel(va.scale(2.0), vb) == pytest.approx(
        2.0 * linear_kernel(va, vb), rel=1e-9, abs=1e-9
    )
