"""Tests for the Pastry overlay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OverlayError
from repro.overlay.idspace import key_id_for
from repro.overlay.pastry import PastryOverlay, _digits, _shared_prefix_length
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig


def pastry(n, stabilized=True):
    overlay = PastryOverlay()
    for address in range(n):
        overlay.join(address)
    if stabilized:
        overlay.stabilize()
    return overlay


class TestDigits:
    def test_digit_expansion_roundtrip(self):
        value = 0x123456789ABCDEF0
        digits = _digits(value, 4)
        assert len(digits) == 16
        rebuilt = 0
        for digit in digits:
            rebuilt = (rebuilt << 4) | digit
        assert rebuilt == value

    def test_shared_prefix(self):
        assert _shared_prefix_length([1, 2, 3], [1, 2, 4]) == 2
        assert _shared_prefix_length([1], [2]) == 0
        assert _shared_prefix_length([5, 5], [5, 5]) == 2


class TestPastryRouting:
    def test_routes_to_true_owner(self):
        overlay = pastry(64)
        for i in range(40):
            key = key_id_for(f"key{i}")
            result = overlay.route(i % 64, key)
            assert result.success
            assert result.owner == overlay.true_owner(key)

    def test_hops_logarithmic(self):
        overlay = pastry(128)
        hops = [
            overlay.route(i % 128, key_id_for(f"h{i}")).hops for i in range(50)
        ]
        assert max(hops) <= 8

    def test_single_node(self):
        overlay = pastry(1)
        result = overlay.route(0, key_id_for("x"))
        assert result.owner == 0

    def test_all_origins_agree(self):
        overlay = pastry(32)
        key = key_id_for("consensus")
        owners = {overlay.route(origin, key).owner for origin in range(32)}
        assert len(owners) == 1

    def test_nonmember_raises(self):
        with pytest.raises(OverlayError):
            pastry(4).route(99, 1)

    def test_rejoin_idempotent(self):
        overlay = pastry(8)
        overlay.join(3)
        assert len(overlay) == 8


class TestPastryChurn:
    def test_leave_reassigns_ownership(self):
        overlay = pastry(32)
        key = key_id_for("churny-key")
        owner = overlay.route(0, key).owner
        overlay.leave(owner)
        overlay.stabilize()
        origin = 0 if owner != 0 else 1
        new_owner = overlay.route(origin, key).owner
        assert new_owner is not None and new_owner != owner
        assert new_owner == overlay.true_owner(key)

    def test_staleness_lifecycle(self):
        overlay = pastry(32)
        assert overlay.staleness() == 0.0
        for address in range(8):
            overlay.leave(address)
        assert overlay.staleness() > 0.0
        overlay.stabilize()
        assert overlay.staleness() == 0.0

    def test_routing_survives_crashes_after_stabilize(self):
        overlay = pastry(64)
        for address in range(0, 64, 4):
            overlay.leave(address)
        overlay.stabilize()
        for i in range(20):
            origin = 1 + (i % 47)
            if origin not in overlay.members():
                origin = min(overlay.members())
            result = overlay.route(origin, key_id_for(f"s{i}"))
            assert result.success

    def test_neighbors_live_only(self):
        overlay = pastry(16)
        overlay.leave(5)
        for address in overlay.members():
            assert 5 not in overlay.neighbors(address)


class TestPastryConfig:
    def test_invalid_parameters(self):
        with pytest.raises(OverlayError):
            PastryOverlay(bits_per_digit=7)
        with pytest.raises(OverlayError):
            PastryOverlay(leaf_set_size=3)
        with pytest.raises(OverlayError):
            PastryOverlay(leaf_set_size=0)

    def test_different_digit_bases(self):
        for bits in (1, 2, 8):
            overlay = PastryOverlay(bits_per_digit=bits)
            for address in range(16):
                overlay.join(address)
            overlay.stabilize()
            key = key_id_for("base-test")
            assert overlay.route(0, key).owner == overlay.true_owner(key)

    def test_scenario_integration(self):
        scenario = Scenario(
            ScenarioConfig(
                num_peers=12, overlay="pastry", shard=ShardSpec(num_peers=12)
            )
        )
        assert scenario.overlay.name == "pastry"
        assert len(scenario.overlay.members()) == 12


@settings(max_examples=25)
@given(st.integers(min_value=2, max_value=30), st.text(min_size=1, max_size=10))
def test_pastry_ownership_consistent(n, key_name):
    overlay = pastry(n)
    key = key_id_for(key_name)
    owners = {
        overlay.route(origin, key).owner
        for origin in range(0, n, max(1, n // 4))
    }
    assert owners == {overlay.true_owner(key)}
