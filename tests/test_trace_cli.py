"""Tests for message tracing and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import PhysicalNetwork
from repro.sim.trace import MessageTrace


def make_network():
    simulator = Simulator(seed=0)
    network = PhysicalNetwork(simulator)
    network.register(1, lambda m: None)
    network.register(2, lambda m: None)
    network.register(3, lambda m: None)
    return simulator, network


class TestMessageTrace:
    def test_records_sent_messages(self):
        simulator, network = make_network()
        with MessageTrace().attach(network) as trace:
            network.send(Message(src=1, dst=2, msg_type="a", payload="xx"))
            network.send(Message(src=2, dst=3, msg_type="b"))
            simulator.run()
        assert len(trace) == 2
        assert trace.records()[0].msg_type == "a"
        assert trace.records()[0].size_bytes == 42

    def test_detach_restores_send(self):
        simulator, network = make_network()
        trace = MessageTrace().attach(network)
        trace.detach()
        network.send(Message(src=1, dst=2, msg_type="a"))
        assert len(trace) == 0

    def test_double_attach_rejected(self):
        _, network = make_network()
        trace = MessageTrace().attach(network)
        with pytest.raises(RuntimeError):
            trace.attach(network)
        trace.detach()

    def test_filters(self):
        simulator, network = make_network()
        trace = MessageTrace().attach(network)
        network.send(Message(src=1, dst=2, msg_type="a"))
        network.send(Message(src=1, dst=3, msg_type="b"))
        network.send(Message(src=2, dst=3, msg_type="a"))
        trace.detach()
        assert len(trace.records(msg_type="a")) == 2
        assert len(trace.records(src=1)) == 2
        assert len(trace.records(dst=3)) == 2
        assert len(trace.records(msg_type="a", src=2)) == 1

    def test_time_window_filter(self):
        simulator, network = make_network()
        trace = MessageTrace().attach(network)
        network.send(Message(src=1, dst=2, msg_type="early"))
        simulator.run()
        simulator.schedule(10.0, lambda: network.send(
            Message(src=1, dst=2, msg_type="late")
        ))
        simulator.run()
        trace.detach()
        assert [r.msg_type for r in trace.records(since=5.0)] == ["late"]

    def test_timeline_buckets(self):
        simulator, network = make_network()
        trace = MessageTrace().attach(network)
        network.send(Message(src=1, dst=2, msg_type="a"))
        network.send(Message(src=1, dst=2, msg_type="a"))
        trace.detach()
        timeline = trace.timeline(bucket_seconds=1.0)
        assert timeline[0][1] == 2  # both at t=0
        with pytest.raises(ValueError):
            trace.timeline(bucket_seconds=0)

    def test_conversation_matrix(self):
        simulator, network = make_network()
        trace = MessageTrace().attach(network)
        network.send(Message(src=1, dst=2, msg_type="a"))
        network.send(Message(src=1, dst=2, msg_type="a"))
        network.send(Message(src=2, dst=1, msg_type="a"))
        trace.detach()
        matrix = trace.conversation_matrix()
        assert matrix[(1, 2)] == 2
        assert matrix[(2, 1)] == 1

    def test_capacity_bound(self):
        simulator, network = make_network()
        trace = MessageTrace(capacity=2).attach(network)
        for _ in range(5):
            network.send(Message(src=1, dst=2, msg_type="a"))
        trace.detach()
        assert len(trace) == 2

    def test_jsonl_roundtrip(self, tmp_path):
        simulator, network = make_network()
        trace = MessageTrace().attach(network)
        network.send(Message(src=1, dst=2, msg_type="a", payload="xyz"))
        trace.detach()
        path = tmp_path / "trace.jsonl"
        assert trace.export_jsonl(path) == 1
        loaded = MessageTrace.load_jsonl(path)
        assert loaded.records()[0] == trace.records()[0]


SMALL = ["--users", "5", "--docs", "14", "--tags", "6", "--seed", "1"]


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--algorithm", "local"])
        assert args.algorithm == "local"

    def test_corpus_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "c.jsonl")
        code = main(["corpus", path, "--users", "3", "--docs", "5"])
        assert code == 0
        assert "wrote 15 documents" in capsys.readouterr().out
        code = main(
            ["run", "--algorithm", "local", "--load", path, "--max-eval", "10"]
        )
        assert code == 0

    def test_run_local(self, capsys):
        code = main(["run", "--algorithm", "local", "--max-eval", "10"] + SMALL)
        assert code == 0
        out = capsys.readouterr().out
        assert "[local]" in out and "microF1" in out

    def test_run_with_tuned_thresholds(self, capsys):
        code = main(
            ["run", "--algorithm", "local", "--tune-thresholds",
             "--max-eval", "10"] + SMALL
        )
        assert code == 0

    def test_compare_subset(self, capsys):
        code = main(
            ["compare", "--algorithms", "local", "popularity",
             "--max-eval", "10"] + SMALL
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "local" in out and "popularity" in out

    def test_suggest(self, capsys):
        code = main(
            ["suggest", "--algorithm", "local", "--count", "2"] + SMALL
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "doc" in out and "true:" in out

    def test_overlay_chord(self, capsys):
        code = main(["overlay", "--type", "chord", "--size", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chord" in out and "success 100/100" in out

    def test_overlay_kademlia_and_unstructured(self, capsys):
        assert main(["overlay", "--type", "kademlia", "--size", "16"]) == 0
        assert main(["overlay", "--type", "unstructured", "--size", "16"]) == 0
