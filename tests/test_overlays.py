"""Tests for Chord, Kademlia, unstructured overlays, and super-peer election."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OverlayError
from repro.overlay.base import RouteResult
from repro.overlay.chord import ChordOverlay
from repro.overlay.idspace import (
    ID_SPACE,
    in_interval,
    key_id_for,
    node_id_for,
    ring_distance,
    xor_distance,
)
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.superpeer import SuperPeerDirectory, SuperPeerOverlay
from repro.overlay.unstructured import UnstructuredOverlay


class TestIdSpace:
    def test_ids_deterministic(self):
        assert node_id_for(5) == node_id_for(5)
        assert key_id_for("music") == key_id_for("music")

    def test_node_and_key_spaces_disjointish(self):
        assert node_id_for(5) != key_id_for("5")

    def test_ids_in_range(self):
        for i in range(50):
            assert 0 <= node_id_for(i) < ID_SPACE

    def test_ring_distance(self):
        assert ring_distance(5, 10) == 5
        assert ring_distance(10, 5) == ID_SPACE - 5
        assert ring_distance(7, 7) == 0

    def test_xor_distance_metric(self):
        assert xor_distance(5, 5) == 0
        assert xor_distance(1, 2) == xor_distance(2, 1)

    def test_in_interval_simple(self):
        assert in_interval(5, 1, 10)
        assert not in_interval(1, 1, 10)
        assert in_interval(10, 1, 10)
        assert not in_interval(10, 1, 10, inclusive_right=False)

    def test_in_interval_wrapping(self):
        assert in_interval(1, 100, 5)
        assert in_interval(101, 100, 5)
        assert not in_interval(50, 100, 5)

    def test_in_interval_degenerate_full_circle(self):
        assert in_interval(7, 3, 3)


def chord(n, stabilized=True):
    overlay = ChordOverlay()
    for address in range(n):
        overlay.join(address)
    if stabilized:
        overlay.stabilize()
    return overlay


class TestChord:
    def test_route_finds_true_owner(self):
        overlay = chord(32)
        for key_source in ("music", "linux", "travel", "a", "zz"):
            key = key_id_for(key_source)
            expected = overlay._true_successor_address(key)
            for origin in (0, 7, 31):
                result = overlay.route(origin, key)
                assert result.success
                assert result.owner == expected

    def test_routing_hops_logarithmic(self):
        overlay = chord(64)
        hops = [
            overlay.route(0, key_id_for(f"key{i}")).hops for i in range(50)
        ]
        assert max(hops) <= 16  # ~log2(64)=6 expected; generous bound

    def test_single_node_owns_everything(self):
        overlay = chord(1)
        result = overlay.route(0, key_id_for("anything"))
        assert result.owner == 0
        assert result.hops == 0

    def test_rejoin_idempotent(self):
        overlay = chord(4)
        overlay.join(2)
        assert len(overlay) == 4

    def test_route_from_nonmember_raises(self):
        overlay = chord(4)
        with pytest.raises(OverlayError):
            overlay.route(99, 123)

    def test_leave_reassigns_ownership(self):
        overlay = chord(16)
        key = key_id_for("some-tag")
        owner = overlay.route(0, key).owner
        overlay.leave(owner)
        overlay.stabilize()
        origin = 0 if owner != 0 else 1
        new_owner = overlay.route(origin, key).owner
        assert new_owner is not None
        assert new_owner != owner

    def test_staleness_after_crash(self):
        overlay = chord(32)
        assert overlay.staleness() == 0.0
        for address in range(8):
            overlay.leave(address)
        assert overlay.staleness() > 0.0
        overlay.stabilize()
        assert overlay.staleness() == 0.0

    def test_routing_survives_moderate_churn_after_stabilize(self):
        overlay = chord(32)
        for address in (3, 9, 17, 25):
            overlay.leave(address)
        overlay.stabilize()
        result = overlay.route(0, key_id_for("post-churn"))
        assert result.success

    def test_neighbors_live_only(self):
        overlay = chord(16)
        overlay.leave(5)
        for address in overlay.members():
            assert 5 not in overlay.neighbors(address)


class TestKademlia:
    def make(self, n, seed=0):
        overlay = KademliaOverlay(seed=seed)
        for address in range(n):
            overlay.join(address)
        overlay.stabilize()
        return overlay

    def test_lookup_converges_to_owner(self):
        overlay = self.make(32)
        found = 0
        for i in range(20):
            key = key_id_for(f"key{i}")
            result = overlay.route(0, key)
            if result.success and result.owner == overlay.true_owner(key):
                found += 1
        assert found >= 16  # iterative lookup over sampled buckets

    def test_single_node(self):
        overlay = KademliaOverlay()
        overlay.join(0)
        result = overlay.route(0, key_id_for("x"))
        assert result.owner == 0

    def test_leave_and_staleness(self):
        overlay = self.make(32)
        for address in range(8):
            overlay.leave(address)
        assert overlay.staleness() > 0.0
        overlay.stabilize()
        assert overlay.staleness() == 0.0

    def test_dead_contacts_charge_hops(self):
        overlay = self.make(16, seed=3)
        for address in range(4):
            overlay.leave(address)
        # Without refresh, lookups may touch dead contacts; hops still count.
        result = overlay.route(8, key_id_for("churny"))
        assert result.hops >= 1

    def test_nonmember_raises(self):
        overlay = self.make(4)
        with pytest.raises(OverlayError):
            overlay.route(77, 1)

    def test_neighbors_nonempty_after_stabilize(self):
        overlay = self.make(16)
        for address in overlay.members():
            assert overlay.neighbors(address)


class TestUnstructured:
    def make(self, n, degree=4, seed=0):
        overlay = UnstructuredOverlay(degree=degree, seed=seed)
        for address in range(n):
            overlay.join(address)
        return overlay

    def test_join_links_degree_nodes(self):
        overlay = self.make(20)
        degrees = [len(overlay.neighbors(a)) for a in overlay.members()]
        assert min(degrees) >= 1
        assert sum(degrees) >= 2 * 4 * (20 - 5)  # rough lower bound

    def test_flood_reaches_connected_graph(self):
        overlay = self.make(30)
        result = overlay.flood(0, ttl=10)
        assert result.coverage(30) == pytest.approx(1.0)
        assert result.messages > 0

    def test_flood_ttl_limits_reach(self):
        overlay = self.make(50, degree=2, seed=1)
        shallow = overlay.flood(0, ttl=1)
        deep = overlay.flood(0, ttl=10)
        assert len(shallow.reached) <= len(deep.reached)

    def test_gossip_high_coverage(self):
        overlay = self.make(40, degree=6)
        result = overlay.gossip(0, fanout=3, rounds=15)
        assert result.coverage(40) >= 0.9

    def test_leave_removes_edges(self):
        overlay = self.make(10)
        victim_neighbors = overlay.neighbors(3)
        overlay.leave(3)
        for neighbor in victim_neighbors:
            assert 3 not in overlay.neighbors(neighbor)

    def test_repair_restores_degree(self):
        overlay = self.make(20, degree=4)
        for address in range(8):
            overlay.leave(address)
        added = overlay.repair()
        for address in overlay.members():
            assert len(overlay.neighbors(address)) >= min(4, len(overlay) - 1)
        assert added >= 0

    def test_route_greedy_walk(self):
        overlay = self.make(20, degree=6)
        key = node_id_for(13)
        result = overlay.route(0, key)
        # Greedy walks can fail; when they succeed the owner matches.
        if result.success:
            assert result.owner == 13

    def test_invalid_degree(self):
        with pytest.raises(OverlayError):
            UnstructuredOverlay(degree=0)


class TestSuperPeers:
    def test_deterministic_location(self):
        overlay = chord(32)
        directory = SuperPeerDirectory(overlay, num_regions=4)
        owners_a = directory.owners(0, "music")
        owners_b = directory.owners(17, "music")
        assert owners_a == owners_b  # any origin resolves the same super-peers

    def test_regions_cover_all(self):
        overlay = chord(32)
        directory = SuperPeerDirectory(overlay, num_regions=4)
        owners = directory.owners(0, "travel")
        assert set(owners) == {0, 1, 2, 3}
        assert all(owner is not None for owner in owners.values())

    def test_different_tags_usually_different_superpeers(self):
        overlay = chord(64)
        directory = SuperPeerDirectory(overlay, num_regions=1)
        owners = {
            tag: directory.owners(0, tag)[0]
            for tag in ("music", "travel", "linux", "science", "art")
        }
        assert len(set(owners.values())) >= 2

    def test_region_of_balanced(self):
        directory = SuperPeerDirectory(chord(8), num_regions=4)
        regions = [directory.region_of(address) for address in range(100)]
        assert set(regions) == {0, 1, 2, 3}

    def test_churned_superpeer_responsibility_migrates(self):
        overlay = chord(32)
        directory = SuperPeerDirectory(overlay, num_regions=1)
        old = directory.owners(0, "music")[0]
        overlay.leave(old)
        overlay.stabilize()
        origin = 0 if old != 0 else 1
        new = directory.owners(origin, "music")[0]
        assert new is not None and new != old

    def test_invalid_regions(self):
        with pytest.raises(OverlayError):
            SuperPeerDirectory(chord(4), num_regions=0)


def superpeer(n, ratio=4):
    overlay = SuperPeerOverlay(ratio=ratio)
    for address in range(n):
        overlay.join(address)
    return overlay


class TestSuperPeerOverlay:
    def test_registered_in_factory(self):
        from repro.overlay import make_overlay, overlay_names

        assert "superpeer" in overlay_names()
        overlay = make_overlay("superpeer", seed=1, degree=4)
        assert isinstance(overlay, SuperPeerOverlay)

    def test_election_is_deterministic_and_join_order_independent(self):
        a = superpeer(30)
        b = SuperPeerOverlay()
        for address in reversed(range(30)):
            b.join(address)
        assert a.super_peers() == b.super_peers()
        assert sorted(a.members()) == sorted(b.members())

    def test_core_is_a_strict_subset_at_scale(self):
        overlay = superpeer(200)
        supers = set(overlay.super_peers())
        assert 0 < len(supers) < 200
        # roughly 1/ratio of the population is elected
        assert 200 // 16 <= len(supers) <= 200 // 2

    def test_all_origins_agree_on_owner(self):
        overlay = superpeer(40)
        key = key_id_for("sp|music|0")
        owners = {overlay.route(origin, key).owner for origin in range(40)}
        assert len(owners) == 1
        assert owners.pop() in set(overlay.super_peers())

    def test_routes_are_at_most_two_hops(self):
        overlay = superpeer(60)
        for origin in range(60):
            route = overlay.route(origin, key_id_for(f"k{origin}"))
            assert route.success
            assert 0 <= route.hops <= 2
            assert origin not in route.path

    def test_leaf_routes_through_its_attachment(self):
        overlay = superpeer(60)
        supers = set(overlay.super_peers())
        leaves = [a for a in overlay.members() if a not in supers]
        assert leaves, "expected at least one leaf at N=60"
        leaf = leaves[0]
        attach = overlay.attachment(leaf)
        assert attach in supers
        route = overlay.route(leaf, key_id_for("faraway"))
        if route.hops == 2:
            assert route.path[0] == attach

    def test_neighbors_two_tier_shape(self):
        overlay = superpeer(60)
        supers = set(overlay.super_peers())
        for address in overlay.members():
            links = overlay.neighbors(address)
            assert address not in links
            if address not in supers:
                assert len(links) == 1 and links[0] in supers
            else:
                assert set(overlay.super_peers()) - {address} <= set(links)

    def test_empty_core_degrades_to_flat_ring(self):
        overlay = superpeer(20)
        for address in list(overlay.super_peers()):
            overlay.leave(address)
        assert overlay.super_peers() == []
        members = overlay.members()
        key = key_id_for("still-works")
        owners = {overlay.route(origin, key).owner for origin in members}
        assert len(owners) == 1 and owners.pop() in set(members)

    def test_churned_superpeer_responsibility_migrates(self):
        overlay = superpeer(40)
        key = key_id_for("migrate-me")
        old = overlay.route(0, key).owner
        overlay.leave(old)
        origin = 0 if old != 0 else 1
        new = overlay.route(origin, key).owner
        assert new != old and new in set(overlay.members())
        overlay.join(old)
        assert overlay.route(origin, key).owner == old

    def test_non_member_rejected(self):
        overlay = superpeer(8)
        with pytest.raises(OverlayError):
            overlay.route(99, 5)
        with pytest.raises(OverlayError):
            SuperPeerOverlay(ratio=0)


@settings(max_examples=30)
@given(st.integers(min_value=2, max_value=40), st.text(min_size=1, max_size=12))
def test_chord_ownership_is_consistent(n, key_name):
    """Property: all origins agree on the owner of any key (stabilized ring)."""
    overlay = chord(n)
    key = key_id_for(key_name)
    owners = {overlay.route(origin, key).owner for origin in range(0, n, max(1, n // 5))}
    assert len(owners) == 1
