"""Failure injection: packet loss, crashed super-peers, offline servers.

These tests verify the systems *degrade* rather than break when the network
misbehaves — the fault-tolerance story of paper §1.1.
"""

import pytest

from repro.baselines.centralized import CentralizedTagger
from repro.ml.sparse import SparseVector
from repro.p2pclass.cempar import CemparClassifier, CemparConfig
from repro.p2pclass.nbagg import NBAggClassifier
from repro.p2pclass.pace import PaceClassifier, PaceConfig
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig

from tests.test_classifiers import NUM_PEERS, PEER_DATA, TAGS, TEST_ITEMS, evaluate


def lossy_scenario(drop_probability: float, seed: int = 0) -> Scenario:
    return Scenario(
        ScenarioConfig(
            num_peers=NUM_PEERS,
            shard=ShardSpec(num_peers=NUM_PEERS),
            drop_probability=drop_probability,
            seed=seed,
        )
    )


class TestPacketLoss:
    def test_pace_trains_through_moderate_loss(self):
        classifier = PaceClassifier(
            lossy_scenario(0.2), PEER_DATA, TAGS, PaceConfig()
        )
        classifier.train()
        # Some bundles were dropped, but every peer can still predict.
        assert classifier.scenario.stats.counters["messages_dropped"] > 0
        f1 = evaluate(classifier, TEST_ITEMS)
        assert f1 > 0.25

    def test_cempar_trains_through_moderate_loss(self):
        classifier = CemparClassifier(
            lossy_scenario(0.2, seed=1), PEER_DATA, TAGS, CemparConfig()
        )
        classifier.train()
        stats = classifier.scenario.stats
        assert stats.counters["messages_dropped"] > 0
        assert stats.counters["cempar_upload_lost"] > 0
        assert evaluate(classifier, TEST_ITEMS) > 0.25

    def test_total_loss_leaves_local_models_only(self):
        """With 100% loss nothing propagates; PACE falls back to each peer's
        own bundle (self-indexed without the network)."""
        classifier = PaceClassifier(
            lossy_scenario(1.0), PEER_DATA, TAGS, PaceConfig()
        )
        classifier.train()
        for address in range(NUM_PEERS):
            assert classifier.models_indexed_at(address) == 1  # self only
        scores = classifier.predict_scores(0, TEST_ITEMS[0][0])
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_loss_degrades_but_never_errors(self):
        f1_by_loss = {}
        for loss in (0.0, 0.5):
            classifier = NBAggClassifier(
                lossy_scenario(loss, seed=2), PEER_DATA, TAGS
            )
            classifier.train()
            f1_by_loss[loss] = evaluate(classifier, TEST_ITEMS)
        assert f1_by_loss[0.5] <= f1_by_loss[0.0] + 0.05


class TestCrashes:
    def test_cempar_superpeer_crash_between_train_and_query(self):
        scenario = Scenario(
            ScenarioConfig(
                num_peers=NUM_PEERS, shard=ShardSpec(num_peers=NUM_PEERS)
            )
        )
        classifier = CemparClassifier(scenario, PEER_DATA, TAGS, CemparConfig())
        classifier.train()
        # Crash a super-peer holding regional models.
        holder = next(iter(classifier._model_holder.values()))
        scenario.overlay.leave(holder)
        scenario.network.set_down(holder)
        scenario.overlay.stabilize()
        origin = 0 if holder != 0 else 1
        scores = classifier.predict_scores(origin, TEST_ITEMS[0][0])
        # Tags held elsewhere still answer; the crashed region abstains.
        assert set(scores) == set(TAGS)
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_central_server_down_fails_closed(self):
        scenario = Scenario(
            ScenarioConfig(
                num_peers=NUM_PEERS, shard=ShardSpec(num_peers=NUM_PEERS)
            )
        )
        classifier = CentralizedTagger(scenario, PEER_DATA, TAGS)
        classifier.train()
        scenario.network.set_down(0)  # the server
        scores = classifier.predict_scores(3, TEST_ITEMS[0][0])
        assert all(s == 0.0 for s in scores.values())
        assert scenario.stats.counters["central_query_lost"] == 1

    def test_all_but_one_peer_crashes(self):
        scenario = Scenario(
            ScenarioConfig(
                num_peers=NUM_PEERS, shard=ShardSpec(num_peers=NUM_PEERS)
            )
        )
        classifier = PaceClassifier(scenario, PEER_DATA, TAGS, PaceConfig())
        classifier.train()
        for address in range(1, NUM_PEERS):
            scenario.overlay.leave(address)
            scenario.network.set_down(address)
        # The survivor keeps its full index and predicts locally.
        scores = classifier.predict_scores(0, TEST_ITEMS[0][0])
        assert any(s > 0.0 for s in scores.values())
