"""Tests for the experiment harness and table reporting."""

import pytest

from repro.bench.harness import (
    ExperimentSetting,
    build_system,
    run_experiment,
    standard_corpus,
)
from repro.bench.reporting import format_cell, format_row, format_table


class TestStandardCorpus:
    def test_shape(self):
        corpus = standard_corpus(num_users=4, seed=0, docs_per_user=10)
        assert len(corpus) == 40
        assert len(corpus.owners) == 4

    def test_reproducible(self):
        a = standard_corpus(num_users=3, seed=5)
        b = standard_corpus(num_users=3, seed=5)
        assert [d.text for d in a] == [d.text for d in b]

    def test_interest_concentration_passthrough(self):
        iid = standard_corpus(num_users=4, seed=0, interest_concentration=50.0)
        skew = standard_corpus(num_users=4, seed=0, interest_concentration=0.05)
        assert [d.tags for d in iid] != [d.tags for d in skew]


class TestExperimentSetting:
    def test_label(self):
        setting = ExperimentSetting(algorithm="pace", num_users=7, seed=3)
        label = setting.label()
        assert "pace" in label and "N=7" in label and "seed=3" in label

    def test_defaults(self):
        setting = ExperimentSetting()
        assert setting.train_fraction == 0.2  # the paper's protocol


class TestRunExperiment:
    def test_end_to_end_local(self):
        result = run_experiment(
            ExperimentSetting(
                algorithm="local", num_users=4, docs_per_user=12,
                train_fraction=0.3, max_eval_documents=15,
            )
        )
        assert 0.0 <= result.micro_f1 <= 1.0
        assert 0.0 <= result.macro_f1 <= 1.0
        assert 0.0 <= result.hamming <= 1.0
        assert result.total_bytes == 0  # local-only never communicates
        assert result.report.algorithm == "local"

    def test_deterministic(self):
        setting = ExperimentSetting(
            algorithm="popularity", num_users=4, docs_per_user=10,
            max_eval_documents=10,
        )
        a = run_experiment(setting)
        b = run_experiment(setting)
        assert a.micro_f1 == b.micro_f1
        assert a.total_bytes == b.total_bytes

    def test_build_system_without_training(self):
        system = build_system(
            ExperimentSetting(algorithm="local", num_users=4, docs_per_user=10)
        )
        assert not system.classifier.trained

    def test_algorithm_options_reach_classifier(self):
        system = build_system(
            ExperimentSetting(
                algorithm="pace", num_users=4, docs_per_user=10,
                algorithm_options={"top_k": 3},
            )
        )
        assert system.classifier.config.top_k == 3

    def test_overlay_option(self):
        system = build_system(
            ExperimentSetting(
                algorithm="local", num_users=4, docs_per_user=10,
                overlay="pastry",
            )
        )
        assert system.scenario.overlay.name == "pastry"


class TestReporting:
    def test_format_cell(self):
        assert format_cell(0.123456) == "0.123"
        assert format_cell(42) == "42"
        assert format_cell("text") == "text"

    def test_format_row_widths(self):
        row = format_row(["ab", 3], [5, 4])
        assert row.startswith("ab   ")
        assert row.endswith("3")

    def test_format_table_structure(self):
        table = format_table(
            "Title", ["col1", "column2"], [["a", 1], ["bb", 22]]
        )
        lines = table.splitlines()
        assert lines[1] == "Title"
        assert "col1" in lines[3]
        assert "bb" in lines[5]

    def test_format_table_widens_for_long_cells(self):
        table = format_table("T", ["c"], [["very-long-cell-content"]])
        assert "very-long-cell-content" in table

    def test_empty_rows(self):
        table = format_table("Empty", ["a", "b"], [])
        assert "Empty" in table and "a" in table
