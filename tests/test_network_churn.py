"""Tests for the physical network model and churn machinery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.churn import (
    ChurnDriver,
    ExponentialChurn,
    NoChurn,
    ParetoChurn,
    WeibullChurn,
)
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.network import LatencyModel, PhysicalNetwork
from repro.sim.node import SimNode


def make_network(seed=0, **latency_kwargs):
    sim = Simulator(seed=seed)
    network = PhysicalNetwork(sim, latency=LatencyModel(**latency_kwargs))
    return sim, network


class TestPhysicalNetwork:
    def test_delivery(self):
        sim, network = make_network()
        received = []
        network.register(1, lambda m: None)
        network.register(2, received.append)
        assert network.send(Message(src=1, dst=2, msg_type="ping", payload="x"))
        sim.run()
        assert len(received) == 1
        assert received[0].payload == "x"

    def test_latency_positive(self):
        sim, network = make_network()
        network.register(1, lambda m: None)
        arrival = []
        network.register(2, lambda m: arrival.append(sim.now))
        network.send(Message(src=1, dst=2, msg_type="ping"))
        sim.run()
        assert arrival[0] > 0

    def test_transmission_delay_scales_with_size(self):
        sim, network = make_network(jitter_fraction=0.0, bandwidth=1000.0)
        network.register(1, lambda m: None)
        arrivals = {}
        network.register(2, lambda m: arrivals.setdefault(m.msg_type, sim.now))
        network.send(Message(src=1, dst=2, msg_type="small", size_bytes=10))
        sim.run()
        sim2, network2 = make_network(jitter_fraction=0.0, bandwidth=1000.0)
        network2.register(1, lambda m: None)
        arrivals2 = {}
        network2.register(2, lambda m: arrivals2.setdefault(m.msg_type, sim2.now))
        network2.send(Message(src=1, dst=2, msg_type="big", size_bytes=100_000))
        sim2.run()
        assert arrivals2["big"] > arrivals["small"]

    def test_loopback_rejected(self):
        _, network = make_network()
        network.register(1, lambda m: None)
        with pytest.raises(SimulationError):
            network.send(Message(src=1, dst=1, msg_type="self"))

    def test_down_source_drops(self):
        sim, network = make_network()
        network.register(1, lambda m: None)
        network.register(2, lambda m: None)
        network.set_down(1)
        assert not network.send(Message(src=1, dst=2, msg_type="ping"))
        assert network.stats.total_messages == 0

    def test_down_destination_counted_but_lost(self):
        sim, network = make_network()
        received = []
        network.register(1, lambda m: None)
        network.register(2, received.append)
        network.set_down(2)
        assert network.send(Message(src=1, dst=2, msg_type="ping"))
        sim.run()
        assert received == []
        assert network.stats.total_messages == 1
        assert network.stats.counters["messages_undeliverable"] == 1

    def test_recovery_after_down(self):
        sim, network = make_network()
        received = []
        network.register(1, lambda m: None)
        network.register(2, received.append)
        network.set_down(2)
        network.set_down(2, False)
        network.send(Message(src=1, dst=2, msg_type="ping"))
        sim.run()
        assert len(received) == 1

    def test_drop_probability_one_drops_everything(self):
        sim, network = make_network(drop_probability=1.0)
        received = []
        network.register(1, lambda m: None)
        network.register(2, received.append)
        for _ in range(10):
            network.send(Message(src=1, dst=2, msg_type="ping"))
        sim.run()
        assert received == []
        assert network.stats.counters["messages_dropped"] == 10

    def test_pair_latency_deterministic(self):
        _, n1 = make_network()
        _, n2 = make_network()
        assert n1._pair_base_latency(3, 9) == n2._pair_base_latency(9, 3)

    def test_live_nodes(self):
        _, network = make_network()
        network.register(1, lambda m: None)
        network.register(2, lambda m: None)
        network.set_down(2)
        assert network.live_nodes() == {1}


class TestSimNode:
    def test_send_and_dispatch(self):
        sim, network = make_network()
        a = SimNode(1, network)
        b = SimNode(2, network)
        got = []
        b.on("hello", lambda m: got.append(m.payload))
        a.send(2, "hello", payload="world")
        sim.run()
        assert got == ["world"]

    def test_unhandled_type_counted(self):
        sim, network = make_network()
        a = SimNode(1, network)
        SimNode(2, network)
        a.send(2, "mystery")
        sim.run()
        assert network.stats.counters["unhandled:mystery"] == 1

    def test_self_send_rejected(self):
        _, network = make_network()
        node = SimNode(1, network)
        with pytest.raises(SimulationError):
            node.send(1, "loop")

    def test_shutdown_unregisters(self):
        _, network = make_network()
        node = SimNode(1, network)
        node.shutdown()
        assert 1 not in network.registered_nodes


class TestChurnModels:
    def test_no_churn_never_leaves(self):
        model = NoChurn()
        rng = np.random.default_rng(0)
        assert model.session_time(rng) == float("inf")
        assert not model.churns

    def test_exponential_means(self):
        model = ExponentialChurn(mean_session=100.0, mean_downtime=10.0)
        rng = np.random.default_rng(0)
        sessions = [model.session_time(rng) for _ in range(2000)]
        assert np.mean(sessions) == pytest.approx(100.0, rel=0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ExponentialChurn(mean_session=0, mean_downtime=1)
        with pytest.raises(ConfigurationError):
            WeibullChurn(scale_session=-1)
        with pytest.raises(ConfigurationError):
            ParetoChurn(minimum_session=0)

    def test_all_models_positive_draws(self):
        rng = np.random.default_rng(1)
        for model in (
            ExponentialChurn(50, 5),
            WeibullChurn(50, 0.6, 5),
            ParetoChurn(10, 1.5, 5),
        ):
            for _ in range(100):
                assert model.session_time(rng) >= 0
                assert model.downtime(rng) >= 0

    def test_zero_downtime_supported(self):
        rng = np.random.default_rng(1)
        model = ExponentialChurn(50, 0)
        assert model.downtime(rng) == 0.0


class TestChurnDriver:
    def test_peers_cycle_down_and_up(self):
        sim, network = make_network()
        for address in range(8):
            network.register(address, lambda m: None)
        left, joined = [], []
        driver = ChurnDriver(
            sim,
            network,
            ExponentialChurn(mean_session=10.0, mean_downtime=5.0),
            on_leave=left.append,
            on_join=joined.append,
        )
        driver.start(list(range(8)))
        sim.run(until=200.0)
        assert driver.leave_count > 0
        assert driver.join_count > 0
        assert left and joined

    def test_no_churn_schedules_nothing(self):
        sim, network = make_network()
        network.register(0, lambda m: None)
        driver = ChurnDriver(sim, network, NoChurn())
        driver.start([0])
        assert sim.pending_events == 0

    def test_stop_halts_cycles(self):
        sim, network = make_network()
        for address in range(4):
            network.register(address, lambda m: None)
        driver = ChurnDriver(
            sim, network, ExponentialChurn(mean_session=5.0, mean_downtime=1.0)
        )
        driver.start(list(range(4)))
        sim.run(until=20.0)
        driver.stop()
        count_at_stop = driver.leave_count + driver.join_count
        sim.run(until=100.0)
        # A few queued events may still fire, then everything quiesces.
        assert driver.leave_count + driver.join_count <= count_at_stop + 8
