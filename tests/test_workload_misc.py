"""Tests for the query workload generator plus assorted edge coverage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import TagMetadataStore, TagSource
from repro.errors import ConfigurationError
from repro.overlay.chord import ChordOverlay
from repro.overlay.superpeer import SuperPeerDirectory
from repro.sim.engine import Simulator
from repro.sim.visualize import ascii_summary, degree_statistics
from repro.sim.workload import QueryEvent, QueryWorkload, WorkloadConfig


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(peers=[]).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(peers=[0], rate_per_peer=0).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(peers=[0], duration=0).validate()


class TestQueryWorkload:
    def test_deterministic(self):
        config = WorkloadConfig(peers=[0, 1, 2], seed=5)
        a = QueryWorkload(config).generate()
        b = QueryWorkload(config).generate()
        assert a == b

    def test_events_sorted_and_bounded(self):
        events = QueryWorkload(
            WorkloadConfig(peers=[0, 1], duration=100.0, rate_per_peer=0.2)
        ).generate()
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t < 100.0 for t in times)

    def test_rate_matches_expectation(self):
        config = WorkloadConfig(
            peers=list(range(10)), rate_per_peer=0.1, duration=1000.0, seed=0
        )
        workload = QueryWorkload(config)
        events = workload.generate()
        assert len(events) == pytest.approx(workload.expected_total(), rel=0.15)

    def test_doc_indices_sequential_per_peer(self):
        events = QueryWorkload(
            WorkloadConfig(peers=[7], duration=200.0, rate_per_peer=0.1, seed=1)
        ).generate()
        indices = [e.doc_index for e in events]
        assert indices == list(range(len(indices)))

    def test_diurnal_thins_traffic(self):
        base = WorkloadConfig(
            peers=list(range(5)), rate_per_peer=0.2, duration=2000.0, seed=3
        )
        flat = len(QueryWorkload(base).generate())
        diurnal_config = WorkloadConfig(
            peers=list(range(5)), rate_per_peer=0.2, duration=2000.0,
            seed=3, diurnal=True, diurnal_period=500.0,
        )
        modulated = len(QueryWorkload(diurnal_config).generate())
        assert modulated < flat

    def test_replay_direct(self):
        events = QueryWorkload(
            WorkloadConfig(peers=[0, 1], duration=50.0, rate_per_peer=0.2)
        ).generate()
        seen = []
        count = QueryWorkload(
            WorkloadConfig(peers=[0], duration=1.0)
        ).replay(events, seen.append)
        assert count == len(events) == len(seen)

    def test_replay_through_simulator(self):
        simulator = Simulator()
        events = QueryWorkload(
            WorkloadConfig(peers=[0], duration=30.0, rate_per_peer=0.3, seed=2)
        ).generate()
        times = []
        QueryWorkload(WorkloadConfig(peers=[0], duration=1.0)).replay(
            events, lambda e: times.append(simulator.now), simulator=simulator
        )
        assert len(times) == len(events)
        assert times == sorted(times)
        assert simulator.now == pytest.approx(events[-1].time)


class TestMiscEdgeCoverage:
    def test_visualize_works_on_chord(self):
        overlay = ChordOverlay()
        for address in range(12):
            overlay.join(address)
        overlay.stabilize()
        stats = degree_statistics(overlay)
        assert stats["nodes"] == 12
        assert "chord" in ascii_summary(overlay)

    def test_superpeer_label_stable(self):
        assert SuperPeerDirectory.label("music", 2) == "sp|music|2"

    def test_metadata_clear(self):
        store = TagMetadataStore()
        store.assign(1, "a")
        store.clear(1)
        assert 1 not in store
        store.clear(999)  # no-op


doc_tags = st.dictionaries(
    st.integers(min_value=0, max_value=20),
    st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3),
    min_size=1,
    max_size=10,
)


@given(assignments=doc_tags)
@settings(max_examples=40)
def test_metadata_store_roundtrip_property(tmp_path_factory, assignments):
    store = TagMetadataStore()
    for doc_id, tags in assignments.items():
        for tag in tags:
            store.assign(doc_id, tag, TagSource.AUTO, confidence=0.5)
    path = tmp_path_factory.mktemp("meta") / "tags.json"
    store.save(path)
    loaded = TagMetadataStore.load(path)
    assert loaded.documents() == store.documents()
    for doc_id in store.documents():
        assert loaded.tags_of(doc_id) == store.tags_of(doc_id)


@given(
    st.lists(
        st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=30
    )
)
def test_simulator_executes_in_sorted_time_order(delays):
    simulator = Simulator()
    fired = []
    for delay in delays:
        simulator.schedule(delay, lambda d=delay: fired.append(simulator.now))
    simulator.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
