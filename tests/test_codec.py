"""Wire-format codec layer: size-model arithmetic, dispatch, and the
stats wire-byte dimension.

Property style: the invariants (``0 <= wire <= raw``, monotonicity,
determinism) are checked over randomized fixed-seed payloads and size
sweeps for *every* registered codec, so adding a codec automatically
enrolls it in the contract.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.codec import (
    CodecTable,
    DeltaSparseCodec,
    DictRatioCodec,
    GzipModelCodec,
    IdentityCodec,
    codec_names,
    make_codec_table,
    register_traffic_class,
    registered_codecs,
    traffic_class_of,
)
from repro.sim.messages import _HEADER_BYTES, Message, payload_size
from repro.sim.stats import StatsCollector


def random_payload(rng: np.random.Generator, depth: int = 0):
    """One random payload drawn from everything ``payload_size`` handles."""
    kinds = ["none", "bool", "int", "float", "str", "bytes"]
    if depth < 3:
        kinds += ["list", "tuple", "set", "dict"] * 2
    kind = kinds[int(rng.integers(len(kinds)))]
    if kind == "none":
        return None
    if kind == "bool":
        return bool(rng.integers(2))
    if kind == "int":
        return int(rng.integers(-(2 ** 40), 2 ** 40))
    if kind == "float":
        return float(rng.normal())
    if kind == "str":
        return "x" * int(rng.integers(0, 40))
    if kind == "bytes":
        return bytes(int(rng.integers(0, 40)))
    count = int(rng.integers(0, 5))
    if kind == "list":
        return [random_payload(rng, depth + 1) for _ in range(count)]
    if kind == "tuple":
        return tuple(random_payload(rng, depth + 1) for _ in range(count))
    if kind == "set":
        return {("k%d" % i, i) for i in range(count)}
    return {
        "k%d" % i: random_payload(rng, depth + 1) for i in range(count)
    }


class TestPayloadSizeProperties:
    def test_empty_containers(self):
        # Sequence-like containers cost their 2-byte frame even when empty;
        # a dict's framing is per entry, so an empty dict costs nothing.
        assert payload_size([]) == 2
        assert payload_size(()) == 2
        assert payload_size(set()) == 2
        assert payload_size(frozenset()) == 2
        assert payload_size({}) == 0

    def test_nesting_adds_one_frame_per_level(self):
        assert payload_size([[]]) == 4
        assert payload_size([[], []]) == 6
        assert payload_size([[[]]]) == 6
        assert payload_size({"k": []}) == 1 + 2 + 2
        assert payload_size({"k": {}}) == 1 + 0 + 2

    def test_wrapping_costs_exactly_the_frame(self):
        rng = np.random.default_rng(42)
        for _ in range(100):
            payload = random_payload(rng)
            inner = payload_size(payload)
            assert payload_size([payload]) == inner + 2
            assert payload_size((payload,)) == inner + 2
            assert payload_size({"k": payload}) == 1 + inner + 2

    def test_container_size_is_sum_of_elements_plus_frame(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            elements = [random_payload(rng) for _ in range(4)]
            assert payload_size(elements) == (
                sum(payload_size(e) for e in elements) + 2
            )

    def test_sizes_are_deterministic_and_non_negative(self):
        rng = np.random.default_rng(3)
        for _ in range(200):
            payload = random_payload(rng)
            size = payload_size(payload)
            assert size >= 0
            assert payload_size(payload) == size


class TestCodecSizeArithmetic:
    #: raw sizes around every codec's structural breakpoints plus a sweep
    EDGE_SIZES = (0, 1, 2, 7, 8, 9, 17, 18, 19, 31, 63, 64, 65, 100, 1000)

    def all_sizes(self):
        rng = np.random.default_rng(11)
        return list(self.EDGE_SIZES) + [
            int(s) for s in rng.integers(0, 1_000_000, size=200)
        ]

    def test_wire_never_exceeds_raw(self):
        for codec in registered_codecs():
            for raw in self.all_sizes():
                wire = codec.wire_size_of(raw)
                assert 0 <= wire <= raw, (codec.name, raw, wire)

    def test_zero_bytes_stay_zero(self):
        for codec in registered_codecs():
            assert codec.wire_size_of(0) == 0
            assert codec.wire_size_of(-5) == 0

    def test_wire_size_is_monotone_nondecreasing(self):
        sizes = sorted(set(self.all_sizes()))
        for codec in registered_codecs():
            wires = [codec.wire_size_of(raw) for raw in sizes]
            assert wires == sorted(wires), codec.name

    def test_wire_size_is_deterministic_across_instances(self):
        for first, second in zip(registered_codecs(), registered_codecs()):
            for raw in self.EDGE_SIZES:
                assert first.wire_size_of(raw) == second.wire_size_of(raw)

    def test_identity_is_a_fixpoint(self):
        for raw in self.all_sizes():
            assert IdentityCodec().wire_size_of(raw) == max(0, raw)

    def test_small_messages_ride_uncompressed(self):
        # Header overhead / dictionary break-even: tiny frames don't shrink.
        assert GzipModelCodec().wire_size_of(10) == 10
        assert DictRatioCodec().wire_size_of(64) == 64

    def test_large_messages_compress_strictly(self):
        for codec in (GzipModelCodec(), DeltaSparseCodec(), DictRatioCodec()):
            assert codec.wire_size_of(10_000) < 10_000

    def test_wire_le_raw_over_random_payload_sizes(self):
        # The invariant over message-shaped raw sizes: header + payload.
        rng = np.random.default_rng(19)
        for _ in range(100):
            payload = random_payload(rng)
            raw = _HEADER_BYTES + payload_size(payload)
            for codec in registered_codecs():
                assert 0 <= codec.wire_size_of(raw) <= raw


class TestCodecRegistry:
    def test_registered_names(self):
        assert set(codec_names()) == {
            "identity", "gzip-model", "delta-sparse", "dict-ratio", "tuned"
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_codec_table("no-such-codec")

    def test_unknown_traffic_class_rejected(self):
        with pytest.raises(ConfigurationError):
            register_traffic_class("x.y", "no-such-class")

    def test_protocol_declarations_registered(self):
        # Importing a protocol module declares its message types' classes.
        import repro.baselines.centralized  # noqa: F401
        import repro.baselines.popularity  # noqa: F401
        import repro.p2pclass.cempar  # noqa: F401
        import repro.p2pclass.pace  # noqa: F401

        assert traffic_class_of("pace.model_broadcast") == "model"
        assert traffic_class_of("cempar.query") == "vector"
        assert traffic_class_of("cempar.prediction") == "control"
        assert traffic_class_of("central.data_upload") == "vector"
        assert traffic_class_of("popularity.counts") == "counts"
        assert traffic_class_of("overlay.maintenance") == "control"
        assert traffic_class_of("never.declared") is None


class TestCodecTable:
    def test_uniform_tables_apply_their_codec_everywhere(self):
        table = make_codec_table("gzip-model")
        reference = GzipModelCodec()
        for msg_type in ("pace.model_broadcast", "anything.else"):
            assert table.wire_size(msg_type, 5000) == reference.wire_size_of(5000)

    def test_identity_table_is_identity(self):
        table = make_codec_table("identity")
        assert table.is_identity
        assert table.wire_size("any", 1234) == 1234

    def test_non_identity_tables_report_it(self):
        assert not make_codec_table("gzip-model").is_identity
        assert not make_codec_table("tuned").is_identity
        # A table whose default is identity but with a compressing class
        # entry is not identity either.
        mixed = CodecTable(per_class={"model": GzipModelCodec()})
        assert not mixed.is_identity

    def test_tuned_dispatches_by_traffic_class(self):
        import repro.p2pclass.cempar  # noqa: F401  (registers classes)

        table = make_codec_table("tuned")
        raw = 5000
        assert table.wire_size(
            "cempar.model_upload", raw
        ) == GzipModelCodec().wire_size_of(raw)
        assert table.wire_size(
            "cempar.query", raw
        ) == DeltaSparseCodec().wire_size_of(raw)
        # Control traffic and undeclared types ride raw.
        assert table.wire_size("cempar.prediction", raw) == raw
        assert table.wire_size("never.declared", raw) == raw

    def test_exact_type_entry_beats_traffic_class(self):
        import repro.p2pclass.pace  # noqa: F401

        table = CodecTable(
            per_type={"pace.model_broadcast": IdentityCodec()},
            per_class={"model": GzipModelCodec()},
        )
        assert table.wire_size("pace.model_broadcast", 5000) == 5000

    def test_resolution_is_memoized(self):
        table = make_codec_table("tuned")
        assert table.codec_for("a.b") is table.codec_for("a.b")

    def test_late_registration_invalidates_memoized_resolution(self):
        # A protocol module imported after a table already resolved one of
        # its message types must still take effect (registry versioning).
        table = make_codec_table("tuned")
        assert table.wire_size("late.registered", 5000) == 5000
        register_traffic_class("late.registered", "model")
        assert table.wire_size(
            "late.registered", 5000
        ) == GzipModelCodec().wire_size_of(5000)

    def test_registered_codecs_derived_from_registry(self):
        # Every codec reachable through a registered table is enrolled in
        # the property-test contract, deduplicated by name.
        names = [codec.name for codec in registered_codecs()]
        assert len(names) == len(set(names))
        assert set(names) == {
            "identity", "gzip-model", "delta-sparse", "dict-ratio"
        }


class TestStatsWireCounters:
    def fill(self, stats: StatsCollector) -> None:
        stats.record_traffic("model", 1000, hops=2, src=1, dst=2, wire_bytes=400)
        stats.record_traffic("query", 100, src=2, dst=3)  # identity
        stats.record_message_block(
            "model", 1000, src=3, dsts=[4, 5], wire_bytes=400
        )
        stats.record_message(
            Message(src=1, dst=4, msg_type="query", size_bytes=50, wire_bytes=30)
        )

    def test_wire_dimension_tracked_alongside_raw(self):
        stats = StatsCollector()
        self.fill(stats)
        assert stats.bytes_by_type["model"] == 2000 + 2 * 1000
        assert stats.wire_bytes_by_type["model"] == 800 + 2 * 400
        assert stats.bytes_by_type["query"] == 100 + 50
        assert stats.wire_bytes_by_type["query"] == 100 + 30
        assert stats.total_wire_bytes < stats.total_bytes
        assert stats.wire_bytes_for("model", "query") == stats.total_wire_bytes
        assert stats.has_compressed_traffic

    def test_identity_recording_leaves_fingerprint_unchanged(self):
        stats = StatsCollector()
        stats.record_traffic("m", 64, src=0, dst=1)
        stats.record_message(Message(src=0, dst=1, msg_type="m", payload="xy"))
        stats.record_message_block("m", 64, src=0, dsts=[1, 2])
        assert not stats.has_compressed_traffic
        # The six pre-codec keys, exactly — golden digests depend on this.
        assert set(stats.fingerprint()) == {
            "messages_by_type", "bytes_by_type", "hops_by_type",
            "per_peer_bytes", "per_peer_received", "counters",
        }

    def test_compressed_fingerprint_gains_wire_keys(self):
        stats = StatsCollector()
        self.fill(stats)
        snapshot = stats.fingerprint()
        assert snapshot["wire_bytes_by_type"] == {"model": 1600, "query": 130}
        assert snapshot["per_peer_wire_bytes"] == {
            "1": 800 + 30, "2": 100, "3": 800
        }

    def test_block_recording_equals_per_message_recording(self):
        bulk, scalar = StatsCollector(), StatsCollector()
        bulk.record_message_block(
            "t", 64, src=3, dsts=[1, 2, 5], hops=2, wire_bytes=40
        )
        for dst in (1, 2, 5):
            scalar.record_traffic("t", 64, hops=2, src=3, dst=dst, wire_bytes=40)
        assert bulk.fingerprint_bytes() == scalar.fingerprint_bytes()
        assert bulk.digest() == scalar.digest()

    def test_merge_folds_wire_counters(self):
        a, b = StatsCollector(), StatsCollector()
        self.fill(a)
        self.fill(b)
        a_total, a_wire = a.total_bytes, a.total_wire_bytes
        a.merge(b)
        assert a.total_bytes == 2 * a_total
        assert a.total_wire_bytes == 2 * a_wire
        assert a.wire_bytes_by_type["model"] == 2 * 1600
        assert a.per_peer_wire_bytes[1] == 2 * (800 + 30)
        assert a.has_compressed_traffic

    def test_merge_propagates_compression_flag(self):
        plain, compressed = StatsCollector(), StatsCollector()
        plain.record_traffic("m", 10, src=0, dst=1)
        compressed.record_traffic("m", 1000, src=0, dst=1, wire_bytes=300)
        assert not plain.has_compressed_traffic
        plain.merge(compressed)
        assert plain.has_compressed_traffic
        assert "wire_bytes_by_type" in plain.fingerprint()

    def test_merge_of_identity_collectors_stays_identity(self):
        a, b = StatsCollector(), StatsCollector()
        a.record_traffic("m", 10, src=0, dst=1)
        b.record_traffic("m", 20, src=1, dst=0)
        a.merge(b)
        assert not a.has_compressed_traffic
        assert "wire_bytes_by_type" not in a.fingerprint()

    def test_traffic_table_plain_without_compression(self):
        stats = StatsCollector()
        stats.record_traffic("m", 64, src=0, dst=1)
        table = stats.traffic_table()
        assert "wire" not in table and "ratio" not in table

    def test_traffic_table_gains_wire_and_ratio_columns(self):
        stats = StatsCollector()
        stats.record_traffic("model", 1000, src=0, dst=1, wire_bytes=400)
        stats.record_traffic("query", 100, src=0, dst=1)
        table = stats.traffic_table()
        lines = table.splitlines()
        assert "wire" in lines[0] and "ratio" in lines[0]
        model_line = next(l for l in lines if l.startswith("model"))
        assert "400" in model_line and "0.40" in model_line
        query_line = next(l for l in lines if l.startswith("query"))
        assert "1.00" in query_line
        total_line = lines[-1]
        assert "1100" in total_line and "500" in total_line
