"""The central boolean/numeric env-knob parsing matrix.

Every ``REPRO_*`` switch goes through :mod:`repro.envutil`, so the
grammar is tested once here instead of per call site.  The drift this
fixes: the old per-site ``not in ("", "0")`` idiom parsed ``false``/
``no``/``off`` as *truthy*.
"""

import pytest

from repro.envutil import env_flag, env_float, env_int
from repro.errors import ConfigurationError, ReproError, SimulationError

FLAG = "REPRO_TEST_FLAG"


@pytest.mark.parametrize(
    "raw", ["1", "true", "TRUE", "True", "yes", "on", " 1 ", "ON"]
)
def test_env_flag_truthy(monkeypatch, raw):
    monkeypatch.setenv(FLAG, raw)
    assert env_flag(FLAG) is True


@pytest.mark.parametrize(
    "raw", ["", "0", "false", "FALSE", "no", "off", " 0 ", "Off"]
)
def test_env_flag_falsy(monkeypatch, raw):
    monkeypatch.setenv(FLAG, raw)
    assert env_flag(FLAG) is False


def test_env_flag_unset_is_false(monkeypatch):
    monkeypatch.delenv(FLAG, raising=False)
    assert env_flag(FLAG) is False


@pytest.mark.parametrize("raw", ["2", "maybe", "yes!", "enable"])
def test_env_flag_rejects_garbage(monkeypatch, raw):
    """A typo'd value must never silently flip a behaviour switch."""
    monkeypatch.setenv(FLAG, raw)
    with pytest.raises(ConfigurationError, match=FLAG):
        env_flag(FLAG)


def test_every_production_flag_parses_identically(monkeypatch):
    """The sites the old idiom was copy-pasted into now share one parser:
    transport's scalar broadcast, the classifier's scalar rounds, and the
    exchange path switch agree on every value of the matrix."""
    from repro.sim.exchange import scalar_exchange_enabled

    for raw, expected in [
        ("0", False), ("", False), ("false", False),
        ("1", True), ("yes", True),
    ]:
        monkeypatch.setenv("REPRO_SCALAR_EXCHANGE", raw)
        assert scalar_exchange_enabled() is expected
        # transport / p2pclass read their flags at construction through the
        # same env_flag helper; spot-check via the helper on their names
        monkeypatch.setenv("REPRO_SCALAR_BROADCAST", raw)
        monkeypatch.setenv("REPRO_SCALAR_ROUNDS", raw)
        assert env_flag("REPRO_SCALAR_BROADCAST") is expected
        assert env_flag("REPRO_SCALAR_ROUNDS") is expected


NUM = "REPRO_TEST_NUMBER"


def test_env_int_default_and_parse(monkeypatch):
    monkeypatch.delenv(NUM, raising=False)
    assert env_int(NUM, 7) == 7
    monkeypatch.setenv(NUM, " 42 ")
    assert env_int(NUM, 7) == 42


@pytest.mark.parametrize("raw", ["", "abc", "4.2"])
def test_env_int_rejects_malformed(monkeypatch, raw):
    monkeypatch.setenv(NUM, raw)
    with pytest.raises(ConfigurationError, match=NUM):
        env_int(NUM, 7)


def test_env_int_enforces_minimum_with_custom_error(monkeypatch):
    monkeypatch.setenv(NUM, "0")
    with pytest.raises(SimulationError, match=NUM) as excinfo:
        env_int(NUM, 7, minimum=1, error=SimulationError)
    assert ">= 1" in str(excinfo.value)  # the accepted range is named


def test_env_float_default_parse_and_bounds(monkeypatch):
    monkeypatch.delenv(NUM, raising=False)
    assert env_float(NUM, 1.5) == 1.5
    monkeypatch.setenv(NUM, "2.25")
    assert env_float(NUM, 1.5) == 2.25
    for raw in ("", "abc", "inf", "nan", "0", "-1"):
        monkeypatch.setenv(NUM, raw)
        with pytest.raises(ReproError, match=NUM):
            env_float(NUM, 1.5, exclusive_minimum=0.0)


# ---------------------------------------------------------------------------
# The tcp executor's knobs (repro.sim.tcpexec): routed through the same
# parsers, failing as SimulationError with the variable and range named.
# ---------------------------------------------------------------------------


def test_tcp_timeout_default_and_parse(monkeypatch):
    from repro.sim.tcpexec import TCP_TIMEOUT_ENV, tcp_timeout_seconds

    monkeypatch.delenv(TCP_TIMEOUT_ENV, raising=False)
    assert tcp_timeout_seconds() == 60.0
    monkeypatch.setenv(TCP_TIMEOUT_ENV, "3.5")
    assert tcp_timeout_seconds() == 3.5


@pytest.mark.parametrize("raw", ["", "abc", "nan", "inf", "0", "-2"])
def test_tcp_timeout_rejects_malformed_and_out_of_range(monkeypatch, raw):
    from repro.sim.tcpexec import TCP_TIMEOUT_ENV, tcp_timeout_seconds

    monkeypatch.setenv(TCP_TIMEOUT_ENV, raw)
    with pytest.raises(SimulationError, match=TCP_TIMEOUT_ENV) as excinfo:
        tcp_timeout_seconds()
    assert "> 0" in str(excinfo.value) or "expected" in str(excinfo.value)


def test_tcp_retries_default_and_parse(monkeypatch):
    from repro.sim.tcpexec import TCP_RETRIES_ENV, tcp_retries

    monkeypatch.delenv(TCP_RETRIES_ENV, raising=False)
    assert tcp_retries() == 8
    monkeypatch.setenv(TCP_RETRIES_ENV, " 3 ")
    assert tcp_retries() == 3


@pytest.mark.parametrize("raw", ["", "abc", "1.5", "0", "-1"])
def test_tcp_retries_rejects_malformed_and_out_of_range(monkeypatch, raw):
    from repro.sim.tcpexec import TCP_RETRIES_ENV, tcp_retries

    monkeypatch.setenv(TCP_RETRIES_ENV, raw)
    with pytest.raises(SimulationError, match=TCP_RETRIES_ENV) as excinfo:
        tcp_retries()
    assert ">= 1" in str(excinfo.value) or "expected" in str(excinfo.value)


def test_tcp_max_respawns_default_and_parse(monkeypatch):
    from repro.sim.tcpexec import TCP_MAX_RESPAWNS_ENV, tcp_max_respawns

    monkeypatch.delenv(TCP_MAX_RESPAWNS_ENV, raising=False)
    assert tcp_max_respawns() == 3
    monkeypatch.setenv(TCP_MAX_RESPAWNS_ENV, "0")  # 0 disables recovery
    assert tcp_max_respawns() == 0
    monkeypatch.setenv(TCP_MAX_RESPAWNS_ENV, " 7 ")
    assert tcp_max_respawns() == 7


@pytest.mark.parametrize("raw", ["", "abc", "1.5", "-1"])
def test_tcp_max_respawns_rejects_malformed_and_out_of_range(
    monkeypatch, raw
):
    from repro.sim.tcpexec import TCP_MAX_RESPAWNS_ENV, tcp_max_respawns

    monkeypatch.setenv(TCP_MAX_RESPAWNS_ENV, raw)
    with pytest.raises(SimulationError, match=TCP_MAX_RESPAWNS_ENV) as excinfo:
        tcp_max_respawns()
    assert ">= 0" in str(excinfo.value) or "expected" in str(excinfo.value)
