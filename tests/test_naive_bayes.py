"""Tests for multinomial NB, its sufficient statistics, and NB-Agg."""

import pytest

from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.naive_bayes import MultinomialNB, NBSufficientStats
from repro.ml.sparse import SparseVector

from tests.test_classifiers import (
    PEER_DATA,
    TAGS,
    TEST_ITEMS,
    evaluate,
    fresh_scenario,
)


def topic_data():
    """Two 'topics': features 0-2 vs features 10-12."""
    pos = [SparseVector({0: 2.0, 1: 1.0}), SparseVector({1: 2.0, 2: 1.0}),
           SparseVector({0: 1.0, 2: 2.0})]
    neg = [SparseVector({10: 2.0, 11: 1.0}), SparseVector({11: 2.0, 12: 1.0}),
           SparseVector({10: 1.0, 12: 2.0})]
    return pos + neg, [1, 1, 1, -1, -1, -1]


class TestSufficientStats:
    def test_add_document(self):
        stats = NBSufficientStats()
        stats.add_document(SparseVector({0: 2.0, 1: 1.0}), 1)
        stats.add_document(SparseVector({0: 1.0}), -1)
        assert stats.doc_counts == [1, 1]
        assert stats.feature_sums[1][0] == 2.0
        assert stats.feature_sums[0][0] == 1.0
        assert stats.total_mass == [1.0, 3.0]

    def test_bad_label_rejected(self):
        with pytest.raises(ConfigurationError):
            NBSufficientStats().add_document(SparseVector({0: 1.0}), 0)

    def test_merge_additivity(self):
        """Merged peer statistics equal statistics over pooled data."""
        vectors, labels = topic_data()
        pooled = NBSufficientStats()
        for v, y in zip(vectors, labels):
            pooled.add_document(v, y)
        half_a, half_b = NBSufficientStats(), NBSufficientStats()
        for v, y in zip(vectors[:3], labels[:3]):
            half_a.add_document(v, y)
        for v, y in zip(vectors[3:], labels[3:]):
            half_b.add_document(v, y)
        half_a.merge(half_b)
        assert half_a.doc_counts == pooled.doc_counts
        assert half_a.total_mass == pooled.total_mass
        assert half_a.feature_sums == pooled.feature_sums

    def test_wire_size(self):
        stats = NBSufficientStats()
        stats.add_document(SparseVector({0: 1.0, 1: 1.0}), 1)
        assert stats.wire_size() == 12 * 2 + 32


class TestMultinomialNB:
    def test_separates_topics(self):
        vectors, labels = topic_data()
        nb = MultinomialNB(vocabulary_size=100).fit(vectors, labels)
        assert nb.predict(SparseVector({0: 1.0, 1: 1.0})) == 1
        assert nb.predict(SparseVector({10: 1.0, 11: 1.0})) == -1
        assert nb.accuracy(vectors, labels) == 1.0

    def test_probability_bounds_and_ordering(self):
        vectors, labels = topic_data()
        nb = MultinomialNB(vocabulary_size=100).fit(vectors, labels)
        p_pos = nb.probability(SparseVector({0: 3.0}))
        p_neg = nb.probability(SparseVector({10: 3.0}))
        assert 0.0 <= p_neg < p_pos <= 1.0

    def test_from_stats_matches_fit(self):
        vectors, labels = topic_data()
        fitted = MultinomialNB(vocabulary_size=100).fit(vectors, labels)
        stats = NBSufficientStats()
        for v, y in zip(vectors, labels):
            stats.add_document(v, y)
        rebuilt = MultinomialNB.from_stats(stats, vocabulary_size=100)
        probe = SparseVector({0: 1.0, 11: 1.0})
        assert fitted.log_odds(probe) == pytest.approx(rebuilt.log_odds(probe))

    def test_distributed_equals_centralized(self):
        """The NB-Agg exactness property at the model level."""
        vectors, labels = topic_data()
        central = MultinomialNB(vocabulary_size=100).fit(vectors, labels)
        shards = [NBSufficientStats(), NBSufficientStats(), NBSufficientStats()]
        for index, (v, y) in enumerate(zip(vectors, labels)):
            shards[index % 3].add_document(v, y)
        merged = shards[0]
        merged.merge(shards[1])
        merged.merge(shards[2])
        distributed = MultinomialNB.from_stats(merged, vocabulary_size=100)
        for probe in vectors:
            assert central.log_odds(probe) == pytest.approx(
                distributed.log_odds(probe)
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultinomialNB(alpha=0)
        with pytest.raises(ConfigurationError):
            MultinomialNB().fit([], [])
        with pytest.raises(ConfigurationError):
            MultinomialNB.from_stats(NBSufficientStats())
        with pytest.raises(NotTrainedError):
            MultinomialNB().predict(SparseVector({0: 1.0}))


class TestNBAggClassifier:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.p2pclass.nbagg import NBAggClassifier, NBAggConfig

        classifier = NBAggClassifier(
            fresh_scenario(), PEER_DATA, TAGS,
            NBAggConfig(vocabulary_size=2 ** 16),
        )
        classifier.train()
        return classifier

    def test_learns(self, trained):
        assert evaluate(trained, TEST_ITEMS) > 0.4

    def test_statistics_uploaded_once_per_tag_peer(self, trained):
        stats = trained.scenario.stats
        assert stats.messages_for("nbagg.stats_upload") > 0

    def test_scores_cover_tags(self, trained):
        scores = trained.predict_scores(0, TEST_ITEMS[0][0])
        assert set(scores) == set(TAGS)
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_query_traffic_charged(self, trained):
        stats = trained.scenario.stats
        before = stats.messages_for("nbagg.query")
        trained.predict_scores(2, TEST_ITEMS[0][0])
        assert stats.messages_for("nbagg.query") >= before

    def test_invalid_config(self):
        from repro.p2pclass.nbagg import NBAggClassifier, NBAggConfig

        with pytest.raises(ConfigurationError):
            NBAggClassifier(
                fresh_scenario(), PEER_DATA, TAGS, NBAggConfig(alpha=0)
            )

    def test_system_integration(self):
        from repro.core.tagger import P2PDocTaggerSystem
        from repro.data.delicious import DeliciousGenerator

        corpus = DeliciousGenerator(
            num_users=5, seed=2, num_tags=6, docs_per_user_range=(12, 16),
            vocabulary_size=400, topic_words_per_tag=30,
            doc_length_range=(30, 60),
        ).generate()
        system = P2PDocTaggerSystem.from_corpus(
            corpus, algorithm="nbagg", train_fraction=0.3
        )
        system.train()
        report = system.evaluate(max_documents=20)
        assert report.algorithm == "nbagg"
        assert report.metrics.micro_f1 > 0.2
