"""Shared helpers for the benchmark suite.

Every benchmark prints its experiment table to stdout (visible with
``pytest benchmarks/ --benchmark-only -s``) and writes it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md numbers can be
regenerated and diffed.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def write_results(name: str, table: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table, encoding="utf-8")
    print()
    print(table)
