"""Shared helpers for the benchmark suite.

Every benchmark prints its experiment table to stdout (visible with
``pytest benchmarks/ --benchmark-only -s``) and writes it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md numbers can be
regenerated and diffed.  Benchmarks that pass their structured rows also
get ``benchmarks/results/<name>.json`` — machine-readable output that CI
uploads as a workflow artifact, so run-to-run regressions diff without
parsing fixed-width tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def write_results(
    name: str,
    table: str,
    headers: Optional[Sequence[str]] = None,
    rows: Optional[Sequence[Sequence]] = None,
) -> None:
    """Print the table and persist it under benchmarks/results/.

    With ``headers``/``rows`` the structured data is also written as
    ``<name>.json`` (one object per row, keyed by header).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table, encoding="utf-8")
    if headers is not None and rows is not None:
        payload = {
            "benchmark": name,
            "headers": list(headers),
            "rows": [dict(zip(headers, row)) for row in rows],
        }
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    print()
    print(table)
