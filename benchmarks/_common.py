"""Shared helpers for the benchmark suite.

Every benchmark prints its experiment table to stdout (visible with
``pytest benchmarks/ --benchmark-only -s``) and writes it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md numbers can be
regenerated and diffed.  Benchmarks that pass their structured rows also
get ``benchmarks/results/<name>.json`` — machine-readable output that CI
uploads as a workflow artifact, so run-to-run regressions diff without
parsing fixed-width tables.
"""

from __future__ import annotations

import json
import os
import resource
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def cpu_count() -> int:
    """Cores available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def peak_rss_mb(children: bool = False) -> float:
    """Peak resident-set high-water mark in MiB.

    ``children=True`` reads the reaped-children maximum (the mp executor's
    forked shard workers).  Both values are monotone high-water marks for
    the whole process lifetime, so per-row numbers in a multi-row benchmark
    read as "peak so far", not per-run peaks — still exactly what a
    trajectory diff needs to catch a memory regression.
    """
    who = resource.RUSAGE_CHILDREN if children else resource.RUSAGE_SELF
    kb = resource.getrusage(who).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes
        kb /= 1024
    return round(kb / 1024.0, 2)


def write_bench_trajectory(
    name: str, entries: Sequence[Dict], context: Optional[Dict] = None
) -> Path:
    """Write ``benchmarks/results/BENCH_<name>.json`` — the performance
    trajectory record.

    One object per measured configuration (wall seconds, peak RSS, shape
    identifiers), plus the machine context the numbers were taken on.  The
    file is checked in as the baseline and refreshed by every benchmark
    run, so a future PR's regression shows up as a reviewable diff and CI
    uploads the fresh copy as an artifact.
    """
    import numpy

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmark": name,
        "context": {
            "cpus": cpu_count(),
            "python": "%d.%d" % sys.version_info[:2],
            # the columnar exchange path's hot loops are numpy kernels, so
            # trajectory diffs need the version the numbers were taken on
            "numpy": numpy.__version__,
            **(context or {}),
        },
        "entries": list(entries),
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def write_results(
    name: str,
    table: str,
    headers: Optional[Sequence[str]] = None,
    rows: Optional[Sequence[Sequence]] = None,
) -> None:
    """Print the table and persist it under benchmarks/results/.

    With ``headers``/``rows`` the structured data is also written as
    ``<name>.json`` (one object per row, keyed by header).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table, encoding="utf-8")
    if headers is not None and rows is not None:
        payload = {
            "benchmark": name,
            "headers": list(headers),
            "rows": [dict(zip(headers, row)) for row in rows],
        }
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    print()
    print(table)
