"""Benchmark-suite pytest options.

``--codec NAME`` narrows the codec-sweep benchmarks (E2b's codec table,
E3d's broadcast codec axis) to one registered wire-format codec, e.g.::

    PYTHONPATH=src:benchmarks pytest benchmarks/bench_e2_communication.py --codec gzip-model

Without the flag the sweeps cover every registered codec table.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--codec",
        action="store",
        default=None,
        help="restrict codec-sweep benchmarks to one codec table "
        "(see repro.sim.codec.codec_names())",
    )
