"""A5 — Preprocessing ablation (paper §2 "Document preprocessing").

The paper's vectors hold word *weights*; this ablation sweeps the weighting
scheme (raw TF, sublinear TF, TF-IDF fitted per peer) and the stop-word
filter, measuring downstream tagging accuracy with the local-only learner
(so the effect of preprocessing is not smoothed over by collaboration).

Expected shape: stop-word removal helps; L2-normalized TF and TF-IDF are
close on synthetic topic text (IDF matters more when vocabulary is shared
boilerplate-heavy); nothing catastrophically breaks.
"""

import pytest

from repro.bench.harness import standard_corpus
from repro.bench.reporting import format_table
from repro.data.splits import per_user_split
from repro.ml.metrics import micro_f1, macro_f1
from repro.p2pclass.base import TaggedVector
from repro.baselines.localonly import LocalOnlyTagger
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.text.vectorizer import PreprocessingPipeline

from _common import write_results

NUM_PEERS = 10


def make_pipeline(variant: str, train_texts_by_peer):
    if variant == "tf":
        return {p: PreprocessingPipeline(dimension=2 ** 16)
                for p in train_texts_by_peer}
    if variant == "sublinear":
        return {p: PreprocessingPipeline(dimension=2 ** 16, sublinear_tf=True)
                for p in train_texts_by_peer}
    if variant == "no-stopwords":
        return {p: PreprocessingPipeline(dimension=2 ** 16, use_stop_words=False)
                for p in train_texts_by_peer}
    # tfidf: one pipeline per peer, fitted on that peer's local documents.
    pipelines = {}
    for peer, texts in train_texts_by_peer.items():
        pipeline = PreprocessingPipeline(dimension=2 ** 16)
        pipeline.fit_tfidf(texts)
        pipelines[peer] = pipeline
    return pipelines


def evaluate_variant(variant: str):
    corpus = standard_corpus(num_users=NUM_PEERS, seed=0, docs_per_user=36)
    train, test = per_user_split(corpus, 0.25, seed=0)
    train_texts_by_peer = {
        owner: [d.text for d in train.documents_of(owner)]
        for owner in train.owners
    }
    pipelines = make_pipeline(variant, train_texts_by_peer)
    peer_data = {
        owner: [
            TaggedVector(vector=pipelines[owner].process(d.text), tags=d.tags)
            for d in train.documents_of(owner)
        ]
        for owner in train.owners
    }
    scenario = Scenario(
        ScenarioConfig(
            num_peers=NUM_PEERS, shard=ShardSpec(num_peers=NUM_PEERS), seed=0
        )
    )
    tags = corpus.tag_universe()
    classifier = LocalOnlyTagger(scenario, peer_data, tags)
    classifier.train()
    true_sets, predicted = [], []
    for document in test.documents[:60]:
        vector = pipelines[document.owner].process(document.text)
        true_sets.append(document.tags)
        predicted.append(classifier.predict_tags(document.owner, vector))
    return [
        variant,
        micro_f1(true_sets, predicted, tags),
        macro_f1(true_sets, predicted, tags),
    ]


def run_all():
    return [
        evaluate_variant(variant)
        for variant in ("tf", "sublinear", "tfidf", "no-stopwords")
    ]


@pytest.mark.benchmark(group="a5-preprocessing")
def test_a5_preprocessing_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "A5  Preprocessing ablation (local-only learner, 60 docs)",
        ["weighting", "microF1", "macroF1"],
        rows,
    )
    write_results("a5_preprocessing", table)

    by_variant = {row[0]: row for row in rows}
    # Every variant produces a working system in a sane band.
    assert all(0.2 <= row[1] <= 1.0 for row in rows)
    # TF-IDF and TF are in the same ballpark on topic-model text.
    assert abs(by_variant["tfidf"][1] - by_variant["tf"][1]) < 0.25
