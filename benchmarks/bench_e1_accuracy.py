"""E1 — Tagging accuracy (paper §3's 20 % train / 80 % auto-tag protocol).

Regenerates the headline comparison: CEMPaR and PACE vs the centralized
upper bound, the local-only lower bound, and the popularity floor, averaged
over three corpus seeds.

Expected shape: centralized >= CEMPaR ~ PACE > local-only (macro especially)
> popularity; the P2P methods recover most of the centralized F1 without
centralizing any document.
"""

import statistics

import pytest

from repro.bench.harness import ExperimentSetting, run_experiment
from repro.bench.reporting import format_table

from _common import write_results

SEEDS = (0, 1, 2)
ALGORITHMS = ("centralized", "cempar", "nbagg", "pace", "local", "popularity")
BASE = dict(num_users=12, docs_per_user=40, train_fraction=0.2)


def run_all():
    rows = []
    for algorithm in ALGORITHMS:
        micro, macro, hamming, example = [], [], [], []
        for seed in SEEDS:
            result = run_experiment(
                ExperimentSetting(algorithm=algorithm, seed=seed, **BASE)
            )
            micro.append(result.micro_f1)
            macro.append(result.macro_f1)
            hamming.append(result.hamming)
            example.append(result.report.metrics.example_f1)
        rows.append(
            [
                algorithm,
                statistics.mean(micro),
                statistics.mean(macro),
                statistics.mean(example),
                statistics.mean(hamming),
            ]
        )
    return rows


@pytest.mark.benchmark(group="e1-accuracy")
def test_e1_accuracy_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E1  Tagging accuracy (20% train / 80% auto-tag, mean of 3 seeds)",
        ["algorithm", "microF1", "macroF1", "exampleF1", "hamming"],
        rows,
    )
    write_results("e1_accuracy", table)

    by_algorithm = {row[0]: row for row in rows}
    # Shape assertions the paper's claims imply.
    assert by_algorithm["centralized"][1] >= by_algorithm["local"][1]
    assert by_algorithm["cempar"][1] > by_algorithm["popularity"][1]
    assert by_algorithm["pace"][2] > by_algorithm["local"][2]  # macro gap
    # P2P recovers most of the centralized micro-F1.
    assert by_algorithm["cempar"][1] >= 0.8 * by_algorithm["centralized"][1]
