"""A1 — Design-choice ablations (DESIGN.md §5).

Sweeps the knobs the two P2P algorithms expose:

- CEMPaR region count R: more regions = smaller regional models + more
  queries (accuracy/cost trade);
- PACE top-k: how many nearest models vote;
- PACE LSH signature bits: retrieval sharpness.

Expected shape: CEMPaR accuracy degrades slightly as R grows (each cascade
sees less data) while upload traffic spreads; PACE has an interior optimum
in k; extreme LSH bit counts (too coarse / too sharp) underperform.
"""

import pytest

from repro.bench.harness import ExperimentSetting, run_experiment
from repro.bench.reporting import format_table

from _common import write_results

BASE = dict(num_users=12, docs_per_user=40, train_fraction=0.2, seed=0)


def run_all():
    rows = []
    for regions in (1, 2, 4):
        result = run_experiment(
            ExperimentSetting(
                algorithm="cempar",
                algorithm_options={"num_regions": regions},
                **BASE,
            )
        )
        rows.append(
            [
                "cempar",
                f"R={regions}",
                result.micro_f1,
                result.macro_f1,
                result.total_bytes,
            ]
        )
    for top_k in (2, 6, 11):
        result = run_experiment(
            ExperimentSetting(
                algorithm="pace", algorithm_options={"top_k": top_k}, **BASE
            )
        )
        rows.append(
            ["pace", f"k={top_k}", result.micro_f1, result.macro_f1,
             result.total_bytes]
        )
    for bits in (4, 8, 16):
        result = run_experiment(
            ExperimentSetting(
                algorithm="pace", algorithm_options={"lsh_bits": bits}, **BASE
            )
        )
        rows.append(
            ["pace", f"bits={bits}", result.micro_f1, result.macro_f1,
             result.total_bytes]
        )
    return rows


@pytest.mark.benchmark(group="a1-ablation")
def test_a1_ablation_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "A1  Design-choice ablations",
        ["algorithm", "knob", "microF1", "macroF1", "total_bytes"],
        rows,
    )
    write_results("a1_ablation", table)

    cempar_rows = [row for row in rows if row[0] == "cempar"]
    # Fewer regions -> more pooled data per cascade -> at least as accurate.
    assert cempar_rows[0][2] >= cempar_rows[-1][2] - 0.05
    # All configurations stay in a sane accuracy band.
    assert all(0.2 <= row[2] <= 1.0 for row in rows)
