"""E4 — Churn resilience (paper §3: "churn/attrition rate of the P2P
network" is one of the demonstrated scenario knobs; §1.1: "no single point
of failure").

Training and prediction run while peers leave and rejoin under exponential
churn of varying aggressiveness.  Reported: accuracy, lost contributions
(uploads/queries that failed because a lookup or a peer was down), and DHT
lookup failures.

Expected shape: accuracy degrades gracefully as sessions shorten; lookup
failures and lost uploads rise; the static network is the upper envelope.
The centralized baseline is included at the harshest churn level to show
the single-point-of-failure contrast (its server being down stalls
*everything*).
"""

import pytest

from repro.bench.harness import ExperimentSetting, build_system
from repro.bench.reporting import format_table

from _common import write_results

BASE = dict(num_users=12, docs_per_user=40, train_fraction=0.2, seed=0)
# (label, churn model, mean online seconds)
LEVELS = (
    ("none", "none", 0.0),
    ("mild", "exponential", 1200.0),
    ("heavy", "exponential", 200.0),
)


def measure(algorithm: str, label: str, churn: str, session: float):
    system = build_system(
        ExperimentSetting(
            algorithm=algorithm,
            churn=churn,
            mean_session=session,
            mean_downtime=60.0,
            **BASE,
        )
    )
    system.train()
    report = system.evaluate(max_documents=50)
    counters = system.scenario.stats.counters
    lost = (
        counters.get("cempar_upload_lost", 0)
        + counters.get("cempar_upload_lookup_failed", 0)
        + counters.get("cempar_upload_skipped", 0)
        + counters.get("pace_broadcast_skipped", 0)
        + counters.get("central_upload_lost", 0)
    )
    lookup_failures = counters.get("cempar_query_lookup_failed", 0) + counters.get(
        "cempar_query_lost", 0
    ) + counters.get("central_query_lost", 0)
    maintenance = system.scenario.stats.bytes_for("overlay.maintenance")
    return [
        algorithm,
        label,
        report.metrics.micro_f1,
        report.metrics.macro_f1,
        lost,
        lookup_failures,
        counters.get("churn_leaves", 0),
        maintenance,
    ]


def run_all():
    rows = []
    for label, churn, session in LEVELS:
        rows.append(measure("cempar", label, churn, session))
    rows.append(measure("pace", "heavy", "exponential", 200.0))
    rows.append(measure("centralized", "heavy", "exponential", 200.0))
    return rows


@pytest.mark.benchmark(group="e4-churn")
def test_e4_churn_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E4  Accuracy and losses under churn (exponential sessions)",
        [
            "algorithm",
            "churn",
            "microF1",
            "macroF1",
            "lost_uploads",
            "failed_queries",
            "leaves",
            "maint_bytes",
        ],
        rows,
    )
    write_results("e4_churn", table)

    cempar = {row[1]: row for row in rows if row[0] == "cempar"}
    # Static network is the upper envelope; degradation is graceful.
    assert cempar["none"][2] >= cempar["heavy"][2] - 0.05
    assert cempar["none"][4] == 0  # nothing lost without churn
    assert cempar["heavy"][6] > 0  # churn actually happened
