"""E3 — Scalability with network size (paper §1.1: "P2PDocTagger scales
well even in the presence of large amount of data or large number of
peers").

Network grows while per-user holdings stay fixed (more peers = more total
data, the organic growth mode).  Reported per N: accuracy and *per-peer*
communication.

Expected shape: P2P accuracy is stable or improves with N (the pooled
training set grows); per-peer cost grows slowly for CEMPaR (log-factor DHT
routes) while PACE's broadcast cost per peer grows linearly — its known
scalability trade-off.
"""

import os
import time

import pytest

from repro.bench.harness import ExperimentSetting, run_experiment
from repro.bench.reporting import format_table

from _common import write_results

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SIZES = (6, 12) if _SMOKE else (6, 12, 18, 24)
BASE = dict(docs_per_user=30, train_fraction=0.2, seed=0, max_eval_documents=50)

#: pure-messaging scalability: network sizes for the transport storm.  The
#: kernel/transport stack is the hot path here (no ML), which is what the
#: batched event kernel optimizes; 1000 nodes ~ the million-message regime.
TRANSPORT_SIZES = (100, 250) if _SMOKE else (100, 1000)
STORM_ROUNDS = 5 if _SMOKE else 20
STORM_FANOUT = 10


def run_all():
    rows = []
    for num_users in SIZES:
        for algorithm in ("cempar", "pace"):
            result = run_experiment(
                ExperimentSetting(
                    algorithm=algorithm, num_users=num_users, **BASE
                )
            )
            per_peer_bytes = result.total_bytes // num_users
            rows.append(
                [
                    algorithm,
                    num_users,
                    result.micro_f1,
                    result.macro_f1,
                    per_peer_bytes,
                ]
            )
    return rows


@pytest.mark.benchmark(group="e3-scalability")
def test_e3_scalability_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E3  Scalability with number of peers (fixed docs/user)",
        ["algorithm", "peers", "microF1", "macroF1", "bytes/peer"],
        rows,
    )
    write_results("e3_scalability", table)

    cempar = {row[1]: row for row in rows if row[0] == "cempar"}
    pace = {row[1]: row for row in rows if row[0] == "pace"}
    # Accuracy does not collapse as the network grows.
    assert cempar[SIZES[-1]][2] >= cempar[SIZES[0]][2] - 0.1
    # PACE per-peer broadcast cost grows with N; CEMPaR grows slower.
    assert pace[SIZES[-1]][4] > pace[SIZES[0]][4]
    cempar_growth = cempar[SIZES[-1]][4] / max(1, cempar[SIZES[0]][4])
    pace_growth = pace[SIZES[-1]][4] / max(1, pace[SIZES[0]][4])
    assert cempar_growth < pace_growth


# ---------------------------------------------------------------------------
# Transport-layer scalability: raw simulated-message throughput at large N.
# ---------------------------------------------------------------------------


def run_transport_storm(num_nodes, rounds=STORM_ROUNDS, fanout=STORM_FANOUT,
                        seed=3):
    """Drive ``rounds`` same-tick broadcast storms through the transport.

    Every node sends ``fanout`` messages per round in one batched block —
    the delivery pattern PACE-style propagation generates, minus the ML, so
    wall-clock isolates the kernel+transport stack.
    """
    from repro.sim.engine import Simulator
    from repro.sim.messages import Message
    from repro.sim.network import PhysicalNetwork
    from repro.sim.stats import StatsCollector
    from repro.sim.transport import Transport

    simulator = Simulator(seed=seed)
    stats = StatsCollector()
    network = PhysicalNetwork(simulator, stats=stats)
    transport = Transport(network, stats=stats)
    delivered = [0]

    def handler(message):
        delivered[0] += 1

    for node in range(num_nodes):
        network.register(node, handler)

    payload = "x" * 160
    size = 40 + len(payload)
    for round_index in range(rounds):
        block = []
        for src in range(num_nodes):
            for k in range(fanout):
                dst = (src + 1 + (round_index * fanout + k) * 7) % num_nodes
                if dst == src:
                    dst = (dst + 1) % num_nodes
                block.append(
                    Message(src=src, dst=dst, msg_type="storm",
                            payload=payload, size_bytes=size)
                )
        transport.send_batch(block)
        simulator.run()
    return stats, delivered[0]


def run_transport_rows():
    rows = []
    for num_nodes in TRANSPORT_SIZES:
        start = time.perf_counter()
        stats, delivered = run_transport_storm(num_nodes)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                num_nodes,
                stats.total_messages,
                delivered,
                round(elapsed, 3),
                int(stats.total_messages / max(elapsed, 1e-9)),
            ]
        )
    return rows


@pytest.mark.benchmark(group="e3-scalability")
def test_e3_transport_scalability(benchmark):
    rows = benchmark.pedantic(run_transport_rows, rounds=1, iterations=1)
    table = format_table(
        "E3b  Transport throughput (batched kernel, no ML)",
        ["nodes", "messages", "delivered", "seconds", "msgs/sec"],
        rows,
    )
    write_results("e3_transport_scalability", table)

    for num_nodes, messages, delivered, _seconds, _rate in rows:
        expected = num_nodes * STORM_FANOUT * STORM_ROUNDS
        assert messages == expected
        assert delivered == expected  # no loss, all nodes up
