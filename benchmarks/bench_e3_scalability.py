"""E3 — Scalability with network size (paper §1.1: "P2PDocTagger scales
well even in the presence of large amount of data or large number of
peers").

Network grows while per-user holdings stay fixed (more peers = more total
data, the organic growth mode).  Reported per N: accuracy and *per-peer*
communication.

Expected shape: P2P accuracy is stable or improves with N (the pooled
training set grows); per-peer cost grows slowly for CEMPaR (log-factor DHT
routes) while PACE's broadcast cost per peer grows linearly — its known
scalability trade-off.
"""

import os
import time

import pytest

from repro.bench.harness import ExperimentSetting, run_experiment
from repro.bench.reporting import format_table

from repro.envutil import env_flag

from _common import (
    RESULTS_DIR,
    cpu_count,
    peak_rss_mb,
    write_bench_trajectory,
    write_results,
)

_SMOKE = env_flag("REPRO_BENCH_SMOKE")

SIZES = (6, 12) if _SMOKE else (6, 12, 18, 24)
BASE = dict(docs_per_user=30, train_fraction=0.2, seed=0, max_eval_documents=50)

#: pure-messaging scalability: network sizes for the transport storm.  The
#: kernel/transport stack is the hot path here (no ML), which is what the
#: batched event kernel optimizes; 1000 nodes ~ the million-message regime.
TRANSPORT_SIZES = (100, 250) if _SMOKE else (100, 1000)
STORM_ROUNDS = 5 if _SMOKE else 20
STORM_FANOUT = 10
#: churned storm parameters: aggressive leave/rejoin so liveness flips
#: visibly inside a short run (ROADMAP: measure cancellation-set overhead).
STORM_CHURN_SESSION = 6.0
STORM_CHURN_DOWNTIME = 2.0
STORM_ROUND_WINDOW = 2.0  # virtual seconds advanced per churned round

#: broadcast-round scalability: PACE-style model propagation at large
#: membership, where per-recipient Outcome/Message bookkeeping used to
#: dominate.  ``senders`` origins each broadcast one payload to every
#: member; scalar vs vectorized recipient bookkeeping is compared on
#: byte-identical workloads.
BROADCAST_MEMBERS = 500 if _SMOKE else 10_000
BROADCAST_SENDERS = 5 if _SMOKE else 20


def run_all():
    rows = []
    for num_users in SIZES:
        for algorithm in ("cempar", "pace"):
            result = run_experiment(
                ExperimentSetting(
                    algorithm=algorithm, num_users=num_users, **BASE
                )
            )
            per_peer_bytes = result.total_bytes // num_users
            rows.append(
                [
                    algorithm,
                    num_users,
                    result.micro_f1,
                    result.macro_f1,
                    per_peer_bytes,
                ]
            )
    return rows


@pytest.mark.benchmark(group="e3-scalability")
def test_e3_scalability_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    headers = ["algorithm", "peers", "microF1", "macroF1", "bytes/peer"]
    table = format_table(
        "E3  Scalability with number of peers (fixed docs/user)",
        headers,
        rows,
    )
    write_results("e3_scalability", table, headers=headers, rows=rows)

    cempar = {row[1]: row for row in rows if row[0] == "cempar"}
    pace = {row[1]: row for row in rows if row[0] == "pace"}
    # Accuracy does not collapse as the network grows.
    assert cempar[SIZES[-1]][2] >= cempar[SIZES[0]][2] - 0.1
    # PACE per-peer broadcast cost grows with N; CEMPaR grows slower.
    assert pace[SIZES[-1]][4] > pace[SIZES[0]][4]
    cempar_growth = cempar[SIZES[-1]][4] / max(1, cempar[SIZES[0]][4])
    pace_growth = pace[SIZES[-1]][4] / max(1, pace[SIZES[0]][4])
    assert cempar_growth < pace_growth


# ---------------------------------------------------------------------------
# Transport-layer scalability: raw simulated-message throughput at large N.
# ---------------------------------------------------------------------------


def run_transport_storm(num_nodes, rounds=STORM_ROUNDS, fanout=STORM_FANOUT,
                        seed=3, churn=False):
    """Drive ``rounds`` same-tick broadcast storms through the transport.

    Every node sends ``fanout`` messages per round in one batched block —
    the delivery pattern PACE-style propagation generates, minus the ML, so
    wall-clock isolates the kernel+transport stack.

    With ``churn`` a :class:`ChurnDriver` flips node liveness throughout the
    run: down sources silently drop their sends, deliveries to down nodes
    land undeliverable, and the churn bookkeeping events (leave/rejoin
    cycles plus their cancellation-set churn in the heap) ride the same
    queue as the storm — the overhead this variant exists to measure.
    Each churned round advances a bounded virtual-time window (the queue
    never drains under churn), then a settle window lets stragglers land.
    Returns (stats, delivered_count, sent_count, driver-or-None).
    """
    from repro.sim.churn import ChurnDriver, ExponentialChurn
    from repro.sim.engine import Simulator
    from repro.sim.messages import Message
    from repro.sim.network import PhysicalNetwork
    from repro.sim.stats import StatsCollector
    from repro.sim.transport import Transport

    simulator = Simulator(seed=seed)
    stats = StatsCollector()
    network = PhysicalNetwork(simulator, stats=stats)
    transport = Transport(network, stats=stats)
    delivered = [0]

    def handler(message):
        delivered[0] += 1

    for node in range(num_nodes):
        network.register(node, handler)

    driver = None
    if churn:
        driver = ChurnDriver(
            simulator,
            network,
            ExponentialChurn(STORM_CHURN_SESSION, STORM_CHURN_DOWNTIME),
        )
        driver.start(list(range(num_nodes)))

    payload = "x" * 160
    size = 40 + len(payload)
    sent = 0
    for round_index in range(rounds):
        block = []
        for src in range(num_nodes):
            for k in range(fanout):
                dst = (src + 1 + (round_index * fanout + k) * 7) % num_nodes
                if dst == src:
                    dst = (dst + 1) % num_nodes
                block.append(
                    Message(src=src, dst=dst, msg_type="storm",
                            payload=payload, size_bytes=size)
                )
        sent += sum(1 for o in transport.send_batch(block) if o.sent)
        if churn:
            simulator.run(until=simulator.now + STORM_ROUND_WINDOW)
        else:
            simulator.run()
    if churn:
        driver.stop()
        # Settle window: any still-in-flight delivery is due well within it.
        simulator.run(until=simulator.now + 5.0)
    return stats, delivered[0], sent, driver


def run_transport_rows():
    rows = []
    for num_nodes in TRANSPORT_SIZES:
        for churn in (False, True):
            start = time.perf_counter()
            stats, delivered, sent, driver = run_transport_storm(
                num_nodes, churn=churn
            )
            elapsed = time.perf_counter() - start
            undeliverable = stats.counters["messages_undeliverable"]
            rows.append(
                [
                    num_nodes,
                    "churn" if churn else "all-up",
                    stats.total_messages,
                    delivered,
                    undeliverable,
                    driver.leave_count + driver.join_count if driver else 0,
                    round(elapsed, 3),
                    int(stats.total_messages / max(elapsed, 1e-9)),
                ]
            )
    return rows


@pytest.mark.benchmark(group="e3-scalability")
def test_e3_transport_scalability(benchmark):
    rows = benchmark.pedantic(run_transport_rows, rounds=1, iterations=1)
    headers = [
        "nodes", "liveness", "messages", "delivered", "undeliverable",
        "churn_events", "seconds", "msgs/sec",
    ]
    table = format_table(
        "E3b  Transport throughput (batched kernel, no ML; churned rows "
        "measure cancellation-set overhead vs all-up)",
        headers,
        rows,
    )
    write_results("e3_transport_scalability", table, headers=headers, rows=rows)

    by_key = {(row[0], row[1]): row for row in rows}
    for num_nodes in TRANSPORT_SIZES:
        expected = num_nodes * STORM_FANOUT * STORM_ROUNDS
        all_up = by_key[(num_nodes, "all-up")]
        churned = by_key[(num_nodes, "churn")]
        # All-up: every message sent and delivered, nothing undeliverable.
        assert all_up[2] == expected
        assert all_up[3] == expected and all_up[4] == 0
        # Churn: down sources never send, so charged messages drop below the
        # all-up volume; the delivery gap is exactly the undeliverable set.
        assert churned[5] > 0, "churn never fired — lengthen the run"
        assert churned[2] < expected
        assert churned[3] < churned[2]
        assert churned[3] + churned[4] == churned[2]


# ---------------------------------------------------------------------------
# Broadcast-round scalability: vectorized recipient bookkeeping at 10k peers.
# ---------------------------------------------------------------------------


def run_broadcast_round(num_members, senders, scalar, seed=3, codec=None):
    """One PACE-style propagation round at large membership.

    ``senders`` origins each broadcast one 256-byte payload to all
    ``num_members`` members and consume the delivered set (what PACE's
    bundle store does); the round then drains.  ``scalar`` forces the
    message-per-recipient path (the PR 1 stack) — both paths produce
    byte-identical stats, so the digest doubles as a correctness check.
    ``codec`` selects a wire-format codec table (accounting-only; the
    event stream is identical across the whole sweep).
    """
    from repro.sim.codec import make_codec_table
    from repro.sim.engine import Simulator
    from repro.sim.network import PhysicalNetwork
    from repro.sim.stats import StatsCollector
    from repro.sim.transport import Transport

    simulator = Simulator(seed=seed)
    stats = StatsCollector()
    network = PhysicalNetwork(simulator, stats=stats)
    transport = Transport(
        network,
        stats=stats,
        codec=make_codec_table(codec) if codec else None,
    )
    transport.scalar_broadcast = scalar
    delivered = [0]

    def handler(message):
        delivered[0] += 1

    for node in range(num_members):
        network.register(node, handler)
    recipients = list(range(num_members))
    payload = "w" * 256

    start = time.perf_counter()
    stored = 0
    for origin in range(senders):
        result = transport.broadcast(
            origin, "pace.model_broadcast", payload, recipients=recipients
        )
        stored += len(result.delivered_to())
    simulator.run()
    elapsed = time.perf_counter() - start
    return elapsed, stats, delivered[0], stored


def run_broadcast_rows():
    rows = []
    expected = BROADCAST_SENDERS * (BROADCAST_MEMBERS - 1)
    for label, scalar in (("scalar (PR1)", True), ("vectorized", False)):
        # Best of two timings per path: one warmup-and-measure pair keeps
        # the speedup ratio stable on noisy CI runners.
        best, stats, delivered, stored = min(
            (
                run_broadcast_round(BROADCAST_MEMBERS, BROADCAST_SENDERS, scalar)
                for _ in range(2)
            ),
            key=lambda r: r[0],
        )
        assert delivered == stored == expected
        rows.append(
            [
                BROADCAST_MEMBERS,
                label,
                stats.total_messages,
                delivered,
                round(best, 3),
                int(stats.total_messages / max(best, 1e-9)),
                stats.digest()[:16],
            ]
        )
    return rows


@pytest.mark.benchmark(group="e3-scalability")
def test_e3_broadcast_round_scalability(benchmark):
    rows = benchmark.pedantic(run_broadcast_rows, rounds=1, iterations=1)
    headers = [
        "members", "path", "messages", "delivered", "seconds", "msgs/sec",
        "stats_digest",
    ]
    table = format_table(
        f"E3c  Broadcast round at {BROADCAST_MEMBERS} members "
        f"({BROADCAST_SENDERS} senders)",
        headers,
        rows,
    )
    write_results("e3_broadcast_round", table, headers=headers, rows=rows)

    scalar_row = next(r for r in rows if r[1].startswith("scalar"))
    vector_row = next(r for r in rows if r[1] == "vectorized")
    # Same workload, byte-identical stats — only wall-clock may differ.
    assert scalar_row[6] == vector_row[6]
    speedup = scalar_row[4] / max(vector_row[4], 1e-9)
    if not _SMOKE:
        # Acceptance bar: the 10k-member round is >= 2x faster than the
        # PR 1 message-per-recipient stack.
        assert speedup >= 2.0, f"broadcast speedup {speedup:.2f}x < 2x"


# ---------------------------------------------------------------------------
# E3d codec axis: the E3c broadcast round under each wire-format codec,
# scalar and vectorized paths digest-checked against each other.
# ---------------------------------------------------------------------------


def run_broadcast_codec_rows(codecs):
    # The workload's msg_type is pace's broadcast; importing the protocol
    # module registers its traffic class so the tuned table dispatches.
    import repro.p2pclass.pace  # noqa: F401

    rows = []
    for codec in codecs:
        per_path = {}
        for label, scalar in (("scalar", True), ("vectorized", False)):
            elapsed, stats, delivered, _ = run_broadcast_round(
                BROADCAST_MEMBERS, BROADCAST_SENDERS, scalar, codec=codec
            )
            per_path[label] = stats
            rows.append(
                [
                    codec,
                    label,
                    stats.total_messages,
                    stats.total_bytes,
                    stats.total_wire_bytes,
                    round(elapsed, 3),
                    stats.digest()[:16],
                ]
            )
        # Byte-identical including the wire dimension, at scale — the
        # vectorized block arithmetic must match per-message recording.
        assert (
            per_path["scalar"].fingerprint_bytes()
            == per_path["vectorized"].fingerprint_bytes()
        )
    return rows


@pytest.mark.benchmark(group="e3-scalability")
def test_e3_broadcast_codec_axis(benchmark, request):
    from repro.sim.codec import codec_names

    selected = request.config.getoption("--codec")
    codecs = (selected,) if selected else codec_names()
    rows = benchmark.pedantic(
        run_broadcast_codec_rows, args=(codecs,), rounds=1, iterations=1
    )
    headers = [
        "codec", "path", "messages", "raw_bytes", "wire_bytes", "seconds",
        "stats_digest",
    ]
    table = format_table(
        f"E3d  Broadcast round codec axis at {BROADCAST_MEMBERS} members",
        headers,
        rows,
    )
    write_results("e3_broadcast_codec_axis", table, headers=headers, rows=rows)

    raws = {row[3] for row in rows}
    assert len(raws) == 1  # codecs never change the raw dimension
    for row in rows:
        if row[0] == "identity":
            assert row[4] == row[3]
        else:
            assert row[4] < row[3], row


# ---------------------------------------------------------------------------
# E3e sharded-storm axis: the transport storm through the K-shard kernel
# (repro.sim.shard).  Every row must be byte-identical to the unsharded
# kernel; the mp executor's wall-clock is the sharding payoff, and the
# directory control plane's construction counters are the O(N/K) witness.
# ---------------------------------------------------------------------------

SHARDED_STORM_NODES = 100 if _SMOKE else 1000
SHARDED_STORM_ROUNDS = 5 if _SMOKE else 20
SHARDED_STORM_FANOUT = STORM_FANOUT  # 1000 x 10 x 20 = the 200k-message bar
SHARDED_STORM_SHARDS = 2 if _SMOKE else 4
#: the directory-mode scale-out axis (K ∈ {8, 16} at full size): SPMD
#: replication priced every worker O(N); the directory serves construction
#: so these shard counts become worth running.
DIRECTORY_STORM_SHARDS = (2,) if _SMOKE else (8, 16)
SHARDED_STORM_PAYLOAD_BYTES = 200


def _cpus():
    return cpu_count()


class _StormWorkload:
    """SPMD storm: every node fires one batched fanout block per round.

    Runs identically on the unsharded kernel and in every shard worker;
    under sharding each node's fire event is scheduled only on its owning
    shard, so send-side work (jitter draws, stats, scheduling) partitions
    across workers and cross-shard deliveries ride the exchange queues.
    Registration goes through the ownership gate
    (:meth:`Scenario.register_peer`): directory-mode workers materialize
    handlers only for owned peers.  Returns (delivered, construction_cost).

    A class carrying its parameters (not a closure) so the tcp executor
    can pickle it into worker processes.

    ``store_base`` attaches a :class:`~repro.sim.tracestore.TraceStore`
    (file ``{store_base}.{shard_id}``, so every worker writes its own) —
    the E3 ingest-overhead axis.  Only the path string is pickled; the
    store opens inside the worker.
    """

    def __init__(self, num_nodes, rounds, fanout,
                 payload_bytes=SHARDED_STORM_PAYLOAD_BYTES, store_base=None):
        self.num_nodes = num_nodes
        self.rounds = rounds
        self.fanout = fanout
        self.payload_bytes = payload_bytes
        self.store_base = store_base

    def __call__(self, scenario):
        from repro.sim.messages import Message

        store = None
        if self.store_base is not None:
            from repro.sim.tracestore import TraceStore

            store = TraceStore(
                f"{self.store_base}.{scenario.shard_id}",
                shard=scenario.shard_id,
            ).attach_scenario(scenario)

        num_nodes = self.num_nodes
        fanout = self.fanout
        payload_bytes = self.payload_bytes
        delivered = [0]

        def handler(message):
            delivered[0] += 1

        for node in range(num_nodes):
            scenario.register_peer(node, handler)
        transport = scenario.transport
        simulator = scenario.simulator

        def fire(src, round_index):
            block = []
            for k in range(fanout):
                dst = (src + 1 + (round_index * fanout + k) * 7) % num_nodes
                if dst == src:
                    dst = (dst + 1) % num_nodes
                block.append(
                    Message(src=src, dst=dst, msg_type="storm", payload=None,
                            size_bytes=payload_bytes)
                )
            transport.send_batch(block)

        owns = scenario.owns
        for round_index in range(self.rounds):
            at = float(round_index)
            for src in range(num_nodes):
                if owns(src):
                    simulator.schedule_at(at, fire, args=(src, round_index))
        simulator.run_until_idle(max_events=5_000_000)
        if store is not None:
            store.record_stats(scenario.stats)
            store.close()
        return delivered[0], scenario.construction_cost()


def _storm_workload(num_nodes, rounds, fanout, store_base=None):
    """Picklable SPMD storm workload (see :class:`_StormWorkload`)."""
    return _StormWorkload(num_nodes, rounds, fanout, store_base=store_base)


def _sharded_storm_config(num_nodes, shards, seed=3,
                          control_plane="replicated", wal=None, faults=None):
    from repro.sim.distribution import ShardSpec
    from repro.sim.scenario import ScenarioConfig

    return ScenarioConfig(
        num_peers=num_nodes,
        overlay="fullmesh",
        rng_mode="perpeer",
        jitter_floor=0.5,
        shards=shards,
        shard=ShardSpec(num_peers=num_nodes),
        control_plane=control_plane if shards else "replicated",
        wal=wal,
        faults=faults,
        seed=seed,
    )


def run_sharded_storm(num_nodes, shards, executor, rounds, fanout, seed=3,
                      control_plane="replicated", wal=None, store_base=None,
                      faults=None):
    """One sharded storm run; returns (elapsed, digest, delivered, windows,
    max-per-worker construction cost, exchange summary, fault counters)."""
    from repro.sim.shard import ShardedScenario

    workload = _storm_workload(num_nodes, rounds, fanout,
                               store_base=store_base)
    start = time.perf_counter()
    run = ShardedScenario(
        _sharded_storm_config(num_nodes, shards, seed, control_plane, wal,
                              faults),
        executor=executor,
    ).run(workload)
    elapsed = time.perf_counter() - start
    delivered = sum(result[0] for result in run.results)
    cost = {
        key: max(result[1][key] for result in run.results)
        for key in run.results[0][1]
    }
    return (
        elapsed, run.digest(), delivered, run.windows, cost,
        run.stats.exchange_summary(), dict(run.stats.faults),
    )


def run_unsharded_storm(num_nodes, rounds, fanout, seed=3, store_base=None):
    """The single-heap reference of the same storm (shards=0)."""
    from repro.sim.scenario import Scenario
    from repro.sim.shard import scenario_digest

    workload = _storm_workload(num_nodes, rounds, fanout,
                               store_base=store_base)
    start = time.perf_counter()
    scenario = Scenario(_sharded_storm_config(num_nodes, 0, seed))
    delivered, cost = workload(scenario)
    elapsed = time.perf_counter() - start
    return (
        elapsed,
        scenario_digest(scenario.stats, scenario.simulator.now),
        delivered,
        0,
        cost,
        {},
        {},
    )


def _storm_configs():
    """(label, shards, executor, control_plane, repeats, wal, pair, store,
    faults) per E3e row.  Rows sharing a ``pair`` tag are measured with
    their repeats interleaved run-for-run (see
    :func:`run_sharded_storm_rows`)."""
    nodes = SHARDED_STORM_NODES
    k = SHARDED_STORM_SHARDS
    configs = [
        # The trace-store axis: the unsharded storm with and without a
        # TraceStore ingesting every send attempt through the block-listener
        # API.  Best-of-three interleaved like the WAL pairs; the <10%
        # ingest-overhead bar divides the two minima, and the store row's
        # digest must join the all-equal set (ingest is accounting-only).
        ("unsharded", 0, None, "replicated", 3, False, "store", False, None),
        ("unsharded store", 0, None, "replicated", 3, False, "store", True,
         None),
        # The WAL axis: the same storms with every window barrier logged
        # (frames + cursors + deltas) to the write-ahead log.  Their digests
        # must join the all-equal set and their wall-clock prices the
        # checkpoint overhead against the matching no-WAL rows (<10% bar).
        # Each plain/WAL pair runs best-of-three with the repeats
        # interleaved, so the overhead ratio divides minima from the same
        # time neighborhood instead of rows measured minutes apart.
        (f"serial k{k}", k, "serial", "replicated", 3, False, "serial-wal",
         False, None),
        (f"serial k{k} wal", k, "serial", "replicated", 3, True,
         "serial-wal", False, None),
        (f"mp k{k}", k, "mp", "replicated", 3, False, "mp-wal", False, None),
        (f"mp k{k} wal", k, "mp", "replicated", 3, True, "mp-wal", False,
         None),
        # The tcp executor (PR 8): the same storm with shard workers as
        # socket-connected processes over localhost — prices the wire
        # protocol (frame blobs riding sync/decision messages through the
        # coordinator) against mp's shared-memory rings.  Digests must
        # join the all-equal set like every other row.
        (f"tcp k{k}", k, "tcp", "replicated", 2, False, None, False, None),
        (f"tcp k{k} dir", k, "tcp", "directory", 2, False, None, False,
         None),
        # The fault plane (PR 10): the same tcp storm with a seeded
        # worker-crash schedule.  One worker calls os._exit at a window
        # barrier; the coordinator respawns the slot, replays the WAL
        # prefix, and the run's digest must still join the all-equal set —
        # the recovered fleet is byte-identical to the fault-free rows.
        # The row writes its own log so the shared WAL rows (whose size
        # and commit the assertions below inspect) stay unpolluted.
        (f"tcp k{k} faults", k, "tcp", "replicated", 1, True, None, False,
         "seed=3,crash@2"),
    ]
    for dk in DIRECTORY_STORM_SHARDS:
        # Best-of-two on the K=8 pair (it carries the speedup bar); the
        # K=16 oversubscription row is informational and runs once.
        repeats = 2 if dk <= 8 else 1
        configs.append((f"serial k{dk} dir", dk, "serial", "directory",
                        repeats, False, None, False, None))
        configs.append((f"mp k{dk} dir", dk, "mp", "directory", repeats,
                        False, None, False, None))
    return configs


def run_sharded_storm_rows():
    nodes = SHARDED_STORM_NODES
    rounds = SHARDED_STORM_ROUNDS
    fanout = SHARDED_STORM_FANOUT
    rows = []
    bench_entries = []
    wal_path = RESULTS_DIR / "e3_storm.wal"
    faults_wal_path = RESULTS_DIR / "e3_storm_faults.wal"
    store_base = RESULTS_DIR / "e3_storm_trace"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    configs = _storm_configs()

    def _clear_store_files():
        # Stores append on reopen; every timed repeat must ingest from a
        # clean file so the work (and the final row counts) stay constant.
        for stale in RESULTS_DIR.glob("e3_storm_trace.*"):
            stale.unlink()

    def _wal_file(faults):
        # The faulted row both writes and replays its log mid-run, so it
        # gets a dedicated file — the shared WAL (size/commit asserted
        # below) must reflect the clean mp/serial rows only.
        return faults_wal_path if faults else wal_path

    def run_once(shards, executor, plane, wal, store, faults):
        if store:
            _clear_store_files()
        base = str(store_base) if store else None
        if shards == 0:
            return run_unsharded_storm(nodes, rounds, fanout,
                                       store_base=base)
        return run_sharded_storm(
            nodes, shards, executor, rounds, fanout, control_plane=plane,
            # each repeat rewrites the log from scratch, so the timed
            # work always includes the full checkpoint stream
            wal=str(_wal_file(faults)) if wal else None,
            store_base=base,
            faults=faults,
        )

    # Measure, best of `repeats`.  Adjacent configs sharing a `pair` tag
    # alternate run-for-run (plain, wal, plain, wal, ...): the <10%
    # WAL-overhead bar divides two wall-clock minima, and back-to-back
    # pairs cancel the slow machine drift (page cache, thermal, noisy
    # neighbors) that otherwise dwarfs the true overhead when the two
    # rows are measured minutes apart.
    groups = []
    for config in configs:
        pair = config[6]
        if pair is not None and groups and groups[-1][0] == pair:
            groups[-1][1].append(config)
        else:
            groups.append((pair, [config]))
    best = {}
    for _pair, group in groups:
        samples = {config[0]: [] for config in group}
        for _ in range(group[0][4]):
            for (label, shards, executor, plane, _repeats, wal, _tag,
                 store, faults) in group:
                samples[label].append(
                    run_once(shards, executor, plane, wal, store, faults)
                )
        for label, runs in samples.items():
            best[label] = min(runs, key=lambda r: r[0])

    # The surviving store files (from the store pair's last repeat) merge
    # into the queryable artifact the nightly job uploads; the E2/E3-style
    # traffic table regenerates from the stored rows alone — no re-run.
    from repro.bench.reporting import traffic_rows_from_store
    from repro.sim.tracestore import merge_stores

    merged_path = RESULTS_DIR / "e3_storm_trace.db"
    if merged_path.exists():
        merged_path.unlink()
    shard_stores = sorted(RESULTS_DIR.glob("e3_storm_trace.*"))
    with merge_stores(merged_path, shard_stores) as merged:
        (_, store_rows) = merged.sql("SELECT COUNT(*) FROM messages")
        store_row_count = store_rows[0][0]
    traffic_headers, traffic_rows = traffic_rows_from_store(str(merged_path))
    write_results(
        "e3_storm_trace_traffic",
        format_table(
            "E3f  Storm traffic regenerated from the stored trace "
            f"({store_row_count} rows, {len(shard_stores)} shard store(s))",
            traffic_headers,
            traffic_rows,
        ),
        headers=traffic_headers,
        rows=traffic_rows,
    )
    assert store_row_count == nodes * rounds * fanout, (
        f"trace store captured {store_row_count} rows, expected "
        f"{nodes * rounds * fanout}"
    )

    for (label, shards, executor, plane, repeats, wal, _tag,
         store, fault_spec) in configs:
        (elapsed, digest, delivered, windows, cost, exchange,
         fault_counters) = best[label]
        if fault_spec:
            # The self-healing contract at bench scale: the schedule's
            # crash actually fired, a replacement was respawned and caught
            # up via WAL replay — and the digest still joins the all-equal
            # set asserted by the caller.
            assert fault_counters.get("respawns", 0) >= 1, (
                f"{label}: fault schedule {fault_spec!r} produced no "
                f"respawns ({fault_counters})"
            )
            assert fault_counters.get("replayed_windows", 0) >= 1, (
                f"{label}: recovery never replayed a WAL window "
                f"({fault_counters})"
            )
        messages = nodes * rounds * fanout
        rows.append(
            [
                nodes,
                label,
                messages,
                delivered,
                windows,
                cost["peers_materialized"],
                cost["overlay_entries_built"],
                exchange.get("records", 0),
                exchange.get("encoded_bytes", 0) // 1024,
                round(elapsed, 3),
                int(messages / max(elapsed, 1e-9)),
                digest[:16],
            ]
        )
        bench_entries.append(
            {
                "kernel": label,
                "shards": shards,
                "executor": executor or "local",
                "control_plane": plane,
                "nodes": nodes,
                "messages": messages,
                "seconds": round(elapsed, 3),
                "peak_rss_mb": peak_rss_mb(
                    children=(executor in ("mp", "tcp"))
                ),
                "peers_materialized_max": cost["peers_materialized"],
                "overlay_entries_built_max": cost["overlay_entries_built"],
                "exchange_records": exchange.get("records", 0),
                "exchange_encoded_bytes": exchange.get("encoded_bytes", 0),
                "exchange_queue_fallbacks": exchange.get(
                    "queue_fallbacks", 0
                ),
                "wal": wal,
                "wal_bytes": (
                    os.path.getsize(_wal_file(fault_spec)) if wal else 0
                ),
                "faults": fault_spec,
                "respawns": fault_counters.get("respawns", 0),
                "replayed_windows": fault_counters.get(
                    "replayed_windows", 0
                ),
                "trace_store": store,
                "trace_db_bytes": (
                    os.path.getsize(merged_path) if store else 0
                ),
                "stats_digest": digest[:16],
            }
        )
    if not _SMOKE:
        # Smoke runs (CI tier-1, local quick checks) shrink N and K, so
        # their entries are not comparable to the checked-in full-size
        # baseline — only full runs refresh BENCH_e3.json.
        write_bench_trajectory(
            "e3", bench_entries,
            context={"smoke": False, "rounds": rounds, "fanout": fanout},
        )
    return rows


@pytest.mark.benchmark(group="e3-scalability")
def test_e3_sharded_storm(benchmark):
    rows = benchmark.pedantic(run_sharded_storm_rows, rounds=1, iterations=1)
    headers = [
        "nodes", "kernel", "messages", "delivered", "windows", "peers_mat",
        "ovl_built", "xch_recs", "xch_kb", "seconds", "msgs/sec",
        "stats_digest",
    ]
    table = format_table(
        f"E3e  Sharded storm at {SHARDED_STORM_NODES} nodes "
        f"({SHARDED_STORM_NODES * SHARDED_STORM_ROUNDS * SHARDED_STORM_FANOUT}"
        f" messages; K={SHARDED_STORM_SHARDS} replicated, "
        f"K∈{DIRECTORY_STORM_SHARDS} directory; peers_mat/ovl_built are "
        "max per worker, xch_* the SoA exchange volume)",
        headers,
        rows,
    )
    write_results("e3_sharded_storm", table, headers=headers, rows=rows)

    nodes = SHARDED_STORM_NODES
    expected = nodes * SHARDED_STORM_ROUNDS * SHARDED_STORM_FANOUT
    # The sharding theorem at bench scale: every kernel shape — replicated
    # or directory-served — produces byte-identical stats digests and full
    # delivery.
    digests = {row[11] for row in rows}
    assert len(digests) == 1, f"kernel shapes diverged: {rows}"
    for row in rows:
        assert row[3] == expected
    # Digest lineage: the storm's stats digest is pinned against the
    # checked-in baseline (the dd230f743b050a6e full-size lineage and its
    # smoke-size companion) so an exchange-path change that silently
    # alters observables fails CI here, not in a later golden refresh.
    # Smoke runs check their own pinned digest and never touch the
    # full-size BENCH baseline.
    import json as _json
    from pathlib import Path

    baseline = _json.loads(
        (Path(__file__).parent / "results" / "e3_smoke_digest.json")
        .read_text()
    )
    expected_digest = (
        baseline["smoke_digest"] if _SMOKE else baseline["full_digest"]
    )
    assert digests == {expected_digest}, (
        f"storm stats digest {digests} departed from the checked-in "
        f"{'smoke' if _SMOKE else 'full'} baseline {expected_digest}; if "
        "the change is intentional, refresh "
        "benchmarks/results/e3_smoke_digest.json"
    )
    # Cross-shard exchange actually flowed on every sharded row.
    for row in rows:
        if not row[1].startswith("unsharded"):
            assert row[7] > 0, f"no exchange records on {row[1]}"

    by_label = {row[1]: row for row in rows}
    # The O(N/K) construction contract, asserted numerically: replicated
    # workers each materialize all N peers and build the whole overlay;
    # directory workers materialize ceil(N/K) and build zero entries.
    assert by_label["unsharded"][5] == nodes
    assert by_label[f"serial k{SHARDED_STORM_SHARDS}"][5] == nodes
    for dk in DIRECTORY_STORM_SHARDS:
        dir_row = by_label[f"mp k{dk} dir"]
        assert dir_row[5] == -(-nodes // dk), (
            f"directory k{dk}: peers materialized per worker should be "
            f"ceil(N/K), got {dir_row[5]}"
        )
        assert dir_row[6] == 0, "directory views must not build entries"

    # The WAL rows carry the same digest (asserted above, they are in the
    # all-equal set) and leave a committed, resumable log behind.
    from repro.sim.wal import WalReader

    wal_reader = WalReader(str(RESULTS_DIR / "e3_storm.wal"))
    wal_row = by_label[f"mp k{SHARDED_STORM_SHARDS} wal"]
    assert wal_reader.commit is not None
    assert wal_reader.commit["windows"] == wal_row[4]
    assert len(wal_reader.windows) == wal_row[4]
    if not _SMOKE:
        # The checkpoint overhead bar: logging every window barrier must
        # cost < 10% wall-time against the matching no-WAL row.
        for executor in ("serial", "mp"):
            plain = by_label[f"{executor} k{SHARDED_STORM_SHARDS}"][9]
            logged = by_label[f"{executor} k{SHARDED_STORM_SHARDS} wal"][9]
            overhead = logged / max(plain, 1e-9) - 1.0
            assert overhead < 0.10, (
                f"{executor} WAL overhead {overhead:.1%} >= 10% "
                f"({logged:.3f}s vs {plain:.3f}s)"
            )
        # The trace-store ingest bar: streaming every send attempt into
        # the columnar store must cost < 10% wall-time against the
        # matching no-store row (proves ingest keeps up with the
        # vectorized transport instead of quietly serializing it).
        plain = by_label["unsharded"][9]
        ingest = by_label["unsharded store"][9]
        store_overhead = ingest / max(plain, 1e-9) - 1.0
        assert store_overhead < 0.10, (
            f"trace-store ingest overhead {store_overhead:.1%} >= 10% "
            f"({ingest:.3f}s vs {plain:.3f}s)"
        )

    serial_row = by_label[f"serial k{SHARDED_STORM_SHARDS}"]
    mp_row = by_label[f"mp k{SHARDED_STORM_SHARDS}"]
    speedup = serial_row[9] / max(mp_row[9], 1e-9)
    if not _SMOKE and _cpus() >= 4:
        # PR 4's bar: >= 1.5x over the lockstep serial reference with
        # >= 4 workers on >= 4 cores.  (On smaller runners the mp row still
        # verifies correctness; the parallel payoff needs parallel silicon.)
        assert speedup >= 1.5, f"sharded storm speedup {speedup:.2f}x < 1.5x"
    if not _SMOKE and _cpus() >= 8 and 8 in DIRECTORY_STORM_SHARDS:
        # The directory-mode scale-out bar: >= 2.5x mp-vs-serial at K=8 on
        # >= 8 cores, now that workers no longer pay O(N) control plane.
        dir_speedup = (
            by_label["serial k8 dir"][9]
            / max(by_label["mp k8 dir"][9], 1e-9)
        )
        assert dir_speedup >= 2.5, (
            f"directory storm speedup {dir_speedup:.2f}x < 2.5x at K=8"
        )
