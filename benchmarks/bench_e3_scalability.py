"""E3 — Scalability with network size (paper §1.1: "P2PDocTagger scales
well even in the presence of large amount of data or large number of
peers").

Network grows while per-user holdings stay fixed (more peers = more total
data, the organic growth mode).  Reported per N: accuracy and *per-peer*
communication.

Expected shape: P2P accuracy is stable or improves with N (the pooled
training set grows); per-peer cost grows slowly for CEMPaR (log-factor DHT
routes) while PACE's broadcast cost per peer grows linearly — its known
scalability trade-off.
"""

import pytest

from repro.bench.harness import ExperimentSetting, run_experiment
from repro.bench.reporting import format_table

from _common import write_results

SIZES = (6, 12, 18, 24)
BASE = dict(docs_per_user=30, train_fraction=0.2, seed=0, max_eval_documents=50)


def run_all():
    rows = []
    for num_users in SIZES:
        for algorithm in ("cempar", "pace"):
            result = run_experiment(
                ExperimentSetting(
                    algorithm=algorithm, num_users=num_users, **BASE
                )
            )
            per_peer_bytes = result.total_bytes // num_users
            rows.append(
                [
                    algorithm,
                    num_users,
                    result.micro_f1,
                    result.macro_f1,
                    per_peer_bytes,
                ]
            )
    return rows


@pytest.mark.benchmark(group="e3-scalability")
def test_e3_scalability_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E3  Scalability with number of peers (fixed docs/user)",
        ["algorithm", "peers", "microF1", "macroF1", "bytes/peer"],
        rows,
    )
    write_results("e3_scalability", table)

    cempar = {row[1]: row for row in rows if row[0] == "cempar"}
    pace = {row[1]: row for row in rows if row[0] == "pace"}
    # Accuracy does not collapse as the network grows.
    assert cempar[SIZES[-1]][2] >= cempar[SIZES[0]][2] - 0.1
    # PACE per-peer broadcast cost grows with N; CEMPaR grows slower.
    assert pace[SIZES[-1]][4] > pace[SIZES[0]][4]
    cempar_growth = cempar[SIZES[-1]][4] / max(1, cempar[SIZES[0]][4])
    pace_growth = pace[SIZES[-1]][4] / max(1, pace[SIZES[0]][4])
    assert cempar_growth < pace_growth
