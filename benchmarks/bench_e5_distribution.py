"""E5 — Data size / class distribution sweeps (paper §3: "we will vary the
data distribution on the peers by varying the size and class
distributions").

Class skew: users' interests drawn with decreasing Dirichlet concentration
(IID-ish -> sharply non-IID).  Size skew: the same corpus re-sharded across
peers uniformly vs Zipf.

Expected shape: class skew hurts local-only sharply (peers never see most
tags) and the collaborative methods mildly — collaboration is exactly the
hedge against skewed personal collections.  Size skew matters much less
than class skew.
"""

import pytest

from repro.bench.harness import ExperimentSetting, run_experiment, standard_corpus
from repro.bench.reporting import format_table
from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.sim.distribution import DataDistributor, ShardSpec

from _common import write_results

BASE = dict(num_users=12, docs_per_user=40, train_fraction=0.2, seed=0)
CONCENTRATIONS = (("iid-ish", 50.0), ("moderate", 0.5), ("sharp", 0.1))


def class_skew_rows():
    rows = []
    for label, concentration in CONCENTRATIONS:
        for algorithm in ("cempar", "pace", "local"):
            result = run_experiment(
                ExperimentSetting(
                    algorithm=algorithm,
                    interest_concentration=concentration,
                    **BASE,
                )
            )
            rows.append(
                ["class", label, algorithm, result.micro_f1, result.macro_f1]
            )
    return rows


def size_skew_rows():
    rows = []
    corpus = standard_corpus(num_users=12, seed=0, docs_per_user=40)
    for label, size_distribution in (("uniform", "uniform"), ("zipf", "zipf")):
        sharded = DataDistributor(
            ShardSpec(
                num_peers=12,
                size_distribution=size_distribution,
                zipf_exponent=1.2,
                seed=0,
            )
        ).distribute(corpus)
        for algorithm in ("cempar", "pace"):
            system = P2PDocTaggerSystem(
                sharded,
                SystemConfig(algorithm=algorithm, train_fraction=0.2, seed=0),
            )
            system.train()
            report = system.evaluate(max_documents=60)
            rows.append(
                [
                    "size",
                    label,
                    algorithm,
                    report.metrics.micro_f1,
                    report.metrics.macro_f1,
                ]
            )
    return rows


def run_all():
    return class_skew_rows() + size_skew_rows()


@pytest.mark.benchmark(group="e5-distribution")
def test_e5_distribution_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E5  Size and class distribution sweeps",
        ["axis", "setting", "algorithm", "microF1", "macroF1"],
        rows,
    )
    write_results("e5_distribution", table)

    class_rows = {
        (row[1], row[2]): row for row in rows if row[0] == "class"
    }
    # Sharp class skew hurts local-only macro hard; collaboration holds up.
    local_drop = (
        class_rows[("iid-ish", "local")][4] - class_rows[("sharp", "local")][4]
    )
    cempar_drop = (
        class_rows[("iid-ish", "cempar")][4]
        - class_rows[("sharp", "cempar")][4]
    )
    assert class_rows[("sharp", "cempar")][4] > class_rows[("sharp", "local")][4]
    # Size skew rows exist for both shapes and stay in a sane range.
    size_rows = [row for row in rows if row[0] == "size"]
    assert len(size_rows) == 4
    assert all(0.0 <= row[3] <= 1.0 for row in size_rows)
