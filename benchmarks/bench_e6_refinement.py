"""E6 — Tag refinement loop (paper §2, "Tag Refinement": corrections update
the classification models "to adapt to their personal preference for future
tagging").

Protocol: train, evaluate, then run refinement rounds — in each round users
correct a batch of held-out documents (ground-truth tags), the corrections
are folded into local training data, and the collaborative model retrains.
Accuracy is re-measured on untouched held-out documents after each round.

Expected shape: F1 rises monotonically (within noise) across rounds with
diminishing returns.
"""

import pytest

from repro.bench.harness import ExperimentSetting, build_system
from repro.bench.reporting import format_table

from _common import write_results

BASE = dict(num_users=10, docs_per_user=36, train_fraction=0.15, seed=0)
ROUNDS = 3
BATCH = 25


def run_refinement():
    system = build_system(ExperimentSetting(algorithm="pace", **BASE))
    system.train()
    # Hold out a fixed evaluation slice; refinements use *other* documents.
    eval_documents = system.test_corpus.documents[:50]
    refine_pool = system.test_corpus.documents[50:]
    system.refinement.retrain_every = 10 ** 9  # flush manually per round

    def evaluate():
        true_sets, predicted = [], []
        for document in eval_documents:
            origin = system._owner_to_peer[document.owner]
            scores = system.predict_scores(origin, document)
            true_sets.append(document.tags)
            predicted.append(system.policy.assign(scores))
        from repro.ml.metrics import micro_f1

        return micro_f1(true_sets, predicted, tags=system.corpus.tag_universe())

    rows = [[0, 0, evaluate()]]
    cursor = 0
    for round_index in range(1, ROUNDS + 1):
        batch = refine_pool[cursor : cursor + BATCH]
        cursor += BATCH
        for document in batch:
            peer = system.peer_of(document)
            peer.refine(document, sorted(document.tags))
        system.refinement.flush()
        rows.append([round_index, cursor, evaluate()])
    return rows


@pytest.mark.benchmark(group="e6-refinement")
def test_e6_refinement_table(benchmark):
    rows = benchmark.pedantic(run_refinement, rounds=1, iterations=1)
    table = format_table(
        "E6  Accuracy over refinement rounds (25 corrections/round)",
        ["round", "total_refined", "microF1"],
        rows,
    )
    write_results("e6_refinement", table)

    # Refinement helps: the final model beats the initial one.
    assert rows[-1][2] >= rows[0][2]
    # And the trend is not pathological (no round destroys the model).
    for previous, current in zip(rows, rows[1:]):
        assert current[2] >= previous[2] - 0.05
