"""A2 — Overlay ablation (paper §3: "topology of the P2P network" is one of
the varied parameters; P2PDMT supports structured and unstructured
overlays).

Measures, per overlay type and network size: lookup hop counts, lookup
success under stale routing tables (crash 25 % of nodes, no repair), and
success after one stabilization round.  For the unstructured overlay the
broadcast primitives are measured instead of lookups (its role in PACE).

Expected shape: DHT hops grow ~log N; success collapses partially when
tables are stale and recovers fully after stabilization; flooding reaches
everyone at higher message cost than gossip.
"""

import statistics

import pytest

from repro.bench.reporting import format_table
from repro.overlay.chord import ChordOverlay
from repro.overlay.idspace import key_id_for
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.pastry import PastryOverlay
from repro.overlay.unstructured import UnstructuredOverlay

from _common import write_results

SIZES = (32, 128)
LOOKUPS = 60


def build(overlay_type, n):
    if overlay_type == "chord":
        overlay = ChordOverlay()
    elif overlay_type == "kademlia":
        overlay = KademliaOverlay(seed=1)
    elif overlay_type == "pastry":
        overlay = PastryOverlay()
    else:
        overlay = UnstructuredOverlay(degree=4, seed=1)
    for address in range(n):
        overlay.join(address)
    stabilize = getattr(overlay, "stabilize", None)
    if callable(stabilize):
        stabilize()
    return overlay


def lookup_stats(overlay, n):
    hops, successes = [], 0
    for index in range(LOOKUPS):
        origin = index % n
        if origin not in overlay.members():
            origin = min(overlay.members())
        result = overlay.route(origin, key_id_for(f"key{index}"))
        hops.append(result.hops)
        successes += result.success
    return statistics.mean(hops), successes / LOOKUPS


def dht_rows(overlay_type):
    rows = []
    for n in SIZES:
        overlay = build(overlay_type, n)
        hops_fresh, success_fresh = lookup_stats(overlay, n)
        # Crash a quarter of the nodes; tables go stale.
        for address in range(0, n, 4):
            overlay.leave(address)
        hops_stale, success_stale = lookup_stats(overlay, n)
        overlay.stabilize()
        _, success_repaired = lookup_stats(overlay, n)
        rows.append(
            [
                overlay_type,
                n,
                hops_fresh,
                success_fresh,
                success_stale,
                success_repaired,
                overlay.staleness(),
            ]
        )
    return rows


def broadcast_rows():
    rows = []
    for n in SIZES:
        overlay = build("unstructured", n)
        flood = overlay.flood(0, ttl=10)
        gossip = overlay.gossip(0, fanout=3, rounds=12)
        rows.append(
            [
                "flood",
                n,
                flood.coverage(n),
                flood.messages,
            ]
        )
        rows.append(
            [
                "gossip",
                n,
                gossip.coverage(n),
                gossip.messages,
            ]
        )
    return rows


def run_all():
    dht = dht_rows("chord") + dht_rows("kademlia") + dht_rows("pastry")
    return dht, broadcast_rows()


@pytest.mark.benchmark(group="a2-overlay")
def test_a2_overlay_table(benchmark):
    dht, broadcast = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "A2a  DHT lookups: fresh / stale (25% crashed) / after stabilize",
        [
            "overlay",
            "N",
            "hops",
            "success_fresh",
            "success_stale",
            "success_repaired",
            "staleness_after",
        ],
        dht,
    )
    table += "\n" + format_table(
        "A2b  Unstructured broadcast primitives",
        ["primitive", "N", "coverage", "messages"],
        broadcast,
    )
    write_results("a2_overlay", table)

    chord = [row for row in dht if row[0] == "chord"]
    # Fresh lookups always succeed; repair restores success.
    assert all(row[3] == 1.0 for row in chord)
    assert all(row[5] >= row[4] for row in chord)
    # Hop counts grow sublinearly with N.
    assert chord[1][2] <= chord[0][2] * 3
    # Flooding covers the whole connected overlay.
    flood_rows = [row for row in broadcast if row[0] == "flood"]
    assert all(row[2] == 1.0 for row in flood_rows)
