"""E8 — Tag cloud structure (paper Fig. 4: "two clusters of highly
interconnected tags bridged by the word 'navigation'").

The generator plants concept groups with one bridge tag; after the system
auto-tags the held-out documents, the global tag cloud's co-occurrence
graph must recover that structure: multiple dense communities connected
through the bridge tag.

Reported: community count, size of the largest communities, whether the
planted bridge tag is among the detected bridges, and graph modularity.
"""

import networkx as nx
import pytest

from repro.bench.reporting import format_table
from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.data.delicious import DeliciousGenerator

from _common import write_results


def make_generator():
    return DeliciousGenerator(
        num_users=12,
        seed=3,
        num_tags=10,
        num_tag_groups=2,
        bridge_tags=1,
        within_group_bias=0.9,
        docs_per_user_range=(30, 30),
        vocabulary_size=600,
        topic_words_per_tag=35,
        doc_length_range=(30, 70),
    )


def run_all():
    generator = make_generator()
    planted_bridge = next(
        tag for tag in generator.tags if len(generator.groups_of(tag)) == 2
    )
    corpus = generator.generate()
    system = P2PDocTaggerSystem(
        corpus, SystemConfig(algorithm="cempar", train_fraction=0.2, seed=3)
    )
    system.train()
    system.auto_tag_all()
    cloud = system.global_tag_cloud()

    communities = cloud.communities()
    bridges = cloud.bridge_tags(top=3)
    modularity = nx.community.modularity(
        cloud.graph,
        [c for c in communities],
        weight="weight",
    ) if communities else 0.0
    sizes = sorted((len(c) for c in communities), reverse=True)
    row = [
        len(communities),
        sizes[0] if sizes else 0,
        sizes[1] if len(sizes) > 1 else 0,
        planted_bridge,
        ", ".join(bridges),
        planted_bridge in bridges,
        modularity,
    ]
    return [row], cloud


@pytest.mark.benchmark(group="e8-tagcloud")
def test_e8_tagcloud_table(benchmark):
    rows, cloud = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E8  Tag-cloud co-occurrence structure (Fig. 4 reproduction)",
        [
            "communities",
            "largest",
            "second",
            "planted_bridge",
            "detected_bridges",
            "bridge_found",
            "modularity",
        ],
        rows,
    )
    table += "\nASCII cloud: " + cloud.ascii_cloud() + "\n"
    write_results("e8_tagcloud", table)

    row = rows[0]
    assert row[0] >= 2  # at least two concept communities
    assert row[5] is True or row[4]  # the planted bridge is detected
