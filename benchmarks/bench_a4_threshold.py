"""A4 — Threshold policy ablation (the AutoTag decision rule).

Compares the fixed 0.5 threshold (the demo's default), fixed thresholds at
other operating points, top-k assignment, and per-tag thresholds tuned on
training scores (``P2PDocTaggerSystem.tune_thresholds``).

Expected shape: tuned per-tag thresholds beat any single fixed threshold on
macro-F1 (rare tags need laxer thresholds); top-k is competitive when k
matches the true mean tags/document.
"""

import pytest

from repro.bench.harness import ExperimentSetting, build_system
from repro.bench.reporting import format_table
from repro.core.multilabel import FixedThreshold, TopKPolicy
from repro.ml.metrics import MultiLabelReport

from _common import write_results

BASE = dict(num_users=12, docs_per_user=40, train_fraction=0.2, seed=0)


def evaluate_policy(system, policy):
    documents = system.test_corpus.documents[:60]
    true_sets, predicted = [], []
    for document in documents:
        origin = system._owner_to_peer[document.owner]
        scores = system.predict_scores(origin, document)
        true_sets.append(document.tags)
        predicted.append(policy.assign(scores))
    report = MultiLabelReport.compute(
        true_sets, predicted, tags=system.corpus.tag_universe()
    )
    return report.micro_f1, report.macro_f1, report.hamming_loss


def run_all():
    system = build_system(ExperimentSetting(algorithm="cempar", **BASE))
    system.train()
    rows = []
    for threshold in (0.3, 0.5, 0.7):
        micro, macro, hamming = evaluate_policy(
            system, FixedThreshold(threshold)
        )
        rows.append([f"fixed({threshold})", micro, macro, hamming])
    for k in (1, 2, 3):
        micro, macro, hamming = evaluate_policy(system, TopKPolicy(k=k))
        rows.append([f"top-{k}", micro, macro, hamming])
    system.tune_thresholds()
    micro, macro, hamming = evaluate_policy(system, system.policy)
    rows.append(["per-tag tuned", micro, macro, hamming])
    return rows


@pytest.mark.benchmark(group="a4-threshold")
def test_a4_threshold_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "A4  AutoTag assignment-policy ablation (CEMPaR scores)",
        ["policy", "microF1", "macroF1", "hamming"],
        rows,
    )
    write_results("a4_threshold", table)

    by_policy = {row[0]: row for row in rows}
    tuned = by_policy["per-tag tuned"]
    fixed_half = by_policy["fixed(0.5)"]
    # Tuning never loses much and typically helps macro-F1.
    assert tuned[2] >= fixed_half[2] - 0.05
    assert all(0.0 <= row[3] <= 1.0 for row in rows)
