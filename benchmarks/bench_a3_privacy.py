"""A3 — Privacy-preserving pluggability (paper §2: deploying a privacy-
preserving P2P classification algorithm makes P2PDocTagger inherit the
property).

Sweeps the privacy budget epsilon of :class:`PrivatePaceClassifier`
(Laplace-randomized model bundles) against plain PACE.

Expected shape: accuracy approaches plain PACE as epsilon grows (weak
privacy) and degrades as epsilon shrinks (strong privacy) — the standard
privacy/utility curve.  Traffic is unchanged: the randomized bundles have
the same wire size.
"""

import pytest

from repro.bench.harness import standard_corpus
from repro.bench.reporting import format_table
from repro.core.tagger import P2PDocTaggerSystem, SystemConfig
from repro.p2pclass.base import corpus_to_peer_data
from repro.p2pclass.pace import PaceClassifier, PaceConfig
from repro.p2pclass.private import PrivatePaceClassifier, PrivatePaceConfig
from repro.data.splits import per_user_split
from repro.ml.metrics import micro_f1, macro_f1
from repro.sim.distribution import ShardSpec
from repro.sim.scenario import Scenario, ScenarioConfig
from repro.text.vectorizer import PreprocessingPipeline

from _common import write_results

EPSILONS = (0.1, 0.5, 2.0, 10.0)
NUM_PEERS = 12


def setting():
    corpus = standard_corpus(num_users=NUM_PEERS, seed=0, docs_per_user=40)
    train, test = per_user_split(corpus, 0.2, seed=0)
    pipeline = PreprocessingPipeline(dimension=2 ** 16)
    peer_data = corpus_to_peer_data(train, pipeline)
    test_items = [
        (pipeline.process(d.text), d.tags, d.owner)
        for d in test.documents[:60]
    ]
    return peer_data, test_items, corpus.tag_universe()


def fresh_scenario():
    return Scenario(
        ScenarioConfig(
            num_peers=NUM_PEERS, shard=ShardSpec(num_peers=NUM_PEERS), seed=0
        )
    )


def evaluate(classifier, test_items, tags):
    true_sets, predicted = [], []
    for vector, doc_tags, owner in test_items:
        true_sets.append(doc_tags)
        predicted.append(classifier.predict_tags(owner, vector))
    return (
        micro_f1(true_sets, predicted, tags),
        macro_f1(true_sets, predicted, tags),
    )


def run_all():
    peer_data, test_items, tags = setting()
    rows = []
    plain = PaceClassifier(fresh_scenario(), peer_data, tags, PaceConfig())
    plain.train()
    micro, macro = evaluate(plain, test_items, tags)
    rows.append(["pace (no privacy)", "-", micro, macro,
                 plain.scenario.stats.total_bytes])
    for epsilon in EPSILONS:
        private = PrivatePaceClassifier(
            fresh_scenario(), peer_data, tags,
            PrivatePaceConfig(epsilon=epsilon),
        )
        private.train()
        micro, macro = evaluate(private, test_items, tags)
        rows.append(
            ["private-pace", epsilon, micro, macro,
             private.scenario.stats.total_bytes]
        )
    return rows


@pytest.mark.benchmark(group="a3-privacy")
def test_a3_privacy_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "A3  Privacy budget sweep (Laplace-randomized PACE bundles)",
        ["algorithm", "epsilon", "microF1", "macroF1", "total_bytes"],
        rows,
    )
    write_results("a3_privacy", table)

    plain = rows[0]
    by_eps = {row[1]: row for row in rows[1:]}
    # Weak privacy converges to plain PACE; strong privacy costs accuracy.
    assert by_eps[10.0][2] >= by_eps[0.1][2]
    assert plain[2] >= by_eps[0.1][2] - 0.02
    # Randomization does not change the wire size.
    assert abs(by_eps[2.0][4] - plain[4]) < 0.2 * plain[4]
