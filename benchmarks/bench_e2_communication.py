"""E2 — Communication cost (paper §1.1: "reduces computation and
communication cost"; §2's privacy/efficiency discussion).

Measures, per strategy: training-phase traffic, query-phase traffic for a
fixed prediction workload, and load concentration (share of all received
bytes at the busiest peer — the centralized server's bottleneck).

Expected shape: local-only is free but inaccurate (E1); centralized is
cheap in total bytes at this scale but concentrates ~100 % of traffic at
one server and pays per-query round trips forever; CEMPaR's one-shot SV
upload spreads load across super-peers with cheap vector queries; PACE pays
the broadcast up front and then predicts for free.
"""


import pytest

from repro.bench.harness import ExperimentSetting, build_system
from repro.bench.reporting import format_table
from repro.sim.codec import codec_names

from repro.envutil import env_flag

from _common import write_results

_SMOKE = env_flag("REPRO_BENCH_SMOKE")

BASE = dict(
    num_users=6 if _SMOKE else 12,
    docs_per_user=20 if _SMOKE else 40,
    train_fraction=0.2,
    seed=0,
)
QUERY_COUNT = 10 if _SMOKE else 30


def measure(algorithm: str):
    system = build_system(ExperimentSetting(algorithm=algorithm, **BASE))
    system.train()
    stats = system.scenario.stats
    train_bytes = stats.total_bytes
    train_messages = stats.total_messages
    received = stats.per_peer_received
    concentration = (
        max(received.values()) / sum(received.values())
        if received else 0.0
    )
    documents = system.test_corpus.documents[:QUERY_COUNT]
    num_peers = len(system.peers)
    for index, document in enumerate(documents):
        # Symmetric query workload: every peer tags some documents.
        origin = index % num_peers
        system.predict_scores(origin, document)
    query_bytes = stats.total_bytes - train_bytes
    return [
        algorithm,
        train_messages,
        train_bytes,
        query_bytes // max(1, len(documents)),
        concentration,
    ]


def run_all():
    return [
        measure(algorithm)
        for algorithm in (
            "centralized", "cempar", "nbagg", "pace", "local", "popularity"
        )
    ]


@pytest.mark.benchmark(group="e2-communication")
def test_e2_communication_table(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    headers = [
        "algorithm",
        "train_msgs",
        "train_bytes",
        "bytes/query",
        "max_rx_share",
    ]
    table = format_table(
        f"E2  Communication cost (training + {QUERY_COUNT} predictions)",
        headers,
        rows,
    )
    write_results("e2_communication", table, headers=headers, rows=rows)

    by_algorithm = {row[0]: row for row in rows}
    # The centralized server is the bottleneck; P2P spreads load.
    assert by_algorithm["centralized"][4] > by_algorithm["cempar"][4]
    # PACE predictions are free; centralized ones are not.
    assert by_algorithm["pace"][3] == 0
    assert by_algorithm["centralized"][3] > 0
    # Local-only never communicates.
    assert by_algorithm["local"][2] == 0


# ---------------------------------------------------------------------------
# Codec sweep: the same training traffic under every wire-format codec
# table.  Codecs are accounting-only, so the raw dimension is constant down
# the sweep and only the wire column moves — the ratio column is the
# deployment knob the paper's byte counts were missing.
# ---------------------------------------------------------------------------

SWEEP_ALGORITHMS = ("pace", "cempar")


def measure_codec(codec: str, algorithm: str):
    system = build_system(
        ExperimentSetting(algorithm=algorithm, codec=codec, **BASE)
    )
    system.train()
    stats = system.scenario.stats
    raw = stats.total_bytes
    wire = stats.total_wire_bytes
    return [
        codec,
        algorithm,
        stats.total_messages,
        raw,
        wire,
        round(wire / raw, 3) if raw else 1.0,
    ]


@pytest.mark.benchmark(group="e2-communication")
def test_e2_codec_sweep(benchmark, request):
    selected = request.config.getoption("--codec")
    codecs = (selected,) if selected else codec_names()

    def run_sweep():
        return [
            measure_codec(codec, algorithm)
            for codec in codecs
            for algorithm in SWEEP_ALGORITHMS
        ]

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    headers = [
        "codec", "algorithm", "train_msgs", "raw_bytes", "wire_bytes", "ratio",
    ]
    table = format_table(
        "E2b  Training communication under wire-format codecs", headers, rows
    )
    write_results("e2_codec_sweep", table, headers=headers, rows=rows)

    # Fixed-seed determinism: repeating a row reproduces its wire total.
    first = rows[0]
    again = measure_codec(first[0], first[1])
    assert again == first

    for row in rows:
        if row[0] == "identity":
            assert row[4] == row[3]
        else:
            # Every non-identity codec beats raw on training traffic.
            assert row[4] < row[3], row
    # Raw bytes are codec-independent (accounting-only guarantee).
    for algorithm in SWEEP_ALGORITHMS:
        raws = {row[3] for row in rows if row[1] == algorithm}
        assert len(raws) == 1
