"""E7 — Suggestion quality and the Confidence slider (paper Fig. 3).

Two views of the Suggestion Cloud data:

- ranked quality: precision@k / recall@k of the suggested tags against the
  users' true tags, for k in {1, 3, 5};
- the slider: sweeping the confidence threshold trades precision (among
  kept suggestions) against how many true tags get struck out — exactly the
  behaviour the Fig. 3 slider exposes.

Expected shape: precision@1 > precision@3 > precision@5; recall grows with
k; raising the threshold raises kept-precision and lowers kept-recall.
"""

import pytest

from repro.bench.harness import ExperimentSetting, build_system
from repro.bench.reporting import format_table
from repro.ml.metrics import mean_precision_at_k, mean_recall_at_k

from _common import write_results

BASE = dict(num_users=12, docs_per_user=40, train_fraction=0.2, seed=0)
KS = (1, 3, 5)
THRESHOLDS = (0.1, 0.3, 0.5, 0.7)


def run_all():
    system = build_system(ExperimentSetting(algorithm="cempar", **BASE))
    system.train()
    documents = system.test_corpus.documents[:40]
    true_sets, ranked_lists, suggestion_sets = [], [], []
    for document in documents:
        peer = system.peer_of(document)
        suggestions = peer.suggest_tags(document, confidence_threshold=0.0)
        ranked = [
            s.tag
            for s in sorted(suggestions, key=lambda s: -s.confidence)
        ]
        true_sets.append(document.tags)
        ranked_lists.append(ranked)
        suggestion_sets.append(suggestions)

    rows = []
    for k in KS:
        rows.append(
            [
                f"@{k}",
                mean_precision_at_k(true_sets, ranked_lists, k),
                mean_recall_at_k(true_sets, ranked_lists, k),
            ]
        )

    slider_rows = []
    for threshold in THRESHOLDS:
        kept_correct = kept_total = struck_true = 0
        for truth, suggestions in zip(true_sets, suggestion_sets):
            for suggestion in suggestions:
                kept = suggestion.confidence >= threshold
                if kept:
                    kept_total += 1
                    kept_correct += suggestion.tag in truth
                elif suggestion.tag in truth:
                    struck_true += 1
        precision = kept_correct / kept_total if kept_total else 0.0
        slider_rows.append([threshold, kept_total, precision, struck_true])
    return rows, slider_rows


@pytest.mark.benchmark(group="e7-suggestions")
def test_e7_suggestions_table(benchmark):
    rows, slider_rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E7a  Suggestion ranking quality",
        ["k", "precision@k", "recall@k"],
        rows,
    )
    table += "\n" + format_table(
        "E7b  Confidence slider sweep",
        ["threshold", "kept", "precision_kept", "true_tags_struck"],
        slider_rows,
    )
    write_results("e7_suggestions", table)

    # Ranking shape: precision decreases with k, recall increases.
    precisions = [row[1] for row in rows]
    recalls = [row[2] for row in rows]
    assert precisions[0] >= precisions[-1]
    assert recalls == sorted(recalls)
    # Slider shape: higher threshold keeps fewer, more precise suggestions.
    kept = [row[1] for row in slider_rows]
    assert kept == sorted(kept, reverse=True)
