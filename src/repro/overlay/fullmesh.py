"""Full-mesh overlay: every member links directly to every other member.

The idealized control point for the overlay ablation: key ownership follows
the same ring-successor rule as Chord (so DHT-based protocols work
unchanged), but every lookup resolves in exactly one hop and broadcast needs
no flooding.  Comparing a real overlay against the mesh isolates routing
stretch from protocol cost.  A mesh is only deployable at small N (O(N²)
links), which is precisely why the structured overlays exist — the ablation
makes that argument measurable.
"""

from __future__ import annotations

import bisect
from typing import Dict, List

from repro.overlay.base import Overlay, RouteResult, StateSlot, register_overlay
from repro.overlay.idspace import ID_SPACE, node_id_for


class FullMeshOverlay(Overlay):
    """All-pairs connectivity with ring-successor key ownership."""

    name = "fullmesh"

    def __init__(self) -> None:
        self._ids: Dict[int, int] = {}  # address -> overlay id
        self._ring_ids: List[int] = []  # sorted overlay ids
        self._ring_addresses: List[int] = []  # parallel to _ring_ids

    def _state_slots(self):
        return {
            "ids": StateSlot(
                "dict", lambda: self._ids,
                lambda v: setattr(self, "_ids", v),
            ),
            "ring_ids": StateSlot(
                "value", lambda: self._ring_ids,
                lambda v: setattr(self, "_ring_ids", v),
            ),
            "ring_addresses": StateSlot(
                "value", lambda: self._ring_addresses,
                lambda v: setattr(self, "_ring_addresses", v),
            ),
        }

    # -- membership ----------------------------------------------------------

    def join(self, address: int) -> None:
        if address in self._ids:
            return
        overlay_id = node_id_for(address)
        self._ids[address] = overlay_id
        index = bisect.bisect_left(self._ring_ids, overlay_id)
        self._ring_ids.insert(index, overlay_id)
        self._ring_addresses.insert(index, address)
        self.entries_built += 1

    def leave(self, address: int) -> None:
        overlay_id = self._ids.pop(address, None)
        if overlay_id is None:
            return
        index = bisect.bisect_left(self._ring_ids, overlay_id)
        del self._ring_ids[index]
        del self._ring_addresses[index]

    def members(self) -> List[int]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    # -- routing -------------------------------------------------------------

    def route(self, origin: int, key: int) -> RouteResult:
        """Owner is the ring successor of ``key``; always one direct hop."""
        self.require_member(origin)
        key = key % ID_SPACE
        index = bisect.bisect_left(self._ring_ids, key)
        if index == len(self._ring_ids):
            index = 0
        owner = self._ring_addresses[index]
        if owner == origin:
            return RouteResult(key=key, owner=owner, path=[])
        return RouteResult(key=key, owner=owner, path=[owner])

    def neighbors(self, address: int) -> List[int]:
        self.require_member(address)
        return sorted(a for a in self._ids if a != address)


register_overlay("fullmesh", lambda **config: FullMeshOverlay())
