"""Chord DHT overlay (Stoica et al., 2001).

Finger tables give O(log N) routing; successor lists give fault tolerance.
Churn realism: a crash updates ring *membership* immediately (ground truth of
who owns what), but other nodes' finger tables and successor lists stay stale
until :meth:`stabilize` runs — so lookups between a crash and the next
stabilization round take more hops or fail, exactly the behaviour the churn
experiment measures.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.errors import OverlayError
from repro.overlay.base import Overlay, RouteResult, StateSlot, register_overlay
from repro.overlay.idspace import ID_BITS, ID_SPACE, in_interval, node_id_for


class ChordOverlay(Overlay):
    """A Chord ring over physical node addresses.

    Parameters
    ----------
    successor_list_size:
        Number of successors each node tracks (fault tolerance under churn).
    max_hops:
        Routing loop guard.
    """

    name = "chord"

    def __init__(self, successor_list_size: int = 4, max_hops: int = 128) -> None:
        self.successor_list_size = successor_list_size
        self.max_hops = max_hops
        self._ids: Dict[int, int] = {}  # address -> overlay id
        self._ring_ids: List[int] = []  # sorted overlay ids of live members
        self._ring_addresses: List[int] = []  # parallel to _ring_ids
        self._fingers: Dict[int, List[int]] = {}  # address -> finger addresses
        self._successors: Dict[int, List[int]] = {}  # address -> successor addrs
        self._predecessors: Dict[int, int] = {}  # address -> predecessor addr

    def _state_slots(self):
        return {
            "ids": StateSlot(
                "dict", lambda: self._ids,
                lambda v: setattr(self, "_ids", v),
            ),
            "ring_ids": StateSlot(
                "value", lambda: self._ring_ids,
                lambda v: setattr(self, "_ring_ids", v),
            ),
            "ring_addresses": StateSlot(
                "value", lambda: self._ring_addresses,
                lambda v: setattr(self, "_ring_addresses", v),
            ),
            "fingers": StateSlot(
                "dict", lambda: self._fingers,
                lambda v: setattr(self, "_fingers", v),
            ),
            "successors": StateSlot(
                "dict", lambda: self._successors,
                lambda v: setattr(self, "_successors", v),
            ),
            "predecessors": StateSlot(
                "dict", lambda: self._predecessors,
                lambda v: setattr(self, "_predecessors", v),
            ),
        }

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def join(self, address: int) -> None:
        if address in self._ids:
            return
        overlay_id = node_id_for(address)
        if overlay_id in self._ids.values():  # pragma: no cover - 64-bit space
            raise OverlayError(f"id collision for address {address}")
        self._ids[address] = overlay_id
        index = bisect.bisect_left(self._ring_ids, overlay_id)
        self._ring_ids.insert(index, overlay_id)
        self._ring_addresses.insert(index, address)
        # The joining node builds its own tables immediately (it performed a
        # lookup-driven join); existing nodes stay stale until stabilize().
        self._rebuild_tables_for(address)

    def leave(self, address: int) -> None:
        """Crash-style departure: membership changes, others' tables stale."""
        overlay_id = self._ids.pop(address, None)
        if overlay_id is None:
            return
        index = bisect.bisect_left(self._ring_ids, overlay_id)
        del self._ring_ids[index]
        del self._ring_addresses[index]
        self._fingers.pop(address, None)
        self._successors.pop(address, None)
        self._predecessors.pop(address, None)

    def members(self) -> List[int]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Table maintenance
    # ------------------------------------------------------------------

    def _true_successor_address(self, key: int) -> int:
        """Ground-truth owner: first live node clockwise from ``key``."""
        if not self._ring_ids:
            raise OverlayError("empty ring")
        index = bisect.bisect_left(self._ring_ids, key)
        if index == len(self._ring_ids):
            index = 0
        return self._ring_addresses[index]

    def _rebuild_tables_for(self, address: int) -> None:
        overlay_id = self._ids[address]
        fingers: List[int] = []
        for i in range(ID_BITS):
            target = (overlay_id + (1 << i)) % ID_SPACE
            finger = self._true_successor_address(target)
            if finger != address and (not fingers or fingers[-1] != finger):
                fingers.append(finger)
        self._fingers[address] = fingers
        successors: List[int] = []
        cursor = (overlay_id + 1) % ID_SPACE
        while len(successors) < min(self.successor_list_size, len(self._ids) - 1):
            nxt = self._true_successor_address(cursor)
            if nxt == address:
                break
            if nxt in successors:
                break
            successors.append(nxt)
            cursor = (self._ids[nxt] + 1) % ID_SPACE
        self._successors[address] = successors
        if len(self._ids) > 1:
            index = bisect.bisect_left(self._ring_ids, overlay_id)
            self._predecessors[address] = self._ring_addresses[index - 1]
        else:
            self._predecessors[address] = address
        self.entries_built += len(fingers) + len(successors) + 1

    def stabilize(self) -> None:
        """Repair every member's fingers and successor lists."""
        for address in list(self._ids):
            self._rebuild_tables_for(address)

    def staleness(self) -> float:
        """Fraction of routing-table entries pointing at dead nodes."""
        total = dead = 0
        for address in self._ids:
            for entry in self._fingers.get(address, []) + self._successors.get(
                address, []
            ):
                total += 1
                if entry not in self._ids:
                    dead += 1
        return dead / total if total else 0.0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def neighbors(self, address: int) -> List[int]:
        self.require_member(address)
        seen: List[int] = []
        for entry in self._successors.get(address, []) + self._fingers.get(
            address, []
        ):
            if entry in self._ids and entry not in seen:
                seen.append(entry)
        return seen

    def _live_successor(self, address: int) -> Optional[int]:
        for candidate in self._successors.get(address, []):
            if candidate in self._ids:
                return candidate
        return None

    def route(self, origin: int, key: int) -> RouteResult:
        self.require_member(origin)
        key = key % ID_SPACE
        true_owner = self._true_successor_address(key)
        current = origin
        path: List[int] = []
        for _ in range(self.max_hops):
            current_id = self._ids[current]
            if current_id == key or len(self._ids) == 1:
                return RouteResult(key=key, owner=current, path=path)
            predecessor = self._predecessors.get(current)
            if (
                predecessor is not None
                and predecessor in self._ids
                and in_interval(key, self._ids[predecessor], current_id)
            ):
                return RouteResult(key=key, owner=current, path=path)
            successor = self._live_successor(current)
            if successor is None:
                # Fresh node or totally stale successor list.
                if current == true_owner:
                    return RouteResult(key=key, owner=current, path=path)
                return RouteResult(key=key, owner=None, path=path, success=False)
            if in_interval(key, current_id, self._ids[successor]):
                path.append(successor)
                return RouteResult(key=key, owner=successor, path=path)
            next_hop = self._closest_preceding(current, key) or successor
            if next_hop == current:
                next_hop = successor
            path.append(next_hop)
            current = next_hop
        return RouteResult(key=key, owner=None, path=path, success=False)

    def _closest_preceding(self, address: int, key: int) -> Optional[int]:
        """Live finger/successor with id closest preceding ``key``."""
        current_id = self._ids[address]
        best: Optional[int] = None
        best_id = current_id
        for entry in self._fingers.get(address, []) + self._successors.get(
            address, []
        ):
            entry_id = self._ids.get(entry)
            if entry_id is None:
                continue  # stale entry: dead node
            if in_interval(entry_id, current_id, key, inclusive_right=False):
                if best is None or in_interval(
                    entry_id, best_id, key, inclusive_right=False
                ):
                    best = entry
                    best_id = entry_id
        return best


register_overlay("chord", lambda **config: ChordOverlay())
