"""Deterministic super-peer election over a DHT (CEMPaR's regions), and a
two-tier super-peer *overlay* registered as ``superpeer``.

The paper: "super-peers are automatically elected from the P2P network and
are located in a deterministic manner, made possible through the use of the
DHT-based P2P network."

Two realizations live here:

- :class:`SuperPeerDirectory` — a directory *over* any DHT overlay: the id
  space is split into ``num_regions`` regions; the super-peer for
  (tag, region) is the DHT owner of ``key_id_for("sp|tag|r")``.  Any peer
  can compute that key locally and route to it — no coordination, and after
  churn the DHT's new owner of the key *is* the new super-peer, which is
  how responsibility migrates.
- :class:`SuperPeerOverlay` — a routing overlay in its own right
  (``make_overlay("superpeer")``): a deterministically elected core of
  super-peers owns the whole key space on a successor ring, and every leaf
  peer routes through its attachment super-peer.  Lookups cost at most two
  hops (leaf → its super-peer → owning super-peer), concentrating routing
  state and key responsibility on the core — the classic
  Gnutella-0.6/FastTrack topology, and a mid-point between ``fullmesh``
  (one hop, O(N²) links) and the structured DHTs (log-factor hops).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.errors import OverlayError
from repro.overlay.base import Overlay, RouteResult, StateSlot, register_overlay
from repro.overlay.idspace import ID_SPACE, key_id_for, node_id_for


class SuperPeerDirectory:
    """Resolves (tag, region) -> super-peer through an overlay."""

    def __init__(self, overlay: Overlay, num_regions: int = 2) -> None:
        if num_regions < 1:
            raise OverlayError("num_regions must be >= 1")
        self.overlay = overlay
        self.num_regions = num_regions

    @staticmethod
    def label(tag: str, region: int) -> str:
        """The well-known DHT key label for a (tag, region) super-peer."""
        return f"sp|{tag}|{region}"

    def key_for(self, tag: str, region: int) -> int:
        return key_id_for(self.label(tag, region))

    def region_of(self, address: int) -> int:
        """The region a peer reports into (deterministic, balanced)."""
        return key_id_for(f"region|{address}") % self.num_regions

    def locate(self, origin: int, tag: str, region: int) -> RouteResult:
        """Route from ``origin`` to the super-peer for (tag, region)."""
        return self.overlay.route(origin, self.key_for(tag, region))

    def locate_all(
        self, origin: int, tag: str
    ) -> List[Tuple[int, RouteResult]]:
        """Routes to every regional super-peer for ``tag``.

        Returns (region, route) pairs; failed routes are included so callers
        can count lookup failures under churn.
        """
        return [
            (region, self.locate(origin, tag, region))
            for region in range(self.num_regions)
        ]

    def owners(self, origin: int, tag: str) -> Dict[int, Optional[int]]:
        """region -> super-peer address (None where lookup failed)."""
        return {
            region: route.owner if route.success else None
            for region, route in self.locate_all(origin, tag)
        }


class _Ring:
    """A sorted successor ring of (overlay id, address) pairs."""

    def __init__(self) -> None:
        self.ids: List[int] = []
        self.addresses: List[int] = []  # parallel to ids

    def add(self, overlay_id: int, address: int) -> None:
        index = bisect.bisect_left(self.ids, overlay_id)
        self.ids.insert(index, overlay_id)
        self.addresses.insert(index, address)

    def remove(self, overlay_id: int) -> None:
        index = bisect.bisect_left(self.ids, overlay_id)
        del self.ids[index]
        del self.addresses[index]

    def successor(self, key: int) -> int:
        """Address of the first ring member at or after ``key`` (wrapping)."""
        index = bisect.bisect_left(self.ids, key)
        if index == len(self.ids):
            index = 0
        return self.addresses[index]

    def __len__(self) -> int:
        return len(self.ids)


class SuperPeerOverlay(Overlay):
    """Two-tier overlay: an elected super-peer core, leaves attached to it.

    Election is local and deterministic: a peer is a super-peer iff the hash
    of its address falls in the bottom ``1/ratio`` of the id space — no
    coordination, stable across joins/leaves, and independent of join order
    (the property the directory's "located in a deterministic manner" claim
    rests on).  Super-peers form a successor ring that owns the whole key
    space; each leaf attaches to the super-peer succeeding its own id.

    Routing: leaf → its attachment super-peer → the key's owning super-peer
    (at most two hops; fewer when the origin is a super-peer or the hops
    coincide).  When churn empties the core entirely, the live members
    degrade to a flat successor ring so lookups keep resolving — the
    overlay heals as soon as any super-peer rejoins.
    """

    name = "superpeer"

    def __init__(self, ratio: int = 4) -> None:
        if ratio < 1:
            raise OverlayError("ratio must be >= 1")
        self.ratio = ratio
        self._ids: Dict[int, int] = {}  # address -> overlay id
        self._members = _Ring()
        self._core = _Ring()  # super-peers only

    def _state_slots(self):
        def ring_slot(ring: _Ring, attr: str) -> StateSlot:
            return StateSlot(
                "value", lambda: getattr(ring, attr),
                lambda v: setattr(ring, attr, v),
            )

        return {
            "ids": StateSlot(
                "dict", lambda: self._ids,
                lambda v: setattr(self, "_ids", v),
            ),
            "member_ids": ring_slot(self._members, "ids"),
            "member_addresses": ring_slot(self._members, "addresses"),
            "core_ids": ring_slot(self._core, "ids"),
            "core_addresses": ring_slot(self._core, "addresses"),
        }

    @staticmethod
    def _election_hash(address: int) -> int:
        return key_id_for(f"sp-elect|{address}")

    def is_super_peer(self, address: int) -> bool:
        """Deterministic election: bottom 1/ratio slice of the id space."""
        return self._election_hash(address) < ID_SPACE // self.ratio

    # -- membership ----------------------------------------------------------

    def join(self, address: int) -> None:
        if address in self._ids:
            return
        overlay_id = node_id_for(address)
        if overlay_id in self._ids.values():  # pragma: no cover - 64-bit space
            raise OverlayError(f"id collision for address {address}")
        self._ids[address] = overlay_id
        self._members.add(overlay_id, address)
        self.entries_built += 1
        if self.is_super_peer(address):
            self._core.add(overlay_id, address)
            self.entries_built += 1

    def leave(self, address: int) -> None:
        overlay_id = self._ids.pop(address, None)
        if overlay_id is None:
            return
        self._members.remove(overlay_id)
        if self.is_super_peer(address):
            self._core.remove(overlay_id)

    def members(self) -> List[int]:
        return list(self._ids)

    def super_peers(self) -> List[int]:
        """Live super-peer addresses in ring order."""
        return list(self._core.addresses)

    def __len__(self) -> int:
        return len(self._ids)

    # -- routing -------------------------------------------------------------

    def _routing_ring(self) -> _Ring:
        """The core ring, or the flat member ring when the core is empty."""
        return self._core if len(self._core) else self._members

    def attachment(self, address: int) -> int:
        """The super-peer a member routes through (itself, for core peers)."""
        self.require_member(address)
        if len(self._core) == 0 or self.is_super_peer(address):
            return address
        return self._core.successor(self._ids[address])

    def route(self, origin: int, key: int) -> RouteResult:
        self.require_member(origin)
        key = key % ID_SPACE
        owner = self._routing_ring().successor(key)
        if owner == origin:
            return RouteResult(key=key, owner=owner, path=[])
        path: List[int] = []
        attach = self.attachment(origin)
        if attach not in (origin, owner):
            path.append(attach)
        path.append(owner)
        return RouteResult(key=key, owner=owner, path=path)

    def neighbors(self, address: int) -> List[int]:
        """Leaves link to their super-peer; super-peers link to the rest of
        the core plus their attached leaves."""
        self.require_member(address)
        if len(self._core) == 0:
            return sorted(a for a in self._ids if a != address)
        if not self.is_super_peer(address):
            return [self._core.successor(self._ids[address])]
        core = [a for a in self._core.addresses if a != address]
        leaves = [
            a
            for a in self._ids
            if a != address
            and not self.is_super_peer(a)
            and self._core.successor(self._ids[a]) == address
        ]
        return sorted(core + leaves)


register_overlay("superpeer", lambda **config: SuperPeerOverlay(
    ratio=int(config.get("superpeer_ratio", 4))
))
