"""Deterministic super-peer election over a DHT (CEMPaR's regions).

The paper: "super-peers are automatically elected from the P2P network and
are located in a deterministic manner, made possible through the use of the
DHT-based P2P network."

Concretely: the id space is split into ``num_regions`` regions; the
super-peer for (tag, region) is the DHT owner of ``key_id_for("sp|tag|r")``.
Any peer can compute that key locally and route to it — no coordination, and
after churn the DHT's new owner of the key *is* the new super-peer, which is
how responsibility migrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import OverlayError
from repro.overlay.base import Overlay, RouteResult
from repro.overlay.idspace import key_id_for


class SuperPeerDirectory:
    """Resolves (tag, region) -> super-peer through an overlay."""

    def __init__(self, overlay: Overlay, num_regions: int = 2) -> None:
        if num_regions < 1:
            raise OverlayError("num_regions must be >= 1")
        self.overlay = overlay
        self.num_regions = num_regions

    @staticmethod
    def label(tag: str, region: int) -> str:
        """The well-known DHT key label for a (tag, region) super-peer."""
        return f"sp|{tag}|{region}"

    def key_for(self, tag: str, region: int) -> int:
        return key_id_for(self.label(tag, region))

    def region_of(self, address: int) -> int:
        """The region a peer reports into (deterministic, balanced)."""
        return key_id_for(f"region|{address}") % self.num_regions

    def locate(self, origin: int, tag: str, region: int) -> RouteResult:
        """Route from ``origin`` to the super-peer for (tag, region)."""
        return self.overlay.route(origin, self.key_for(tag, region))

    def locate_all(
        self, origin: int, tag: str
    ) -> List[Tuple[int, RouteResult]]:
        """Routes to every regional super-peer for ``tag``.

        Returns (region, route) pairs; failed routes are included so callers
        can count lookup failures under churn.
        """
        return [
            (region, self.locate(origin, tag, region))
            for region in range(self.num_regions)
        ]

    def owners(self, origin: int, tag: str) -> Dict[int, Optional[int]]:
        """region -> super-peer address (None where lookup failed)."""
        return {
            region: route.owner if route.success else None
            for region, route in self.locate_all(origin, tag)
        }
