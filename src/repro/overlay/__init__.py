"""P2P overlay networks (P2PDMT "Generate structured/unstructured P2P network").

Structured overlays (:mod:`repro.overlay.chord`, :mod:`repro.overlay.kademlia`,
:mod:`repro.overlay.pastry`) provide DHT lookups — CEMPaR locates its
super-peers deterministically through them.  The unstructured overlay
(:mod:`repro.overlay.unstructured`) provides flooding/gossip broadcast — PACE
propagates models over it.  The full mesh (:mod:`repro.overlay.fullmesh`) is
the idealized one-hop control for ablations, and the two-tier super-peer
overlay (:mod:`repro.overlay.superpeer`) concentrates key ownership on a
deterministically elected core with ≤2-hop lookups.

Every overlay registers itself with the factory registry in
:mod:`repro.overlay.base`; construct instances through :func:`make_overlay`
rather than naming classes:

>>> from repro.overlay import make_overlay
>>> overlay = make_overlay("chord")
"""

from repro.overlay.idspace import (
    ID_BITS,
    ID_SPACE,
    node_id_for,
    key_id_for,
    ring_distance,
    xor_distance,
    in_interval,
)
from repro.overlay.base import (
    Overlay,
    RouteResult,
    make_overlay,
    overlay_names,
    register_overlay,
)
from repro.overlay.chord import ChordOverlay
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.pastry import PastryOverlay
from repro.overlay.unstructured import UnstructuredOverlay, BroadcastResult
from repro.overlay.fullmesh import FullMeshOverlay
from repro.overlay.superpeer import SuperPeerDirectory, SuperPeerOverlay

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "node_id_for",
    "key_id_for",
    "ring_distance",
    "xor_distance",
    "in_interval",
    "Overlay",
    "RouteResult",
    "make_overlay",
    "overlay_names",
    "register_overlay",
    "ChordOverlay",
    "KademliaOverlay",
    "PastryOverlay",
    "UnstructuredOverlay",
    "FullMeshOverlay",
    "BroadcastResult",
    "SuperPeerDirectory",
    "SuperPeerOverlay",
]
