"""P2P overlay networks (P2PDMT "Generate structured/unstructured P2P network").

Structured overlays (:mod:`repro.overlay.chord`, :mod:`repro.overlay.kademlia`)
provide DHT lookups — CEMPaR locates its super-peers deterministically through
them.  The unstructured overlay (:mod:`repro.overlay.unstructured`) provides
flooding/gossip broadcast — PACE propagates models over it.
"""

from repro.overlay.idspace import (
    ID_BITS,
    ID_SPACE,
    node_id_for,
    key_id_for,
    ring_distance,
    xor_distance,
    in_interval,
)
from repro.overlay.base import Overlay, RouteResult
from repro.overlay.chord import ChordOverlay
from repro.overlay.kademlia import KademliaOverlay
from repro.overlay.pastry import PastryOverlay
from repro.overlay.unstructured import UnstructuredOverlay, BroadcastResult
from repro.overlay.superpeer import SuperPeerDirectory

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "node_id_for",
    "key_id_for",
    "ring_distance",
    "xor_distance",
    "in_interval",
    "Overlay",
    "RouteResult",
    "ChordOverlay",
    "KademliaOverlay",
    "PastryOverlay",
    "UnstructuredOverlay",
    "BroadcastResult",
    "SuperPeerDirectory",
]
