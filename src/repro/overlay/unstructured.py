"""Unstructured overlay: random graph with flooding and gossip broadcast.

PACE propagates models "to all other peers"; on an unstructured overlay that
is a flood (TTL-bounded) or a push-gossip.  Both primitives report exactly
what the experiments charge: which peers were reached and how many messages
were sent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from repro.errors import OverlayError
from repro.overlay.base import Overlay, RouteResult, StateSlot, register_overlay
from repro.overlay.idspace import node_id_for


@dataclass
class BroadcastResult:
    """Outcome of a flood or gossip broadcast."""

    origin: int
    reached: Set[int] = field(default_factory=set)
    messages: int = 0
    rounds: int = 0

    def coverage(self, population: int) -> float:
        if population <= 0:
            return 0.0
        return len(self.reached) / population


class UnstructuredOverlay(Overlay):
    """A random graph where each joiner links to ``degree`` existing nodes."""

    name = "unstructured"

    def __init__(self, degree: int = 4, seed: int = 0) -> None:
        if degree < 1:
            raise OverlayError("degree must be >= 1")
        self.degree = degree
        self._rng = np.random.default_rng(seed)
        self._edges: Dict[int, Set[int]] = {}

    def _set_rng_state(self, state) -> None:
        self._rng.bit_generator.state = state

    def _state_slots(self):
        # The link-sampling RNG rides along so directory views stay aligned
        # with the authority across replicated joins and served repairs.
        return {
            "edges": StateSlot(
                "dict", lambda: self._edges,
                lambda v: setattr(self, "_edges", v),
            ),
            "rng": StateSlot(
                "value", lambda: self._rng.bit_generator.state,
                self._set_rng_state,
            ),
        }

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def join(self, address: int) -> None:
        if address in self._edges:
            return
        existing = list(self._edges)
        self._edges[address] = set()
        if not existing:
            return
        count = min(self.degree, len(existing))
        chosen = self._rng.choice(len(existing), size=count, replace=False)
        for index in chosen:
            other = existing[int(index)]
            self._edges[address].add(other)
            self._edges[other].add(address)
            self.entries_built += 1

    def leave(self, address: int) -> None:
        neighbors = self._edges.pop(address, set())
        for other in neighbors:
            self._edges.get(other, set()).discard(address)

    def members(self) -> List[int]:
        return list(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def neighbors(self, address: int) -> List[int]:
        self.require_member(address)
        return sorted(self._edges[address])

    def repair(self) -> int:
        """Re-link under-connected nodes (post-churn maintenance).

        Returns the number of edges added.
        """
        added = 0
        members = list(self._edges)
        if len(members) < 2:
            return 0
        for address in members:
            while len(self._edges[address]) < min(self.degree, len(members) - 1):
                candidates = [
                    m
                    for m in members
                    if m != address and m not in self._edges[address]
                ]
                if not candidates:
                    break
                other = candidates[int(self._rng.integers(len(candidates)))]
                self._edges[address].add(other)
                self._edges[other].add(address)
                added += 1
        self.entries_built += added
        return added

    # ------------------------------------------------------------------
    # Routing (unstructured = no key ownership; greedy id walk)
    # ------------------------------------------------------------------

    def route(self, origin: int, key: int) -> RouteResult:
        """Greedy walk toward the member whose id is closest to ``key``.

        Unstructured overlays have no ownership guarantee; this exists so
        the overlay ablation can compare lookup behaviour across types.
        """
        self.require_member(origin)
        target = min(
            self._edges, key=lambda a: abs(node_id_for(a) - key)
        )
        current = origin
        path: List[int] = []
        visited = {origin}
        for _ in range(len(self._edges)):
            if current == target:
                return RouteResult(key=key, owner=current, path=path)
            candidates = [n for n in self._edges[current] if n not in visited]
            if not candidates:
                return RouteResult(key=key, owner=None, path=path, success=False)
            current = min(candidates, key=lambda a: abs(node_id_for(a) - key))
            visited.add(current)
            path.append(current)
        return RouteResult(key=key, owner=None, path=path, success=False)

    # ------------------------------------------------------------------
    # Broadcast primitives
    # ------------------------------------------------------------------

    def flood(self, origin: int, ttl: int = 8) -> BroadcastResult:
        """TTL-bounded flood; every edge crossing is one message."""
        self.require_member(origin)
        result = BroadcastResult(origin=origin)
        result.reached.add(origin)
        frontier = [origin]
        for round_index in range(ttl):
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in self._edges[node]:
                    result.messages += 1
                    if neighbor not in result.reached:
                        result.reached.add(neighbor)
                        next_frontier.append(neighbor)
            if not next_frontier:
                break
            frontier = next_frontier
            result.rounds = round_index + 1
        return result

    def gossip(
        self, origin: int, fanout: int = 3, rounds: int = 10
    ) -> BroadcastResult:
        """Push gossip: each informed node pushes to ``fanout`` random peers."""
        self.require_member(origin)
        result = BroadcastResult(origin=origin)
        result.reached.add(origin)
        informed = [origin]
        for round_index in range(rounds):
            newly: List[int] = []
            for node in informed:
                neighbors = sorted(self._edges[node])
                if not neighbors:
                    continue
                count = min(fanout, len(neighbors))
                chosen = self._rng.choice(len(neighbors), size=count, replace=False)
                for index in chosen:
                    target = neighbors[int(index)]
                    result.messages += 1
                    if target not in result.reached:
                        result.reached.add(target)
                        newly.append(target)
            informed.extend(newly)
            result.rounds = round_index + 1
            if len(result.reached) == len(self._edges):
                break
        return result


register_overlay(
    "unstructured",
    lambda **config: UnstructuredOverlay(
        degree=config.get("degree", 4), seed=config.get("seed", 0)
    ),
)
