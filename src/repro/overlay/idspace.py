"""Identifier space shared by the structured overlays.

A 64-bit circular id space.  Node ids and key ids are blake2b hashes, so any
peer can compute the id of any key (tag names, super-peer labels) locally —
the property CEMPaR's deterministic super-peer location relies on.
"""

from __future__ import annotations

import hashlib

ID_BITS = 64
ID_SPACE = 1 << ID_BITS


def _hash64(data: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def node_id_for(address: int) -> int:
    """Overlay id of a physical node address."""
    return _hash64(f"node:{address}".encode("utf-8"))


def key_id_for(key: str) -> int:
    """Overlay id of an application key (e.g. a tag or super-peer label)."""
    return _hash64(f"key:{key}".encode("utf-8"))


def ring_distance(a: int, b: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ring."""
    return (b - a) % ID_SPACE


def xor_distance(a: int, b: int) -> int:
    """Kademlia's XOR metric."""
    return a ^ b


def in_interval(x: int, left: int, right: int, inclusive_right: bool = True) -> bool:
    """True if ``x`` lies in the circular interval (left, right] (or (left, right))."""
    if left == right:
        # Full circle (single-node ring): everything is inside.
        return True
    if left < right:
        return (left < x <= right) if inclusive_right else (left < x < right)
    # Wrapping interval.
    if inclusive_right:
        return x > left or x <= right
    return x > left or x < right
