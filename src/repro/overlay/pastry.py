"""Pastry DHT overlay (Rowstron & Druschel, 2001).

Third structured overlay for P2PDMT: prefix routing over digit-based ids
(base ``2^b``), a routing table of (row = shared-prefix length, column =
next digit) entries, and a leaf set of numerically closest nodes for the
final hop and fault tolerance.

Ownership: the live node numerically closest to the key (ties toward the
smaller id), which is what the leaf set converges to.  Like the other
overlays here, membership is ground truth while routing state goes stale
under churn until :meth:`stabilize`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import OverlayError
from repro.overlay.base import Overlay, RouteResult, StateSlot, register_overlay
from repro.overlay.idspace import ID_BITS, node_id_for


def _digits(value: int, bits_per_digit: int) -> List[int]:
    """Most-significant-first digit expansion of a 64-bit id."""
    num_digits = ID_BITS // bits_per_digit
    mask = (1 << bits_per_digit) - 1
    return [
        (value >> (ID_BITS - bits_per_digit * (i + 1))) & mask
        for i in range(num_digits)
    ]


def _shared_prefix_length(a: List[int], b: List[int]) -> int:
    length = 0
    for da, db in zip(a, b):
        if da != db:
            break
        length += 1
    return length


class PastryOverlay(Overlay):
    """A Pastry network over physical node addresses.

    Parameters
    ----------
    bits_per_digit:
        ``b`` in the paper; ids have ``64/b`` digits of base ``2^b``.
    leaf_set_size:
        Total leaf-set entries (half below, half above the node's id).
    """

    name = "pastry"

    def __init__(
        self,
        bits_per_digit: int = 4,
        leaf_set_size: int = 8,
        max_hops: int = 64,
    ) -> None:
        if ID_BITS % bits_per_digit != 0:
            raise OverlayError("bits_per_digit must divide the id width")
        if leaf_set_size < 2 or leaf_set_size % 2 != 0:
            raise OverlayError("leaf_set_size must be even and >= 2")
        self.bits_per_digit = bits_per_digit
        self.leaf_set_size = leaf_set_size
        self.max_hops = max_hops
        self._ids: Dict[int, int] = {}
        self._digit_cache: Dict[int, List[int]] = {}
        # address -> routing table: row -> column -> address
        self._tables: Dict[int, Dict[int, Dict[int, int]]] = {}
        # address -> leaf set (addresses, numerically nearest ids)
        self._leaves: Dict[int, List[int]] = {}

    def _state_slots(self):
        return {
            "ids": StateSlot(
                "dict", lambda: self._ids,
                lambda v: setattr(self, "_ids", v),
            ),
            "digit_cache": StateSlot(
                "dict", lambda: self._digit_cache,
                lambda v: setattr(self, "_digit_cache", v),
            ),
            "tables": StateSlot(
                "dict", lambda: self._tables,
                lambda v: setattr(self, "_tables", v),
            ),
            "leaves": StateSlot(
                "dict", lambda: self._leaves,
                lambda v: setattr(self, "_leaves", v),
            ),
        }

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def join(self, address: int) -> None:
        if address in self._ids:
            return
        overlay_id = node_id_for(address)
        self._ids[address] = overlay_id
        self._digit_cache[address] = _digits(overlay_id, self.bits_per_digit)
        # The joiner builds its own state immediately; existing nodes learn
        # about it lazily (they stay stale until stabilize).
        self._rebuild_for(address)

    def leave(self, address: int) -> None:
        self._ids.pop(address, None)
        self._digit_cache.pop(address, None)
        self._tables.pop(address, None)
        self._leaves.pop(address, None)

    def members(self) -> List[int]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # State building
    # ------------------------------------------------------------------

    def _key_digits(self, key: int) -> List[int]:
        return _digits(key, self.bits_per_digit)

    def _rebuild_for(self, address: int) -> None:
        my_digits = self._digit_cache[address]
        table: Dict[int, Dict[int, int]] = {}
        for other, other_id in self._ids.items():
            if other == address:
                continue
            other_digits = self._digit_cache[other]
            row = _shared_prefix_length(my_digits, other_digits)
            column = other_digits[row] if row < len(other_digits) else 0
            table.setdefault(row, {}).setdefault(column, other)
        self._tables[address] = table
        my_id = self._ids[address]
        ordered = sorted(
            (other for other in self._ids if other != address),
            key=lambda o: abs(self._ids[o] - my_id),
        )
        self._leaves[address] = ordered[: self.leaf_set_size]
        self.entries_built += (
            sum(len(row) for row in table.values()) + len(self._leaves[address])
        )

    def stabilize(self) -> None:
        """Rebuild every member's routing table and leaf set."""
        for address in list(self._ids):
            self._rebuild_for(address)

    def staleness(self) -> float:
        """Fraction of routing/leaf entries pointing at dead nodes."""
        total = dead = 0
        for address in self._ids:
            entries = list(self._leaves.get(address, []))
            for row in self._tables.get(address, {}).values():
                entries.extend(row.values())
            for entry in entries:
                total += 1
                if entry not in self._ids:
                    dead += 1
        return dead / total if total else 0.0

    def neighbors(self, address: int) -> List[int]:
        self.require_member(address)
        seen: List[int] = []
        for entry in self._leaves.get(address, []):
            if entry in self._ids and entry not in seen:
                seen.append(entry)
        for row in self._tables.get(address, {}).values():
            for entry in row.values():
                if entry in self._ids and entry not in seen:
                    seen.append(entry)
        return seen

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def true_owner(self, key: int) -> int:
        """Ground truth: the live node with numerically closest id."""
        if not self._ids:
            raise OverlayError("empty overlay")
        return min(
            self._ids,
            key=lambda a: (abs(self._ids[a] - key), self._ids[a]),
        )

    def _closest_in_leaves(self, address: int, key: int) -> Optional[int]:
        """Best live candidate among the node itself and its leaf set."""
        candidates = [address] + [
            leaf for leaf in self._leaves.get(address, []) if leaf in self._ids
        ]
        return min(
            candidates,
            key=lambda a: (abs(self._ids[a] - key), self._ids[a]),
            default=None,
        )

    def _known_live(self, address: int) -> List[int]:
        """Every live node this node's state references (leaves + table)."""
        known: List[int] = []
        for entry in self._leaves.get(address, []):
            if entry in self._ids and entry not in known:
                known.append(entry)
        for row in self._tables.get(address, {}).values():
            for entry in row.values():
                if entry in self._ids and entry not in known:
                    known.append(entry)
        return known

    def route(self, origin: int, key: int) -> RouteResult:
        """Pastry routing: prefix hop when possible, else the "rare case" —
        any known node with >= shared prefix that is numerically closer.

        Each hop either lengthens the shared prefix or (at equal prefix)
        strictly shrinks the numeric distance, so routing terminates.
        """
        self.require_member(origin)
        key_digits = self._key_digits(key)
        current = origin
        path: List[int] = []
        for _ in range(self.max_hops):
            current_digits = self._digit_cache[current]
            row = _shared_prefix_length(current_digits, key_digits)
            # Prefix routing: a live table entry matching one more digit.
            next_hop: Optional[int] = None
            table_row = self._tables.get(current, {}).get(row, {})
            candidate = table_row.get(key_digits[row])
            if candidate is not None and candidate in self._ids:
                next_hop = candidate
            if next_hop is None:
                # Rare case: best known node with >= prefix, strictly closer.
                current_distance = abs(self._ids[current] - key)
                closer = [
                    node
                    for node in self._known_live(current)
                    if _shared_prefix_length(
                        self._digit_cache[node], key_digits
                    ) >= row
                    and abs(self._ids[node] - key) < current_distance
                ]
                if closer:
                    next_hop = min(closer, key=lambda a: abs(self._ids[a] - key))
                else:
                    # Nothing closer anywhere in our state: deliver here (or
                    # at the numerically best leaf, the final-hop rule).
                    best_leaf = self._closest_in_leaves(current, key)
                    if best_leaf is not None and best_leaf != current:
                        path.append(best_leaf)
                        return RouteResult(key=key, owner=best_leaf, path=path)
                    return RouteResult(key=key, owner=current, path=path)
            path.append(next_hop)
            current = next_hop
        return RouteResult(key=key, owner=None, path=path, success=False)


register_overlay("pastry", lambda **config: PastryOverlay())
