"""Kademlia DHT overlay (Maymounkov & Mazières, 2002).

XOR metric, per-bit k-buckets, and iterative alpha-parallel lookups.  As with
Chord, membership is ground truth while routing tables go stale under churn
until :meth:`stabilize` (bucket refresh) runs.  A lookup's hop path charges
one hop per *contacted* node, including timed-out contacts to dead nodes —
the dominant churn cost in deployed Kademlia networks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.overlay.base import Overlay, RouteResult, StateSlot, register_overlay
from repro.overlay.idspace import ID_BITS, node_id_for, xor_distance


class KademliaOverlay(Overlay):
    """A Kademlia network over physical node addresses.

    Parameters
    ----------
    k:
        Bucket capacity (and result-set size).
    alpha:
        Lookup parallelism.
    seed:
        Seed for bucket sampling during joins/refreshes.
    """

    name = "kademlia"

    def __init__(self, k: int = 8, alpha: int = 3, seed: int = 0) -> None:
        self.k = k
        self.alpha = alpha
        self._rng = np.random.default_rng(seed)
        self._ids: Dict[int, int] = {}  # address -> overlay id
        self._buckets: Dict[int, List[List[int]]] = {}  # address -> buckets

    def _set_rng_state(self, state) -> None:
        self._rng.bit_generator.state = state

    def _state_slots(self):
        # The sampling RNG is a state slot: join ops replicated on directory
        # views consume it exactly like the authority, and served stabilize
        # edits carry the post-refresh state so views never drift.
        return {
            "ids": StateSlot(
                "dict", lambda: self._ids,
                lambda v: setattr(self, "_ids", v),
            ),
            "buckets": StateSlot(
                "dict", lambda: self._buckets,
                lambda v: setattr(self, "_buckets", v),
            ),
            "rng": StateSlot(
                "value", lambda: self._rng.bit_generator.state,
                self._set_rng_state,
            ),
        }

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def join(self, address: int) -> None:
        if address in self._ids:
            return
        self._ids[address] = node_id_for(address)
        self._buckets[address] = [[] for _ in range(ID_BITS)]
        # The joiner performs a self-lookup: it learns contacts across
        # distance scales, and the nodes it contacts learn about it.
        self._populate_buckets(address)
        for other in list(self._ids):
            if other != address:
                self._insert_contact(other, address)

    def leave(self, address: int) -> None:
        """Crash-style departure; other nodes keep stale contacts."""
        self._ids.pop(address, None)
        self._buckets.pop(address, None)

    def members(self) -> List[int]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Buckets
    # ------------------------------------------------------------------

    def _bucket_index(self, owner_id: int, other_id: int) -> int:
        distance = xor_distance(owner_id, other_id)
        if distance == 0:
            return 0
        return distance.bit_length() - 1

    def _insert_contact(self, owner: int, contact: int) -> None:
        if owner == contact or owner not in self._buckets:
            return
        bucket = self._buckets[owner][
            self._bucket_index(self._ids[owner], self._ids[contact])
        ]
        if contact in bucket:
            return
        if len(bucket) < self.k:
            bucket.append(contact)
            self.entries_built += 1
            return
        # Kademlia evicts a dead head; otherwise the newcomer is dropped.
        head = bucket[0]
        if head not in self._ids:
            bucket.pop(0)
            bucket.append(contact)
            self.entries_built += 1

    def _populate_buckets(self, address: int) -> None:
        """Fill the node's buckets from current members (join-time lookups)."""
        others = [a for a in self._ids if a != address]
        if not others:
            return
        sample_size = min(len(others), self.k * 4)
        chosen = self._rng.choice(len(others), size=sample_size, replace=False)
        for index in chosen:
            self._insert_contact(address, others[int(index)])

    def stabilize(self) -> None:
        """Bucket refresh: drop dead contacts, re-learn live ones."""
        for address in list(self._ids):
            for bucket in self._buckets[address]:
                bucket[:] = [c for c in bucket if c in self._ids]
            self._populate_buckets(address)

    def staleness(self) -> float:
        """Fraction of bucket entries pointing at dead nodes."""
        total = dead = 0
        for address, buckets in self._buckets.items():
            for bucket in buckets:
                for contact in bucket:
                    total += 1
                    if contact not in self._ids:
                        dead += 1
        return dead / total if total else 0.0

    def neighbors(self, address: int) -> List[int]:
        self.require_member(address)
        result: List[int] = []
        for bucket in self._buckets[address]:
            for contact in bucket:
                if contact in self._ids and contact not in result:
                    result.append(contact)
        return result

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _known_closest(self, address: int, key: int, count: int) -> List[int]:
        """The ``count`` contacts of ``address`` closest to ``key`` (may be dead)."""
        contacts: List[int] = []
        for bucket in self._buckets.get(address, []):
            contacts.extend(bucket)
        contacts.sort(key=lambda c: xor_distance(self._ids.get(c, node_id_for(c)), key))
        return contacts[:count]

    def true_owner(self, key: int) -> Optional[int]:
        """Ground-truth closest live node to ``key``."""
        if not self._ids:
            return None
        return min(self._ids, key=lambda a: xor_distance(self._ids[a], key))

    def route(self, origin: int, key: int) -> RouteResult:
        self.require_member(origin)
        if len(self._ids) == 1:
            return RouteResult(key=key, owner=origin, path=[])

        def distance_of(address: int) -> int:
            return xor_distance(self._ids.get(address, node_id_for(address)), key)

        shortlist: List[int] = list(self._known_closest(origin, key, self.k))
        if not shortlist:
            return RouteResult(key=key, owner=origin, path=[], success=False)
        queried: Set[int] = {origin}
        path: List[int] = []
        best_live: Optional[int] = origin if origin in self._ids else None

        improved = True
        while improved:
            improved = False
            shortlist.sort(key=distance_of)
            batch = [c for c in shortlist if c not in queried][: self.alpha]
            if not batch:
                break
            for contact in batch:
                queried.add(contact)
                path.append(contact)  # one hop charged, dead or alive
                if contact not in self._ids:
                    continue  # timeout on a churned-out contact
                if best_live is None or distance_of(contact) < distance_of(best_live):
                    best_live = contact
                    improved = True
                for learned in self._known_closest(contact, key, self.k):
                    if learned not in shortlist:
                        shortlist.append(learned)
                        improved = True
        if best_live is None:
            return RouteResult(key=key, owner=None, path=path, success=False)
        return RouteResult(key=key, owner=best_live, path=path)


register_overlay(
    "kademlia", lambda **config: KademliaOverlay(seed=config.get("seed", 0))
)
