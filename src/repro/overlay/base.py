"""Overlay interface.

Overlays maintain routing state over the set of *live* physical nodes and
answer two questions:

- :meth:`Overlay.route` — which node owns a key, and through which hop path
  (the hop path is what the experiments charge communication for);
- :meth:`Overlay.neighbors` — a node's links (broadcast, visualization).

Implementation note (documented substitution): routing decisions are
computed synchronously from current routing tables instead of exchanging
per-hop control messages through the event queue.  The *observables* —
hop counts, per-hop bytes, failures under churn — are preserved, because
every returned path is charged hop-by-hop to the physical network's stats
by the callers, and routing tables are damaged/repaired by churn callbacks
exactly as a maintenance protocol would.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import OverlayError


@dataclass
class RouteResult:
    """Outcome of a key lookup."""

    key: int
    owner: Optional[int]  # physical address of the responsible node
    path: List[int] = field(default_factory=list)  # physical addresses, in order
    success: bool = True

    @property
    def hops(self) -> int:
        return len(self.path)


class StateSlot:
    """Accessor for one named piece of an overlay's routing state.

    ``kind`` selects the delta granularity the directory control plane uses
    (:meth:`Overlay.diff_state`): ``"dict"`` slots diff and ship per key,
    ``"value"`` slots (sorted ring lists, RNG states, scalars) replace
    wholesale.  ``get`` must return the *live* container so per-key edits
    mutate in place; ``set`` installs a replacement (restore / wholesale
    edits).
    """

    __slots__ = ("kind", "get", "set")

    def __init__(
        self,
        kind: str,
        get: Callable[[], Any],
        set: Callable[[Any], None],
    ) -> None:
        if kind not in ("dict", "value"):
            raise OverlayError(f"unknown state-slot kind {kind!r}")
        self.kind = kind
        self.get = get
        self.set = set


#: one routing-state edit: (slot name, op, key, value) where op is "set" /
#: "del" for dict slots and "replace" (key None) for value slots.  Plain
#: tuples so a window's worth of edits pickles cheaply through the mp
#: executor's control channel.
StateEdit = Tuple[str, str, Any, Any]


class Overlay(ABC):
    """Common interface for structured and unstructured overlays."""

    name: str = "overlay"

    #: routing-table entries this instance *computed* locally (finger/bucket/
    #: leaf/edge builds).  Directory-served views apply edits instead of
    #: computing, so the counter is the numeric witness of the O(N/K)
    #: construction claim (Scenario.construction_cost).
    entries_built: int = 0

    @abstractmethod
    def join(self, address: int) -> None:
        """Add a physical node to the overlay."""

    @abstractmethod
    def leave(self, address: int) -> None:
        """Remove a node (graceful or crash — callers decide semantics)."""

    @abstractmethod
    def route(self, origin: int, key: int) -> RouteResult:
        """Resolve ``key`` starting from ``origin``; returns owner and path."""

    @abstractmethod
    def neighbors(self, address: int) -> List[int]:
        """The node's overlay links (for broadcast and visualization)."""

    @abstractmethod
    def members(self) -> List[int]:
        """Current member addresses."""

    def require_member(self, address: int) -> None:
        if address not in self.members():
            raise OverlayError(f"node {address} is not an overlay member")

    # ------------------------------------------------------------------
    # Directory serving: snapshot / delta export (repro.sim.shard).
    #
    # The directory control plane runs the *authoritative* instance (joins,
    # leaves, stabilize) and publishes the resulting state; shard workers
    # hold a *view* — an instance of the same class whose state was restored
    # from the startup snapshot and advanced by served edits — so route
    # resolution runs the overlay's own algorithm over state it never had
    # to compute.  Every overlay declares its state once via _state_slots();
    # the four operations below are generic over that declaration.
    # ------------------------------------------------------------------

    def _state_slots(self) -> Dict[str, StateSlot]:
        """name -> :class:`StateSlot` for every piece of routing state.

        Must cover *all* state that routing, membership, and maintenance
        read — including any internal RNG (exported/restored as its
        bit-generator state), so a view that applies served maintenance
        edits keeps its RNG aligned with the authority for later replicated
        join ops.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not declare state slots"
        )

    def export_state(self) -> Dict[str, Any]:
        """Deep-copied snapshot of every state slot (picklable)."""
        return {
            name: copy.deepcopy(slot.get())
            for name, slot in self._state_slots().items()
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Install a snapshot previously produced by :meth:`export_state`.

        Deep-copies on the way in, so several views may restore from one
        shared snapshot object without aliasing mutable containers.
        """
        for name, slot in self._state_slots().items():
            slot.set(copy.deepcopy(state[name]))

    def diff_state(self, before: Dict[str, Any]) -> List[StateEdit]:
        """Edits that turn the ``before`` snapshot into the current state.

        Dict slots compare per key by value (maintenance typically touches
        only entries near churned nodes, so the edit list stays small even
        when every table was recomputed); value slots replace wholesale.
        """
        edits: List[StateEdit] = []
        for name, slot in self._state_slots().items():
            current = slot.get()
            old = before[name]
            if slot.kind == "dict":
                for key in old:
                    if key not in current:
                        edits.append((name, "del", key, None))
                for key, value in current.items():
                    if key not in old or old[key] != value:
                        edits.append((name, "set", key, copy.deepcopy(value)))
            elif current != old:
                edits.append((name, "replace", None, copy.deepcopy(current)))
        return edits

    def apply_state_edits(self, edits: List[StateEdit]) -> None:
        """Apply served edits to this view (no routing-state computation).

        Values are deep-copied on application: under the serial executor
        every shard thread receives the *same* edit objects, and overlays
        mutate their containers in place.
        """
        slots = self._state_slots()
        for name, op, key, value in edits:
            slot = slots[name]
            if op == "del":
                del slot.get()[key]
            elif op == "set":
                slot.get()[key] = copy.deepcopy(value)
            else:
                slot.set(copy.deepcopy(value))


# ---------------------------------------------------------------------------
# Registry: every overlay registers a factory so scenarios, benchmarks, and
# the CLI construct overlays through one code path (make_overlay) instead of
# hand-rolled if/elif chains.
# ---------------------------------------------------------------------------

OverlayFactory = Callable[..., Overlay]

_OVERLAY_REGISTRY: Dict[str, OverlayFactory] = {}


def register_overlay(name: str, factory: OverlayFactory) -> None:
    """Register ``factory`` under ``name`` (last registration wins).

    Factories accept keyword configuration (``seed``, ``degree``, ...) and
    ignore what they do not use, so one call signature covers every overlay.
    """
    _OVERLAY_REGISTRY[name] = factory


def overlay_names() -> Tuple[str, ...]:
    """Registered overlay names, sorted for stable CLI/choices output."""
    return tuple(sorted(_OVERLAY_REGISTRY))


def make_overlay(name: str, **config) -> Overlay:
    """Construct a registered overlay by name.

    ``config`` keywords (``seed``, ``degree``, ...) are forwarded to the
    factory; unknown names raise :class:`OverlayError` listing the registry.
    """
    factory = _OVERLAY_REGISTRY.get(name)
    if factory is None:
        raise OverlayError(
            f"unknown overlay {name!r}; registered: {', '.join(overlay_names())}"
        )
    return factory(**config)
