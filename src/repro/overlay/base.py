"""Overlay interface.

Overlays maintain routing state over the set of *live* physical nodes and
answer two questions:

- :meth:`Overlay.route` — which node owns a key, and through which hop path
  (the hop path is what the experiments charge communication for);
- :meth:`Overlay.neighbors` — a node's links (broadcast, visualization).

Implementation note (documented substitution): routing decisions are
computed synchronously from current routing tables instead of exchanging
per-hop control messages through the event queue.  The *observables* —
hop counts, per-hop bytes, failures under churn — are preserved, because
every returned path is charged hop-by-hop to the physical network's stats
by the callers, and routing tables are damaged/repaired by churn callbacks
exactly as a maintenance protocol would.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import OverlayError


@dataclass
class RouteResult:
    """Outcome of a key lookup."""

    key: int
    owner: Optional[int]  # physical address of the responsible node
    path: List[int] = field(default_factory=list)  # physical addresses, in order
    success: bool = True

    @property
    def hops(self) -> int:
        return len(self.path)


class Overlay(ABC):
    """Common interface for structured and unstructured overlays."""

    name: str = "overlay"

    @abstractmethod
    def join(self, address: int) -> None:
        """Add a physical node to the overlay."""

    @abstractmethod
    def leave(self, address: int) -> None:
        """Remove a node (graceful or crash — callers decide semantics)."""

    @abstractmethod
    def route(self, origin: int, key: int) -> RouteResult:
        """Resolve ``key`` starting from ``origin``; returns owner and path."""

    @abstractmethod
    def neighbors(self, address: int) -> List[int]:
        """The node's overlay links (for broadcast and visualization)."""

    @abstractmethod
    def members(self) -> List[int]:
        """Current member addresses."""

    def require_member(self, address: int) -> None:
        if address not in self.members():
            raise OverlayError(f"node {address} is not an overlay member")


# ---------------------------------------------------------------------------
# Registry: every overlay registers a factory so scenarios, benchmarks, and
# the CLI construct overlays through one code path (make_overlay) instead of
# hand-rolled if/elif chains.
# ---------------------------------------------------------------------------

OverlayFactory = Callable[..., Overlay]

_OVERLAY_REGISTRY: Dict[str, OverlayFactory] = {}


def register_overlay(name: str, factory: OverlayFactory) -> None:
    """Register ``factory`` under ``name`` (last registration wins).

    Factories accept keyword configuration (``seed``, ``degree``, ...) and
    ignore what they do not use, so one call signature covers every overlay.
    """
    _OVERLAY_REGISTRY[name] = factory


def overlay_names() -> Tuple[str, ...]:
    """Registered overlay names, sorted for stable CLI/choices output."""
    return tuple(sorted(_OVERLAY_REGISTRY))


def make_overlay(name: str, **config) -> Overlay:
    """Construct a registered overlay by name.

    ``config`` keywords (``seed``, ``degree``, ...) are forwarded to the
    factory; unknown names raise :class:`OverlayError` listing the registry.
    """
    factory = _OVERLAY_REGISTRY.get(name)
    if factory is None:
        raise OverlayError(
            f"unknown overlay {name!r}; registered: {', '.join(overlay_names())}"
        )
    return factory(**config)
