"""Exception hierarchy for the P2PDocTagger reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base type.  Errors raised by substrates keep their own subclasses to
make failure sites identifiable in logs and tests.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A scenario, classifier, or pipeline was configured inconsistently."""


class NotTrainedError(ReproError):
    """A model was asked to predict before :meth:`fit`/``train`` completed."""


class VocabularyError(ReproError):
    """A vectorizer was used with an empty or frozen-violating lexicon."""


class OverlayError(ReproError):
    """An overlay routing or membership operation failed."""


class LookupError_(OverlayError):
    """A DHT lookup could not be resolved (partition, churned-out owner)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DataError(ReproError):
    """A corpus or data distribution request was invalid."""
