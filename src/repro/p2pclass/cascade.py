"""Cascade-SVM machinery (CEMPaR's aggregation step).

A cascade merges child SVM models by pooling their support vectors and
retraining on the pool (Graf et al., 2005).  Support vectors are a compressed
summary of each peer's data, so the merged model approximates training on
the union of all peers' documents at a fraction of the communication cost —
the core CEMPaR argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.calibration import PlattCalibrator
from repro.ml.kernel_svm import KernelSVM, KernelSVMModel, SupportVector
from repro.ml.sparse import SparseVector


@dataclass
class CascadeModel:
    """A regional cascaded model: the retrained SVM + calibration."""

    svm: KernelSVMModel
    calibrator: PlattCalibrator
    training_size: int
    training_accuracy: float

    def probability(self, vector: SparseVector) -> float:
        """Calibrated P(tag | vector)."""
        return self.calibrator.probability(self.svm.decision(vector))

    def wire_size(self) -> int:
        return self.svm.wire_size() + 16  # + Platt (A, B)


def _subsample_pairs(
    vectors: List[SparseVector],
    labels: List[int],
    max_size: int,
    rng: np.random.Generator,
) -> Tuple[List[SparseVector], List[int]]:
    """Class-stratified subsample keeping at most ``max_size`` examples."""
    if len(vectors) <= max_size:
        return vectors, labels
    positives = [i for i, y in enumerate(labels) if y == 1]
    negatives = [i for i, y in enumerate(labels) if y == -1]
    keep_pos = max(1, int(round(max_size * len(positives) / len(vectors))))
    keep_neg = max_size - keep_pos
    chosen: List[int] = []
    if positives:
        idx = rng.choice(len(positives), size=min(keep_pos, len(positives)),
                         replace=False)
        chosen.extend(positives[int(i)] for i in idx)
    if negatives and keep_neg > 0:
        idx = rng.choice(len(negatives), size=min(keep_neg, len(negatives)),
                         replace=False)
        chosen.extend(negatives[int(i)] for i in idx)
    chosen.sort()
    return [vectors[i] for i in chosen], [labels[i] for i in chosen]


def cascade_merge(
    child_models: Sequence[KernelSVMModel],
    C: float = 1.0,
    gamma: float = 0.5,
    kernel_name: str = "rbf",
    max_training_size: int = 400,
    seed: int = 0,
) -> Optional[CascadeModel]:
    """Merge child models' support vectors and retrain.

    Returns None when the children carry no support vectors at all (e.g.
    every child was a degenerate one-class model) — the caller treats the
    (tag, region) as having no model.
    """
    if max_training_size <= 0:
        raise ConfigurationError("max_training_size must be positive")
    vectors: List[SparseVector] = []
    labels: List[int] = []
    for model in child_models:
        child_vectors, child_labels = model.training_pairs()
        vectors.extend(child_vectors)
        labels.extend(child_labels)
    if not vectors:
        return None
    rng = np.random.default_rng(seed)
    vectors, labels = _subsample_pairs(vectors, labels, max_training_size, rng)

    unique = set(labels)
    if len(unique) == 1:
        # One-class pool: degenerate constant model, confidence from size.
        only = next(iter(unique))
        svm_model = KernelSVMModel(
            support_vectors=[], bias=float(only), gamma=gamma,
            kernel_name=kernel_name,
        )
        calibrator = PlattCalibrator().fit([float(only)] * len(labels), labels)
        return CascadeModel(
            svm=svm_model,
            calibrator=calibrator,
            training_size=len(labels),
            training_accuracy=1.0,
        )

    svm = KernelSVM(C=C, gamma=gamma, kernel_name=kernel_name, seed=seed)
    svm.fit(vectors, labels)
    decisions = [svm.decision(v) for v in vectors]
    calibrator = PlattCalibrator().fit(decisions, labels)
    correct = sum(
        1 for d, y in zip(decisions, labels) if (1 if d >= 0 else -1) == y
    )
    return CascadeModel(
        svm=svm.model,
        calibrator=calibrator,
        training_size=len(labels),
        training_accuracy=correct / len(labels),
    )


def support_vectors_payload(model: KernelSVMModel) -> List[SupportVector]:
    """The exact objects CEMPaR ships to a super-peer (privacy note: these
    are word-id/frequency vectors, never text)."""
    return list(model.support_vectors)
