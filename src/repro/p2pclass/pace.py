"""PACE: adaptive ensemble of linear SVMs over P2P networks.

Protocol (paper §2): each peer trains a **linear** SVM per tag and clusters
its training data; models + cluster centroids are propagated to all other
peers ("since no document vectors are propagated ... the system preserves
some level of privacy"); receivers index the models by centroid with LSH.
To tag a document, a peer retrieves the top-k models nearest to the test
vector and combines their predictions "weighted according to their accuracy
and distance from the test data".

Communication trade-off vs CEMPaR: PACE pays an up-front broadcast of
compact linear models, after which every prediction is **local** (zero query
traffic).  The broadcast uses the overlay's flood primitive when available
(unstructured overlays) and per-member unicast otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.calibration import PlattCalibrator
from repro.ml.kmeans import KMeans
from repro.ml.linear_svm import LinearSVM, LinearSVMModel
from repro.ml.lsh import RandomHyperplaneLSH
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import P2PTagClassifier, PeerData, binary_problems
from repro.p2pclass.voting import weighted_score
from repro.sim.codec import register_traffic_class
from repro.sim.scenario import Scenario

MSG_MODEL_BROADCAST = "pace.model_broadcast"

# Wire-format hint: PACE propagates serialized model bundles, the traffic
# that general-purpose compression helps most (shared by private-pace).
register_traffic_class(MSG_MODEL_BROADCAST, "model")


@dataclass
class PaceModelBundle:
    """What one peer propagates: per-tag linear models (with Platt
    calibration parameters), centroids, and validation accuracies.

    Privacy note (tested): the bundle contains weight vectors, two sigmoid
    parameters per tag, and centroids only — no document vectors, no text.
    """

    origin: int
    models: Dict[str, LinearSVMModel]
    accuracies: Dict[str, float]
    calibration: Dict[str, Tuple[float, float]]  # tag -> Platt (A, B)
    centroids: List[SparseVector]

    def wire_size(self) -> int:
        model_bytes = sum(m.wire_size() for m in self.models.values())
        tag_bytes = sum(len(t) + 8 for t in self.accuracies)
        platt_bytes = 16 * len(self.calibration)
        centroid_bytes = sum(c.wire_size() for c in self.centroids)
        return model_bytes + tag_bytes + platt_bytes + centroid_bytes + 8

    def probability(self, tag: str, decision: float) -> float:
        """Calibrated P(tag | decision) using the shipped Platt parameters."""
        a, b = self.calibration.get(tag, (-2.0, 0.0))
        z = a * decision + b
        if z >= 0:
            ez = np.exp(-min(z, 500.0))
            return float(ez / (1.0 + ez))
        return float(1.0 / (1.0 + np.exp(max(z, -500.0))))


@dataclass
class PaceConfig:
    """PACE hyperparameters."""

    top_k: int = 6
    num_clusters: int = 2
    lsh_bits: int = 8
    lsh_seed: int = 17  # shared by all peers, like the hashed feature space
    max_model_features: int = 400
    lambda_reg: float = 1e-4
    epochs: int = 12
    max_negative_ratio: float = 3.0
    distance_smoothing: float = 1.0
    propagation_window: float = 60.0  # peers broadcast at staggered times
    seed: int = 0

    def validate(self) -> None:
        if self.top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        if self.num_clusters < 1:
            raise ConfigurationError("num_clusters must be >= 1")
        if self.max_model_features < 1:
            raise ConfigurationError("max_model_features must be >= 1")
        if self.distance_smoothing <= 0:
            raise ConfigurationError("distance_smoothing must be positive")


class PaceClassifier(P2PTagClassifier):
    """PACE over the scenario's overlay."""

    traffic_prefix = "pace"

    def __init__(
        self,
        scenario: Scenario,
        peer_data: PeerData,
        tags=None,
        config: Optional[PaceConfig] = None,
    ) -> None:
        super().__init__(scenario, peer_data, tags)
        self.config = config or PaceConfig()
        self.config.validate()
        self._rng = np.random.default_rng(self.config.seed)
        # Per-receiving-peer state: LSH index over centroids + bundle store.
        self._indexes: Dict[int, RandomHyperplaneLSH] = {}
        self._received: Dict[int, Dict[int, PaceModelBundle]] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self) -> None:
        # Retraining (e.g. after refinements) re-propagates fresh bundles,
        # which replace each origin's previous models in every index.
        self._indexes.clear()
        self._received.clear()
        bundles = self._train_local_bundles()
        self._propagate(bundles)
        self._flush_network()
        self._trained = True

    def _train_local_bundles(self) -> Dict[int, PaceModelBundle]:
        cfg = self.config
        bundles: Dict[int, PaceModelBundle] = {}
        for address, items in sorted(self.peer_data.items()):
            if not items:
                continue
            problems = binary_problems(
                items, self.tags, cfg.max_negative_ratio, self._rng
            )
            if not problems:
                continue
            models: Dict[str, LinearSVMModel] = {}
            accuracies: Dict[str, float] = {}
            calibration: Dict[str, Tuple[float, float]] = {}
            for tag, (vectors, labels) in sorted(problems.items()):
                svm = LinearSVM(
                    lambda_reg=cfg.lambda_reg, epochs=cfg.epochs, seed=cfg.seed
                )
                svm.fit(vectors, labels)
                truncated = svm.model.truncated(cfg.max_model_features)
                models[tag] = truncated
                accuracies[tag] = svm.accuracy(vectors, labels)
                decisions = [truncated.decision(v) for v in vectors]
                calibrator = PlattCalibrator().fit(decisions, labels)
                calibration[tag] = calibrator.parameters()
            clusters = KMeans(
                k=cfg.num_clusters, seed=cfg.seed
            ).fit([item.vector for item in items])
            bundles[address] = PaceModelBundle(
                origin=address,
                models=models,
                accuracies=accuracies,
                calibration=calibration,
                centroids=clusters.centroids,
            )
        return bundles

    def _propagate(self, bundles: Dict[int, PaceModelBundle]) -> None:
        """Each bundle travels to every other live peer.

        One scheduled round (:meth:`_run_staggered_round`): every peer's
        broadcast instant is pre-computed and bulk-scheduled, so bundles
        from different peers interleave with churn and with each other in
        one kernel run.  One :meth:`Transport.broadcast` per bundle: the
        flood primitive supplies the recipient set on unstructured overlays
        (its edge crossings exceed the member count — flooding is redundant
        by design, and the excess is charged), unicast to every member
        otherwise.  The whole block is batch-delivered with the bundle
        sized once.
        """
        self._run_staggered_round(
            sorted(bundles),
            self.config.propagation_window / max(1, len(bundles)),
            self._rng,
            lambda address: self._broadcast_bundle(address, bundles[address]),
        )

    def _broadcast_bundle(self, address: int, bundle: PaceModelBundle) -> None:
        """One peer's activation: broadcast its bundle to the live overlay."""
        if address not in set(self.scenario.overlay.members()):
            self.scenario.stats.increment("pace_broadcast_skipped")
            return
        result = self.transport.broadcast(address, MSG_MODEL_BROADCAST, bundle)
        if result.redundant_messages:
            self.scenario.stats.increment(
                "pace_flood_redundant", result.redundant_messages
            )
        for recipient in result.delivered_to():
            self._store_bundle(recipient, bundle)
        # A peer also indexes its own models (no message).
        self._store_bundle(address, bundle)

    def _store_bundle(self, receiver: int, bundle: PaceModelBundle) -> None:
        index = self._indexes.get(receiver)
        if index is None:
            index = RandomHyperplaneLSH(
                num_bits=self.config.lsh_bits, seed=self.config.lsh_seed
            )
            self._indexes[receiver] = index
            self._received[receiver] = {}
        store = self._received[receiver]
        if bundle.origin in store:
            return  # duplicate delivery (flood redundancy)
        store[bundle.origin] = bundle
        for centroid in bundle.centroids:
            index.insert(centroid, bundle.origin)

    # ------------------------------------------------------------------
    # Prediction (fully local — the PACE advantage)
    # ------------------------------------------------------------------

    def predict_scores(self, origin: int, vector: SparseVector) -> Dict[str, float]:
        self._require_trained()
        index = self._indexes.get(origin)
        store = self._received.get(origin, {})
        if index is None or len(index) == 0:
            return {tag: 0.0 for tag in self.tags}
        nearest = index.query(vector, top_k=self.config.top_k)
        votes: Dict[str, List[Tuple[float, float]]] = {t: [] for t in self.tags}
        seen_origins = set()
        for distance, bundle_origin in nearest:
            if bundle_origin in seen_origins:
                continue  # a bundle may match via several centroids
            seen_origins.add(bundle_origin)
            bundle = store.get(bundle_origin)
            if bundle is None:
                continue
            proximity = 1.0 / (self.config.distance_smoothing + distance)
            for tag, model in bundle.models.items():
                probability = bundle.probability(tag, model.decision(vector))
                weight = bundle.accuracies.get(tag, 0.5) * proximity
                votes[tag].append((probability, weight))
        return {tag: weighted_score(votes[tag]) for tag in self.tags}

    # -- diagnostics --------------------------------------------------------

    def models_indexed_at(self, address: int) -> int:
        """How many peers' bundles this peer has indexed (tests/diagnostics)."""
        return len(self._received.get(address, {}))
