"""Shared machinery for P2P tag classifiers.

The paper reduces multi-label tagging to one-vs-all binary problems: "for
each c in Y, we learn a function f_c : X -> Y_c, where the output indicates
whether or not the tag is assigned".  :func:`binary_problems` performs that
decomposition on a peer's local data; :class:`P2PTagClassifier` is the
pluggable interface P2PDocTagger trains and queries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.data.corpus import Corpus
from repro.envutil import env_flag
from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.sparse import SparseVector
from repro.sim.node import SimNode
from repro.sim.scenario import Scenario
from repro.text.vectorizer import PreprocessingPipeline


@dataclass(frozen=True)
class TaggedVector:
    """A preprocessed document: sparse vector + its tag set."""

    vector: SparseVector
    tags: FrozenSet[str]

    def wire_size(self) -> int:
        return self.vector.wire_size() + sum(len(t) for t in self.tags) + 2


PeerData = Dict[int, List[TaggedVector]]

#: set to "1" to force the legacy sequential-stagger round driver — the
#: equivalence harness runs both drivers and compares stats byte-for-byte.
SCALAR_ROUNDS_ENV = "REPRO_SCALAR_ROUNDS"


def corpus_to_peer_data(
    corpus: Corpus, pipeline: Optional[PreprocessingPipeline] = None
) -> PeerData:
    """Vectorize a corpus into per-peer training data.

    Every peer runs the same deterministic pipeline locally (hashed feature
    ids need no coordination), mirroring the paper's preprocessing stage.
    """
    pipeline = pipeline or PreprocessingPipeline()
    peer_data: PeerData = {}
    for owner in corpus.owners:
        items = [
            TaggedVector(vector=pipeline.process(d.text), tags=d.tags)
            for d in corpus.documents_of(owner)
        ]
        peer_data[owner] = items
    return peer_data


def binary_problems(
    items: Sequence[TaggedVector],
    tags: Iterable[str],
    max_negative_ratio: float = 3.0,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, Tuple[List[SparseVector], List[int]]]:
    """One-vs-all decomposition of a local dataset.

    For each tag with at least one local positive, returns (vectors, ±1
    labels) where positives are documents carrying the tag and negatives are
    sampled from the rest (capped at ``max_negative_ratio`` x positives to
    keep the per-tag problems balanced, as one-against-all SVM practice
    dictates).  Tags without local positives are skipped — that peer simply
    contributes nothing for them.
    """
    if max_negative_ratio <= 0:
        raise ConfigurationError("max_negative_ratio must be positive")
    rng = rng or np.random.default_rng(0)
    problems: Dict[str, Tuple[List[SparseVector], List[int]]] = {}
    for tag in tags:
        positives = [item.vector for item in items if tag in item.tags]
        if not positives:
            continue
        negatives = [item.vector for item in items if tag not in item.tags]
        cap = int(round(max_negative_ratio * len(positives)))
        if cap and len(negatives) > cap:
            chosen = rng.choice(len(negatives), size=cap, replace=False)
            negatives = [negatives[int(i)] for i in chosen]
        vectors = positives + negatives
        labels = [1] * len(positives) + [-1] * len(negatives)
        problems[tag] = (vectors, labels)
    return problems


def collect_tag_universe(peer_data: PeerData) -> List[str]:
    """All tags observed across peers, sorted for determinism."""
    tags = set()
    for items in peer_data.values():
        for item in items:
            tags |= item.tags
    return sorted(tags)


class P2PTagClassifier(ABC):
    """Interface of the pluggable P2P classification component.

    Subclasses train over a :class:`~repro.sim.scenario.Scenario` (which
    supplies the overlay, physical network and stats sink) and per-peer local
    data, then answer per-tag scores for untagged document vectors.
    """

    #: message-type prefix used in traffic accounting
    traffic_prefix: str = "p2p"

    #: True when the classifier can fold new examples in without a full
    #: retrain (see :meth:`incremental_update`)
    supports_incremental: bool = False

    def __init__(
        self,
        scenario: Scenario,
        peer_data: PeerData,
        tags: Optional[Sequence[str]] = None,
    ) -> None:
        if not peer_data:
            raise ConfigurationError("peer_data must not be empty")
        unknown = set(peer_data) - set(scenario.peer_addresses)
        if unknown:
            raise ConfigurationError(
                f"peer_data contains addresses outside the scenario: {unknown}"
            )
        self.scenario = scenario
        self.peer_data = peer_data
        self.tags: List[str] = (
            sorted(tags) if tags is not None else collect_tag_universe(peer_data)
        )
        if not self.tags:
            raise ConfigurationError("no tags to learn")
        self._trained = False
        #: debug/equivalence flag: drive training rounds through the legacy
        #: sequential ``_advance`` stagger loop instead of the kernel's
        #: scheduled-batch pattern.  Activation times, RNG consumption, and
        #: stats are bit-identical either way (see :meth:`_run_staggered_round`).
        self.scalar_rounds = env_flag(SCALAR_ROUNDS_ENV)
        #: the one sanctioned path to the wire — protocols must not talk to
        #: the PhysicalNetwork directly (uniform charging and batching).
        self.transport = scenario.transport
        # Register every peer on the physical network so traffic flows.
        # Materialization is ownership-gated: on a directory-mode shard
        # worker only owned peers build a SimNode (the O(N/K) construction
        # contract); remote peers register as directory-served endpoints so
        # liveness checks still answer globally.  Everywhere else the gate
        # is constant-open and all N peers materialize as before.
        self.nodes: Dict[int, SimNode] = {}
        for address in scenario.peer_addresses:
            node = scenario.materialize_peer(address)
            if node is not None:
                self.nodes[address] = node

    # -- lifecycle --------------------------------------------------------

    @abstractmethod
    def train(self) -> None:
        """Build the global model(s) collaboratively; sets ``trained``."""

    @property
    def trained(self) -> bool:
        return self._trained

    def incremental_update(
        self, owner: int, items: Sequence[TaggedVector]
    ) -> None:
        """Fold new labeled examples from ``owner`` into the global model.

        Only meaningful when :attr:`supports_incremental` is True; the base
        implementation refuses so callers fall back to a full retrain.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental updates"
        )

    def _require_trained(self) -> None:
        if not self._trained:
            raise NotTrainedError(f"{type(self).__name__} is not trained")

    # -- prediction ---------------------------------------------------------

    @abstractmethod
    def predict_scores(self, origin: int, vector: SparseVector) -> Dict[str, float]:
        """Per-tag assignment scores in [0, 1], queried from peer ``origin``."""

    def predict_tags(
        self, origin: int, vector: SparseVector, threshold: float = 0.5
    ) -> FrozenSet[str]:
        """Tags whose score clears ``threshold`` (the auto-tag operation)."""
        self._require_trained()
        scores = self.predict_scores(origin, vector)
        chosen = frozenset(t for t, s in scores.items() if s >= threshold)
        if chosen:
            return chosen
        # Never emit an empty tagging: fall back to the single best tag,
        # matching AutoTag's behaviour of always assigning something.
        if scores:
            best = max(scores.items(), key=lambda kv: kv[1])
            return frozenset({best[0]})
        return frozenset()

    def rank_tags(
        self, origin: int, vector: SparseVector
    ) -> List[Tuple[str, float]]:
        """Tags sorted by descending score (the Suggest-Tag operation)."""
        self._require_trained()
        scores = self.predict_scores(origin, vector)
        return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- helpers ---------------------------------------------------------------

    def _advance(self, seconds: float) -> None:
        """Advance virtual time by ``seconds`` (runs every queued event due
        in the window, so churn and in-flight deliveries interleave with the
        caller's next action).

        Training rounds no longer drive the clock through repeated
        ``_advance`` calls — they bulk-schedule all peer activations via
        :meth:`_run_staggered_round` — but the method remains the sanctioned
        way for a protocol to idle between phases, and the legacy scalar
        round driver still steps through it.
        """
        if seconds > 0:
            simulator = self.scenario.simulator
            simulator.run(until=simulator.now + seconds)

    def _run_staggered_round(
        self,
        participants: Sequence[int],
        scale: float,
        rng: np.random.Generator,
        action: Callable[[int], None],
    ) -> None:
        """Run one training round: ``action(address)`` once per participant
        at staggered virtual times, so churn interleaves with the protocol.

        Activation gaps are exponential(``scale``) inter-arrivals drawn as
        one vectorized block up front (numpy array fills consume the RNG
        stream exactly as per-participant scalar draws would), accumulated
        into absolute activation times, and bulk-scheduled through the
        kernel's :meth:`~repro.sim.engine.Simulator.schedule_batch_at` —
        one kernel run interleaves every peer's activations with churn,
        stabilization, and in-flight deliveries, instead of serializing
        the round through per-peer ``run(until=...)`` calls.

        The legacy sequential driver survives behind :attr:`scalar_rounds`
        (env ``REPRO_SCALAR_ROUNDS=1``): it steps ``_advance(gap)`` per
        participant, which lands on bit-identical activation instants
        because both drivers accumulate the same gaps in the same float
        order.  The equivalence suite asserts byte-identical stats between
        the two drivers on every overlay/churn/loss combination.
        """
        if not participants:
            return
        simulator = self.scenario.simulator
        gaps = rng.exponential(scale, size=len(participants))
        if self.scalar_rounds and not self.scenario.sharded:
            # The sequential driver calls actions outside the kernel, which
            # cannot be ownership-partitioned — sharded workers always use
            # the scheduled path (both land on identical activation times).
            for address, gap in zip(participants, gaps.tolist()):
                self._advance(float(gap))
                action(address)
            return
        times: List[float] = []
        t = simulator.now
        for gap in gaps.tolist():
            t += gap
            times.append(t)
        # In a sharded worker, each activation is scheduled only on the
        # peer's owning shard (protocol work partitions across workers);
        # every worker still advances through the whole round window so the
        # SPMD orchestration stays in lockstep.  On the single-heap kernel
        # `owns` is constant True and this is the full batch.
        owns = self.scenario.owns
        owned_times: List[float] = []
        owned_args: List[tuple] = []
        for time, address in zip(times, participants):
            if owns(address):
                owned_times.append(time)
                owned_args.append((address,))
        simulator.schedule_batch_at(owned_times, action, owned_args)
        simulator.run(until=times[-1])

    #: stream lane for per-peer activation draws (distinct from the
    #: network/loss/churn lanes of repro.sim.network.PeerStreams)
    _ACTIVATION_LANE = 17

    def _activation_rng(
        self, seed: int, address: int
    ) -> Optional[np.random.Generator]:
        """Per-peer stream for draws made *inside* a peer's activation event.

        Under the decomposed-randomness mode (``rng_mode="perpeer"``),
        activation events execute only on the peer's owning shard, so any
        draw they take from a protocol-wide stream would desynchronize that
        stream across shard replicas.  Protocols must route such draws
        through this per-peer generator instead (deterministic in
        ``(seed, address)``, so every execution shape agrees).  Returns
        ``None`` in the legacy single-stream mode — callers fall back to
        their protocol-wide RNG, keeping pre-shard digests byte-identical.
        """
        if self.scenario.config.rng_mode != "perpeer":
            return None
        from repro.sim.network import stream_seed

        return np.random.default_rng(
            stream_seed(seed, address, self._ACTIVATION_LANE)
        )

    def _flush_network(self, settle_time: float = 5.0) -> None:
        """Let queued deliveries complete (advances virtual time).

        With churn active the event queue never drains (leave/rejoin events
        reschedule forever), so we advance a bounded settle window instead —
        long enough for any in-flight message at the configured latency.
        """
        if self.scenario.churn_model.churns:
            self.transport.flush(settle_time)
        else:
            self.transport.flush()
