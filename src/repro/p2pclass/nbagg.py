"""NB-Agg: exact P2P Naive Bayes via sufficient-statistic aggregation.

A third pluggable P2P classification approach (the paper stresses the
classifier is "a pluggable component").  Each peer computes per-tag NB
sufficient statistics over its local documents and uploads them **once** to
a DHT-located aggregator peer per tag (the same deterministic super-peer
mechanism CEMPaR uses, with one region).  Because NB statistics are
additive, the aggregated model is *bit-identical to centralized training* —
collaboration without approximation — while shipping only word-id count
sums, never documents.

Queries route the document vector to each tag's aggregator, like CEMPaR.
This gives the experiments a third point on the accuracy/communication
plane: exact global model, cheap statistics upload, per-query routing cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.naive_bayes import MultinomialNB, NBSufficientStats
from repro.ml.sparse import SparseVector
from repro.overlay.superpeer import SuperPeerDirectory
from repro.p2pclass.base import P2PTagClassifier, PeerData
from repro.sim.codec import register_traffic_class
from repro.sim.scenario import Scenario

MSG_STATS_UPLOAD = "nbagg.stats_upload"
MSG_QUERY = "nbagg.query"
MSG_PREDICTION = "nbagg.prediction"

# Wire-format hints: sufficient-statistics uploads compress like model
# bundles; queries carry sparse vectors; predictions are control frames.
register_traffic_class(MSG_STATS_UPLOAD, "model")
register_traffic_class(MSG_QUERY, "vector")
register_traffic_class(MSG_PREDICTION, "control")


@dataclass
class NBAggConfig:
    """NB-Agg hyperparameters."""

    alpha: float = 0.2
    vocabulary_size: int = 2 ** 18
    upload_window: float = 60.0
    seed: int = 0

    def validate(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if self.vocabulary_size <= 0:
            raise ConfigurationError("vocabulary_size must be positive")


class NBAggClassifier(P2PTagClassifier):
    """Exact distributed Naive Bayes over the scenario's DHT."""

    traffic_prefix = "nbagg"
    supports_incremental = True

    def __init__(
        self,
        scenario: Scenario,
        peer_data: PeerData,
        tags=None,
        config: Optional[NBAggConfig] = None,
    ) -> None:
        super().__init__(scenario, peer_data, tags)
        self.config = config or NBAggConfig()
        self.config.validate()
        self.directory = SuperPeerDirectory(scenario.overlay, num_regions=1)
        self._aggregated: Dict[str, NBSufficientStats] = {}
        self._models: Dict[str, MultinomialNB] = {}
        self._holder: Dict[str, int] = {}
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self) -> None:
        self._aggregated.clear()
        self._models.clear()
        self._holder.clear()
        self._upload_statistics()
        self._flush_network()
        self._build_models()
        self._trained = True

    def _local_statistics(self, items) -> Dict[str, NBSufficientStats]:
        """Per-tag sufficient statistics over one peer's documents.

        Every local document contributes to every tag's binary problem
        (positive if tagged, negative otherwise) — NB has no class-balance
        pathology that would require negative subsampling.
        """
        per_tag: Dict[str, NBSufficientStats] = {}
        for tag in self.tags:
            stats = NBSufficientStats()
            saw_positive = False
            for item in items:
                label = 1 if tag in item.tags else -1
                saw_positive |= label == 1
                stats.add_document(item.vector, label)
            if saw_positive:
                per_tag[tag] = stats
        return per_tag

    def _upload_statistics(self) -> None:
        """One scheduled round: upload slots are pre-computed and
        bulk-scheduled so peers' uploads interleave with churn."""
        self._run_staggered_round(
            [address for address, items in sorted(self.peer_data.items()) if items],
            self.config.upload_window / max(1, len(self.peer_data)),
            self._rng,
            self._upload_one,
        )

    def _upload_one(self, address: int) -> None:
        if address not in self.scenario.overlay.members():
            self.scenario.stats.increment("nbagg_upload_skipped")
            return
        statistics = self._local_statistics(self.peer_data[address])
        for tag, stats in sorted(statistics.items()):
            self._send_stats(address, tag, stats)

    def _send_stats(self, address: int, tag: str, stats: NBSufficientStats) -> None:
        outcome = self.transport.route_and_send(
            address, self.directory.key_for(tag, 0), MSG_STATS_UPLOAD, stats
        )
        if outcome.lookup_failed:
            self.scenario.stats.increment("nbagg_upload_lookup_failed")
            return
        if not outcome.delivered:
            self.scenario.stats.increment("nbagg_upload_lost")
            return
        aggregate = self._aggregated.get(tag)
        if aggregate is None:
            self._aggregated[tag] = stats
        else:
            aggregate.merge(stats)
        self._holder[tag] = outcome.route.owner

    def _build_models(self) -> None:
        for tag, stats in sorted(self._aggregated.items()):
            if stats.num_documents == 0:
                continue
            self._models[tag] = MultinomialNB.from_stats(
                stats,
                alpha=self.config.alpha,
                vocabulary_size=self.config.vocabulary_size,
            )

    # ------------------------------------------------------------------
    # Incremental updates (refinement path)
    # ------------------------------------------------------------------

    def incremental_update(self, owner: int, items) -> None:
        """Fold new labeled examples in by uploading *delta* statistics.

        Because NB statistics are additive, merging a delta is exactly
        equivalent to retraining on the enlarged corpus — at the cost of one
        small upload per touched tag instead of a full training round.  This
        is how tag refinements reach the global model cheaply.

        Boundary case: if a delta contains a peer's *first* positive for a
        tag, a full retrain would also contribute the peer's older documents
        as negatives for that tag; the delta path adds only the new items.
        The approximation vanishes at the next full training round.
        """
        self._require_trained()
        if not items:
            return
        if owner not in self.scenario.overlay.members():
            self.scenario.stats.increment("nbagg_update_deferred")
            return
        for tag, stats in sorted(self._local_statistics(items).items()):
            self._send_stats(owner, tag, stats)
        self._flush_network()
        self._build_models()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict_scores(self, origin: int, vector: SparseVector) -> Dict[str, float]:
        self._require_trained()
        if origin not in self.scenario.overlay.members():
            self.scenario.stats.increment("nbagg_query_deferred")
            members = self.scenario.overlay.members()
            if not members:
                return {tag: 0.0 for tag in self.tags}
            origin = min(members)
        scores: Dict[str, float] = {}
        contacted: Dict[int, bool] = {}
        for tag in self.tags:
            model = self._models.get(tag)
            if model is None:
                scores[tag] = 0.0
                continue
            route = self.directory.locate(origin, tag, 0)
            holder = self._holder.get(tag)
            if not route.success or route.owner != holder:
                self.scenario.stats.increment("nbagg_query_lookup_failed")
                scores[tag] = 0.0
                continue
            owner = route.owner
            if owner != origin and owner not in contacted:
                query = self.transport.send(
                    origin, owner, MSG_QUERY, vector, hops=max(1, route.hops)
                )
                contacted[owner] = query.delivered
                if query.delivered:
                    self.transport.send(
                        owner, origin, MSG_PREDICTION, {tag: 0.0}
                    )
            if owner != origin and not contacted.get(owner, False):
                self.scenario.stats.increment("nbagg_query_lost")
                scores[tag] = 0.0
                continue
            scores[tag] = model.probability(vector)
        self._flush_network()
        return scores
