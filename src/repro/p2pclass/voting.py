"""Vote combiners.

CEMPaR assigns tags "by (weighted) majority voting" over regional models;
PACE weights votes "according to their accuracy and distance from the test
data".  Both reduce to the two functions here.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def majority_vote(votes: Sequence[int]) -> int:
    """Unweighted majority over ±1 votes (ties break positive)."""
    if not votes:
        return -1
    return 1 if sum(votes) >= 0 else -1


def weighted_majority_vote(votes: Sequence[Tuple[int, float]]) -> int:
    """Majority over (±1 vote, weight >= 0) pairs (ties break positive)."""
    if not votes:
        return -1
    total = sum(vote * max(0.0, weight) for vote, weight in votes)
    return 1 if total >= 0 else -1


def weighted_score(votes: Sequence[Tuple[float, float]]) -> float:
    """Weighted mean of (score in [0,1], weight >= 0) pairs.

    Returns 0.0 for an empty vote set — an unqueryable tag is "not assigned",
    never an error, because peers must keep working when regions are down.
    """
    numerator = 0.0
    denominator = 0.0
    for score, weight in votes:
        weight = max(0.0, weight)
        numerator += score * weight
        denominator += weight
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def combine_score_maps(
    maps: Sequence[Tuple[Dict[str, float], float]],
    tags: Sequence[str],
) -> Dict[str, float]:
    """Combine several per-tag score maps with per-map weights.

    Missing tags in a map simply do not vote for that tag (a regional model
    that never saw a tag abstains rather than voting 0).
    """
    combined: Dict[str, float] = {}
    for tag in tags:
        votes: List[Tuple[float, float]] = [
            (scores[tag], weight) for scores, weight in maps if tag in scores
        ]
        combined[tag] = weighted_score(votes)
    return combined
