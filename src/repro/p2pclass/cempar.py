"""CEMPaR: communication-efficient P2P classification via cascade SVM + DHT.

Training protocol (paper §2, "P2P classification"):

1. every peer trains a non-linear SVM per tag on its local tagged documents;
2. each peer's support vectors are propagated **once** to the super-peer for
   (tag, its region) — located deterministically through the DHT;
3. super-peers cascade the collected local models into regional models;
4. untagged document vectors are sent to the regional super-peers, whose
   predictions are combined by weighted majority voting.

Communication accounting: every upload and query travels the DHT route, so
its bytes are charged once per hop; lookups that fail under churn lose the
contribution — exactly the degradation experiment E4 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.kernel_svm import KernelSVM, KernelSVMModel
from repro.ml.sparse import SparseVector
from repro.overlay.superpeer import SuperPeerDirectory
from repro.p2pclass.base import P2PTagClassifier, PeerData, binary_problems
from repro.p2pclass.cascade import CascadeModel, cascade_merge
from repro.p2pclass.voting import weighted_score
from repro.sim.codec import register_traffic_class
from repro.sim.scenario import Scenario

MSG_MODEL_UPLOAD = "cempar.model_upload"
MSG_QUERY = "cempar.query"
MSG_PREDICTION = "cempar.prediction"

# Wire-format hints: uploads carry model bundles, queries carry sparse
# document vectors, predictions are small score maps (control traffic).
register_traffic_class(MSG_MODEL_UPLOAD, "model")
register_traffic_class(MSG_QUERY, "vector")
register_traffic_class(MSG_PREDICTION, "control")


@dataclass
class CemparConfig:
    """CEMPaR hyperparameters."""

    num_regions: int = 2
    C: float = 1.0
    gamma: float = 0.5
    kernel_name: str = "rbf"
    max_negative_ratio: float = 3.0
    max_cascade_training_size: int = 400
    upload_window: float = 60.0  # peers upload at staggered virtual times
    seed: int = 0

    def validate(self) -> None:
        if self.num_regions < 1:
            raise ConfigurationError("num_regions must be >= 1")
        if self.C <= 0 or self.gamma <= 0:
            raise ConfigurationError("C and gamma must be positive")


class CemparClassifier(P2PTagClassifier):
    """CEMPaR over the scenario's DHT overlay."""

    traffic_prefix = "cempar"

    def __init__(
        self,
        scenario: Scenario,
        peer_data: PeerData,
        tags=None,
        config: Optional[CemparConfig] = None,
    ) -> None:
        super().__init__(scenario, peer_data, tags)
        self.config = config or CemparConfig()
        self.config.validate()
        self.directory = SuperPeerDirectory(
            scenario.overlay, num_regions=self.config.num_regions
        )
        # (tag, region) -> accumulated child models at the super-peer.
        self._inbox: Dict[Tuple[str, int], List[KernelSVMModel]] = {}
        # (tag, region) -> cascaded regional model, held by its super-peer.
        self.regional_models: Dict[Tuple[str, int], CascadeModel] = {}
        # (tag, region) -> super-peer address that built the model.
        self._model_holder: Dict[Tuple[str, int], int] = {}
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self) -> None:
        # Retraining (e.g. after refinements) rebuilds the cascades from a
        # fresh upload round rather than stacking onto stale inboxes.
        self._inbox.clear()
        self.regional_models.clear()
        self._model_holder.clear()
        self._upload_local_models()
        self._flush_network()
        self._cascade_regions()
        self._trained = True

    def _upload_local_models(self) -> None:
        """One scheduled round: every peer's upload slot is pre-computed and
        bulk-scheduled, so uploads from different peers interleave with
        churn (a peer churned out at its slot misses the cascade round).
        Local SVM training happens at the activation instant — the stagger
        gaps are drawn as one block *before* any training draws, so the
        protocol RNG stream no longer depends on per-peer training order.
        """
        self._run_staggered_round(
            [address for address, items in sorted(self.peer_data.items()) if items],
            self.config.upload_window / max(1, len(self.peer_data)),
            self._rng,
            self._upload_one,
        )

    def _upload_one(self, address: int) -> None:
        cfg = self.config
        if address not in self.scenario.overlay.members():
            # Churned out at its upload slot: this contribution misses
            # the initial cascade round.
            self.scenario.stats.increment("cempar_upload_skipped")
            return
        region = self.directory.region_of(address)
        # Negative subsampling happens at the activation instant; under
        # per-peer randomness it draws from the peer's own stream so the
        # draw is identical no matter which shard executes the activation.
        rng = self._activation_rng(cfg.seed, address) or self._rng
        problems = binary_problems(
            self.peer_data[address], self.tags, cfg.max_negative_ratio, rng
        )
        for tag, (vectors, labels) in sorted(problems.items()):
            svm = KernelSVM(
                C=cfg.C,
                gamma=cfg.gamma,
                kernel_name=cfg.kernel_name,
                seed=cfg.seed,
            )
            svm.fit(vectors, labels)
            self._send_model(address, tag, region, svm.model)

    def _send_model(
        self, address: int, tag: str, region: int, model: KernelSVMModel
    ) -> None:
        outcome = self.transport.route_and_send(
            address,
            self.directory.key_for(tag, region),
            MSG_MODEL_UPLOAD,
            model,
        )
        if outcome.lookup_failed:
            self.scenario.stats.increment("cempar_upload_lookup_failed")
            return
        if outcome.delivered:
            # Loopback when the peer *is* the super-peer: direct handoff.
            self._inbox.setdefault((tag, region), []).append(model)
        else:
            self.scenario.stats.increment("cempar_upload_lost")

    def _cascade_regions(self) -> None:
        cfg = self.config
        for (tag, region), children in sorted(self._inbox.items()):
            cascaded = cascade_merge(
                children,
                C=cfg.C,
                gamma=cfg.gamma,
                kernel_name=cfg.kernel_name,
                max_training_size=cfg.max_cascade_training_size,
                seed=cfg.seed,
            )
            if cascaded is None:
                continue
            self.regional_models[(tag, region)] = cascaded
            owner = self.directory.owners(
                self._any_live_peer(), tag
            ).get(region)
            if owner is not None:
                self._model_holder[(tag, region)] = owner

    def _any_live_peer(self) -> int:
        members = self.scenario.overlay.members()
        if not members:
            raise ConfigurationError("no live peers remain in the overlay")
        return min(members)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict_scores(self, origin: int, vector: SparseVector) -> Dict[str, float]:
        """Query all regional super-peers and combine by weighted voting.

        One query message per distinct super-peer address (the document
        vector), one response per contacted super-peer (per-tag scores).
        """
        self._require_trained()
        if origin not in self.scenario.overlay.members():
            # The peer is churned out right now; the query happens when it is
            # next online (deferred), routed from its rejoined position.
            self.scenario.stats.increment("cempar_query_deferred")
            origin = self._any_live_peer()
        by_owner = self._group_roles_by_owner(origin)
        votes: Dict[str, List[Tuple[float, float]]] = {t: [] for t in self.tags}
        for owner, roles in sorted(by_owner.items()):
            regional_scores = self._scores_held_by(owner, roles, vector)
            if not regional_scores:
                continue
            if owner != origin:
                query = self.transport.send(
                    origin,
                    owner,
                    MSG_QUERY,
                    vector,
                    hops=max(1, roles[0][2]),
                )
                if not query.delivered:
                    self.scenario.stats.increment("cempar_query_lost")
                    continue
                self.transport.send(
                    owner,
                    origin,
                    MSG_PREDICTION,
                    {t: 0.0 for t in regional_scores},
                    hops=1,
                )
            for tag, (probability, weight) in regional_scores.items():
                votes[tag].append((probability, weight))
        self._flush_network()
        return {tag: weighted_score(votes[tag]) for tag in self.tags}

    def _group_roles_by_owner(
        self, origin: int
    ) -> Dict[int, List[Tuple[str, int, int]]]:
        """owner address -> [(tag, region, route hops)] for live lookups."""
        by_owner: Dict[int, List[Tuple[str, int, int]]] = {}
        for tag in self.tags:
            for region, route in self.directory.locate_all(origin, tag):
                if not route.success or route.owner is None:
                    self.scenario.stats.increment("cempar_query_lookup_failed")
                    continue
                by_owner.setdefault(route.owner, []).append(
                    (tag, region, max(1, route.hops))
                )
        return by_owner

    def _scores_held_by(
        self,
        owner: int,
        roles: List[Tuple[str, int, int]],
        vector: SparseVector,
    ) -> Dict[str, Tuple[float, float]]:
        """Evaluate the regional models the contacted super-peer holds.

        Returns tag -> (calibrated probability, vote weight).  Under churn
        the DHT may resolve to a peer that never received the cascaded model
        (responsibility migrated after training); such owners answer nothing,
        which the vote combiner treats as abstention.
        """
        scores: Dict[str, Tuple[float, float]] = {}
        for tag, region, _ in roles:
            model = self.regional_models.get((tag, region))
            holder = self._model_holder.get((tag, region))
            if model is None or holder != owner:
                continue
            weight = model.training_accuracy * model.training_size
            scores[tag] = (model.probability(vector), weight)
        return scores
