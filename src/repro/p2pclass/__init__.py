"""P2P classification — the pluggable component of P2PDocTagger (paper §2).

Two approaches, both from the authors' prior work:

- :class:`~repro.p2pclass.cempar.CemparClassifier` — CEMPaR (ECML/PKDD 2009):
  cascade SVM over DHT-located regional super-peers;
- :class:`~repro.p2pclass.pace.PaceClassifier` — PACE (DASFAA 2010): adaptive
  ensemble of linear SVMs indexed by cluster centroids under LSH.

Both implement :class:`~repro.p2pclass.base.P2PTagClassifier`, so P2PDocTagger
treats the algorithm as a plug-in, exactly as the paper emphasizes.
"""

from repro.p2pclass.base import (
    TaggedVector,
    PeerData,
    P2PTagClassifier,
    binary_problems,
    corpus_to_peer_data,
)
from repro.p2pclass.voting import majority_vote, weighted_majority_vote
from repro.p2pclass.cascade import cascade_merge, CascadeModel
from repro.p2pclass.cempar import CemparClassifier, CemparConfig
from repro.p2pclass.pace import PaceClassifier, PaceConfig
from repro.p2pclass.private import PrivatePaceClassifier, PrivatePaceConfig
from repro.p2pclass.nbagg import NBAggClassifier, NBAggConfig

__all__ = [
    "TaggedVector",
    "PeerData",
    "P2PTagClassifier",
    "binary_problems",
    "corpus_to_peer_data",
    "majority_vote",
    "weighted_majority_vote",
    "cascade_merge",
    "CascadeModel",
    "CemparClassifier",
    "CemparConfig",
    "PaceClassifier",
    "PaceConfig",
    "PrivatePaceClassifier",
    "PrivatePaceConfig",
    "NBAggClassifier",
    "NBAggConfig",
]
