"""Privacy-preserving PACE: the paper's pluggability claim, realized.

Paper §2: "the P2P classification algorithm in P2PDocTagger is a pluggable
component.  Therefore, if we deploy a privacy preserving P2P classification
algorithm, P2PDocTagger will then inherit the privacy preserving property."

:class:`PrivatePaceClassifier` is that deployment: before a peer propagates
its model bundle, every shared artifact is randomized à la differential
privacy:

- **weight vectors** get Laplace noise calibrated to sensitivity/epsilon
  (output perturbation for regularized ERM, Chaudhuri & Monteleoni 2008);
- **centroids** get Laplace noise (they are means of normalized documents,
  sensitivity ~ 2/n per coordinate for an n-document cluster);
- **reported accuracies** are noised and clamped to [0, 1].

The local index and local predictions are untouched — privacy applies to
what *leaves* the peer.  Epsilon is the knob the privacy-vs-accuracy
ablation sweeps: smaller epsilon = stronger privacy = noisier ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.linear_svm import LinearSVMModel
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import PeerData
from repro.p2pclass.pace import PaceClassifier, PaceConfig, PaceModelBundle
from repro.sim.scenario import Scenario


@dataclass
class PrivatePaceConfig(PaceConfig):
    """PACE hyperparameters plus the privacy budget."""

    epsilon: float = 1.0  # per-peer privacy budget (smaller = more private)
    weight_sensitivity: float = 2.0  # ERM output sensitivity bound

    def validate(self) -> None:  # noqa: D102 - inherited contract
        super().validate()
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.weight_sensitivity <= 0:
            raise ConfigurationError("weight_sensitivity must be positive")


class PrivatePaceClassifier(PaceClassifier):
    """PACE whose outgoing bundles are randomized before propagation.

    Propagation inherits PACE's scheduled-batch round: noisy bundles are
    broadcast at bulk-scheduled staggered instants, and only the randomized
    artifacts ever reach the transport.
    """

    traffic_prefix = "private-pace"

    def __init__(
        self,
        scenario: Scenario,
        peer_data: PeerData,
        tags=None,
        config: Optional[PrivatePaceConfig] = None,
    ) -> None:
        config = config or PrivatePaceConfig()
        super().__init__(scenario, peer_data, tags, config)
        self.config: PrivatePaceConfig = config
        self._noise_rng = np.random.default_rng(config.seed ^ 0x5EED)

    # ------------------------------------------------------------------

    def _train_local_bundles(self) -> Dict[int, PaceModelBundle]:
        bundles = super()._train_local_bundles()
        return {
            address: self._randomize(bundle, len(self.peer_data[address]))
            for address, bundle in bundles.items()
        }

    def _randomize(self, bundle: PaceModelBundle, n_local: int) -> PaceModelBundle:
        """Perturb every artifact that will leave the peer."""
        cfg = self.config
        # Budget split: half to the models, the rest over centroids+accuracy.
        eps_models = cfg.epsilon / 2.0
        eps_rest = cfg.epsilon / 2.0

        noisy_models: Dict[str, LinearSVMModel] = {}
        per_model_eps = eps_models / max(1, len(bundle.models))
        scale = cfg.weight_sensitivity / (per_model_eps * max(1, n_local))
        for tag, model in bundle.models.items():
            noisy_models[tag] = self._noisy_model(model, scale)

        per_centroid_eps = eps_rest / (2 * max(1, len(bundle.centroids)))
        centroid_scale = 2.0 / (per_centroid_eps * max(1, n_local))
        noisy_centroids = [
            self._noisy_vector(centroid, centroid_scale)
            for centroid in bundle.centroids
        ]

        acc_scale = 1.0 / (eps_rest / 2.0 * max(1, n_local))
        noisy_accuracies = {
            tag: float(
                np.clip(
                    accuracy + self._noise_rng.laplace(0.0, acc_scale), 0.0, 1.0
                )
            )
            for tag, accuracy in bundle.accuracies.items()
        }

        return PaceModelBundle(
            origin=bundle.origin,
            models=noisy_models,
            accuracies=noisy_accuracies,
            calibration=dict(bundle.calibration),
            centroids=noisy_centroids,
        )

    def _noisy_model(self, model: LinearSVMModel, scale: float) -> LinearSVMModel:
        """Laplace-perturb the (sparse) weight vector and bias.

        Noise is applied to the model's *existing* coordinates: perturbing
        the full hashed space would destroy sparsity, and the retained
        support already determines the information that leaves the peer.
        """
        noisy = {
            fid: value + float(self._noise_rng.laplace(0.0, scale))
            for fid, value in model.weights.items()
        }
        bias = model.bias + float(self._noise_rng.laplace(0.0, scale))
        return LinearSVMModel(weights=SparseVector(noisy), bias=bias)

    def _noisy_vector(self, vector: SparseVector, scale: float) -> SparseVector:
        return SparseVector(
            {
                fid: value + float(self._noise_rng.laplace(0.0, scale))
                for fid, value in vector.items()
            }
        )
