"""k-means clustering over sparse vectors (k-means++ initialization).

PACE peers "perform clustering on the training data" and propagate the
cluster centroids alongside their linear models; receiving peers index models
by those centroids.  Centroids are kept sparse (they are means of sparse
documents) so their wire size is honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.sparse import SparseVector


def _mean_vector(vectors: Sequence[SparseVector]) -> SparseVector:
    """Sparse mean of a non-empty list of sparse vectors."""
    accumulator: dict[int, float] = {}
    for vector in vectors:
        for fid, value in vector.items():
            accumulator[fid] = accumulator.get(fid, 0.0) + value
    n = float(len(vectors))
    return SparseVector({fid: value / n for fid, value in accumulator.items()})


@dataclass
class KMeansResult:
    """Clustering output: centroids, assignments, and inertia."""

    centroids: List[SparseVector]
    assignments: List[int]
    inertia: float
    iterations: int


class KMeans:
    """Lloyd's algorithm with k-means++ seeding on sparse vectors.

    Parameters
    ----------
    k:
        Number of clusters.  If the data has fewer distinct points than
        ``k``, the effective number of centroids shrinks to match.
    max_iterations:
        Lloyd iteration cap.
    seed:
        RNG seed for k-means++ sampling.
    """

    def __init__(self, k: int, max_iterations: int = 50, seed: int = 0) -> None:
        if k <= 0:
            raise ConfigurationError("k must be positive")
        self.k = k
        self.max_iterations = max_iterations
        self.seed = seed
        self._result: Optional[KMeansResult] = None

    def fit(self, vectors: Sequence[SparseVector]) -> KMeansResult:
        if not vectors:
            raise ConfigurationError("cannot cluster an empty dataset")
        k = min(self.k, len(vectors))
        rng = np.random.default_rng(self.seed)
        centroids = self._kmeanspp_init(vectors, k, rng)

        assignments = [0] * len(vectors)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            moved = False
            for i, vector in enumerate(vectors):
                best = min(
                    range(len(centroids)),
                    key=lambda c: vector.distance_squared(centroids[c]),
                )
                if best != assignments[i]:
                    assignments[i] = best
                    moved = True
            new_centroids: List[SparseVector] = []
            for c in range(len(centroids)):
                members = [v for v, a in zip(vectors, assignments) if a == c]
                if members:
                    new_centroids.append(_mean_vector(members))
                else:
                    # Re-seed an empty cluster at the farthest point.
                    far = max(
                        vectors,
                        key=lambda v: min(
                            v.distance_squared(existing) for existing in centroids
                        ),
                    )
                    new_centroids.append(far)
            converged = not moved and all(
                old.distance_squared(new) < 1e-12
                for old, new in zip(centroids, new_centroids)
            )
            centroids = new_centroids
            if converged:
                break

        inertia = sum(
            vector.distance_squared(centroids[assignment])
            for vector, assignment in zip(vectors, assignments)
        )
        self._result = KMeansResult(
            centroids=centroids,
            assignments=assignments,
            inertia=inertia,
            iterations=iterations,
        )
        return self._result

    @staticmethod
    def _kmeanspp_init(
        vectors: Sequence[SparseVector], k: int, rng: np.random.Generator
    ) -> List[SparseVector]:
        """k-means++ seeding: spread initial centroids proportionally to D^2."""
        first = int(rng.integers(0, len(vectors)))
        centroids = [vectors[first]]
        while len(centroids) < k:
            distances = np.array(
                [
                    min(v.distance_squared(c) for c in centroids)
                    for v in vectors
                ]
            )
            total = distances.sum()
            if total <= 0:
                # All points identical to some centroid; duplicate arbitrarily.
                centroids.append(vectors[int(rng.integers(0, len(vectors)))])
                continue
            probabilities = distances / total
            choice = int(rng.choice(len(vectors), p=probabilities))
            centroids.append(vectors[choice])
        return centroids

    @property
    def result(self) -> KMeansResult:
        if self._result is None:
            raise NotTrainedError("KMeans has not been fitted")
        return self._result

    def predict(self, vector: SparseVector) -> int:
        """Index of the nearest centroid."""
        centroids = self.result.centroids
        return min(
            range(len(centroids)),
            key=lambda c: vector.distance_squared(centroids[c]),
        )
