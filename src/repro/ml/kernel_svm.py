"""Kernel (dual) SVM trained with a simplified SMO solver.

CEMPaR requires a non-linear SVM whose *support vectors are first-class*:
each peer's local model is its set of support vectors, which are shipped to a
super-peer and cascaded (merged and retrained).  A dual solver is therefore
the right substrate — the model *is* the SV set with coefficients.

The solver is Platt's SMO in its simplified form (random second index,
KKT-violation outer loop).  Local training sets in the P2P setting are small
(tens of documents per binary task), so the O(n^2) Gram matrix is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.kernels import Kernel, gram_matrix, make_rbf
from repro.ml.sparse import SparseVector


@dataclass
class SupportVector:
    """One support vector: the document vector, its label, and its dual weight.

    CEMPaR note: this is exactly what travels to super-peers — word-id/
    frequency vectors, never raw text, which is the paper's privacy argument.
    """

    vector: SparseVector
    label: int
    alpha: float

    def wire_size(self) -> int:
        return self.vector.wire_size() + 4 + 8  # label + alpha


@dataclass
class KernelSVMModel:
    """A trained dual model: support vectors + bias + kernel parameters."""

    support_vectors: List[SupportVector]
    bias: float
    gamma: float
    kernel_name: str = "rbf"
    _kernel: Optional[Kernel] = field(default=None, repr=False, compare=False)

    def kernel(self) -> Kernel:
        if self._kernel is None:
            if self.kernel_name == "rbf":
                self._kernel = make_rbf(self.gamma)
            else:
                from repro.ml.kernels import kernel_by_name

                self._kernel = kernel_by_name(self.kernel_name, gamma=self.gamma)
        return self._kernel

    def decision(self, x: SparseVector) -> float:
        k = self.kernel()
        return (
            sum(sv.alpha * sv.label * k(sv.vector, x) for sv in self.support_vectors)
            + self.bias
        )

    def predict(self, x: SparseVector) -> int:
        return 1 if self.decision(x) >= 0.0 else -1

    @property
    def num_support_vectors(self) -> int:
        return len(self.support_vectors)

    def wire_size(self) -> int:
        """Bytes to ship this model: all SVs + bias + gamma."""
        return sum(sv.wire_size() for sv in self.support_vectors) + 16

    def training_pairs(self) -> Tuple[List[SparseVector], List[int]]:
        """SVs as a (vectors, labels) training set — the cascade's input."""
        return (
            [sv.vector for sv in self.support_vectors],
            [sv.label for sv in self.support_vectors],
        )


class KernelSVM:
    """Binary kernel SVM via simplified SMO.

    Parameters
    ----------
    C:
        Box constraint (soft-margin strength).
    gamma:
        RBF width (ignored for linear kernel).
    kernel_name:
        ``"rbf"`` (default), ``"linear"``, or ``"poly"``.
    tol:
        KKT violation tolerance.
    max_passes:
        Consecutive no-progress sweeps before stopping.
    """

    def __init__(
        self,
        C: float = 1.0,
        gamma: float = 0.5,
        kernel_name: str = "rbf",
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iterations: int = 2000,
        seed: int = 0,
    ) -> None:
        if C <= 0:
            raise ConfigurationError("C must be positive")
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        self.C = C
        self.gamma = gamma
        self.kernel_name = kernel_name
        self.tol = tol
        self.max_passes = max_passes
        self.max_iterations = max_iterations
        self.seed = seed
        self._model: Optional[KernelSVMModel] = None

    # ------------------------------------------------------------------

    def fit(
        self, vectors: Sequence[SparseVector], labels: Sequence[int]
    ) -> "KernelSVM":
        """Train on labels in {-1, +1}; one-class input yields a constant model."""
        if len(vectors) != len(labels):
            raise ConfigurationError("vectors and labels length mismatch")
        if not vectors:
            raise ConfigurationError("cannot fit on an empty training set")
        unique = set(labels)
        if not unique <= {-1, 1}:
            raise ConfigurationError(f"labels must be in {{-1, +1}}, got {unique}")
        if len(unique) == 1:
            only = float(next(iter(unique)))
            self._model = KernelSVMModel(
                support_vectors=[], bias=only, gamma=self.gamma,
                kernel_name=self.kernel_name,
            )
            return self

        if self.kernel_name == "rbf":
            kernel = make_rbf(self.gamma)
        else:
            from repro.ml.kernels import kernel_by_name

            kernel = kernel_by_name(self.kernel_name, gamma=self.gamma)

        n = len(vectors)
        y = np.asarray(labels, dtype=np.float64)
        K = gram_matrix(list(vectors), kernel)
        alphas = np.zeros(n, dtype=np.float64)
        bias = 0.0
        rng = np.random.default_rng(self.seed)

        passes = 0
        iterations = 0
        while passes < self.max_passes and iterations < self.max_iterations:
            iterations += 1
            changed = 0
            for i in range(n):
                error_i = float(np.dot(alphas * y, K[i]) + bias - y[i])
                if (y[i] * error_i < -self.tol and alphas[i] < self.C) or (
                    y[i] * error_i > self.tol and alphas[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    error_j = float(np.dot(alphas * y, K[j]) + bias - y[j])
                    alpha_i_old, alpha_j_old = alphas[i], alphas[j]
                    if y[i] != y[j]:
                        low = max(0.0, alphas[j] - alphas[i])
                        high = min(self.C, self.C + alphas[j] - alphas[i])
                    else:
                        low = max(0.0, alphas[i] + alphas[j] - self.C)
                        high = min(self.C, alphas[i] + alphas[j])
                    if low >= high:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    alphas[j] -= y[j] * (error_i - error_j) / eta
                    alphas[j] = min(high, max(low, alphas[j]))
                    if abs(alphas[j] - alpha_j_old) < 1e-7:
                        continue
                    alphas[i] += y[i] * y[j] * (alpha_j_old - alphas[j])
                    b1 = (
                        bias
                        - error_i
                        - y[i] * (alphas[i] - alpha_i_old) * K[i, i]
                        - y[j] * (alphas[j] - alpha_j_old) * K[i, j]
                    )
                    b2 = (
                        bias
                        - error_j
                        - y[i] * (alphas[i] - alpha_i_old) * K[i, j]
                        - y[j] * (alphas[j] - alpha_j_old) * K[j, j]
                    )
                    if 0 < alphas[i] < self.C:
                        bias = b1
                    elif 0 < alphas[j] < self.C:
                        bias = b2
                    else:
                        bias = (b1 + b2) / 2.0
                    changed += 1
            if changed == 0:
                passes += 1
            else:
                passes = 0

        support = [
            SupportVector(vector=vectors[i], label=int(y[i]), alpha=float(alphas[i]))
            for i in range(n)
            if alphas[i] > 1e-8
        ]
        self._model = KernelSVMModel(
            support_vectors=support,
            bias=float(bias),
            gamma=self.gamma,
            kernel_name=self.kernel_name,
        )
        return self

    # ------------------------------------------------------------------

    @property
    def model(self) -> KernelSVMModel:
        if self._model is None:
            raise NotTrainedError("KernelSVM has not been fitted")
        return self._model

    def decision(self, x: SparseVector) -> float:
        return self.model.decision(x)

    def predict(self, x: SparseVector) -> int:
        return self.model.predict(x)

    def predict_many(self, xs: Sequence[SparseVector]) -> List[int]:
        return [self.predict(x) for x in xs]

    def accuracy(
        self, vectors: Sequence[SparseVector], labels: Sequence[int]
    ) -> float:
        if not vectors:
            return 1.0
        correct = sum(1 for x, y in zip(vectors, labels) if self.predict(x) == y)
        return correct / len(vectors)
