"""Multinomial Naive Bayes over sparse vectors.

A second base-classifier family for the pluggable P2P layer.  Its key
property for P2P learning: the model is fully determined by *sufficient
statistics* (per-class feature-count sums and document counts) that are
additive across peers — summing every peer's statistics reproduces the
centralized model exactly, with communication proportional to vocabulary
use rather than to documents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.sparse import SparseVector


@dataclass
class NBSufficientStats:
    """Additive sufficient statistics for one binary (tag) problem.

    ``feature_sums[c][fid]`` is the total feature mass of feature ``fid``
    in class ``c`` (c in {0, 1}); ``doc_counts[c]`` the number of training
    documents; ``total_mass[c]`` the summed feature mass.
    """

    feature_sums: List[Dict[int, float]] = field(
        default_factory=lambda: [{}, {}]
    )
    doc_counts: List[int] = field(default_factory=lambda: [0, 0])
    total_mass: List[float] = field(default_factory=lambda: [0.0, 0.0])

    def add_document(self, vector: SparseVector, label: int) -> None:
        """Accumulate one document with label in {-1, +1}."""
        if label not in (-1, 1):
            raise ConfigurationError(f"label must be ±1, got {label}")
        c = 1 if label == 1 else 0
        sums = self.feature_sums[c]
        for fid, value in vector.items():
            sums[fid] = sums.get(fid, 0.0) + value
            self.total_mass[c] += value
        self.doc_counts[c] += 1

    def merge(self, other: "NBSufficientStats") -> None:
        """Fold another peer's statistics in (the P2P aggregation step)."""
        for c in (0, 1):
            sums = self.feature_sums[c]
            for fid, value in other.feature_sums[c].items():
                sums[fid] = sums.get(fid, 0.0) + value
            self.doc_counts[c] += other.doc_counts[c]
            self.total_mass[c] += other.total_mass[c]

    def wire_size(self) -> int:
        """Bytes to ship: 12 B per (feature, sum) entry + counters."""
        entries = sum(len(s) for s in self.feature_sums)
        return 12 * entries + 32

    @property
    def num_documents(self) -> int:
        return self.doc_counts[0] + self.doc_counts[1]


class MultinomialNB:
    """Binary multinomial NB with Laplace smoothing.

    Built either directly from (vectors, labels) via :meth:`fit` or from
    aggregated :class:`NBSufficientStats` via :meth:`from_stats`.
    """

    def __init__(self, alpha: float = 1.0, vocabulary_size: int = 2 ** 18) -> None:
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if vocabulary_size <= 0:
            raise ConfigurationError("vocabulary_size must be positive")
        self.alpha = alpha
        self.vocabulary_size = vocabulary_size
        self._stats: Optional[NBSufficientStats] = None

    # -- training ----------------------------------------------------------

    def fit(
        self, vectors: Sequence[SparseVector], labels: Sequence[int]
    ) -> "MultinomialNB":
        if len(vectors) != len(labels):
            raise ConfigurationError("vectors and labels length mismatch")
        if not vectors:
            raise ConfigurationError("cannot fit on an empty training set")
        stats = NBSufficientStats()
        for vector, label in zip(vectors, labels):
            stats.add_document(vector, label)
        self._stats = stats
        return self

    @classmethod
    def from_stats(
        cls,
        stats: NBSufficientStats,
        alpha: float = 1.0,
        vocabulary_size: int = 2 ** 18,
    ) -> "MultinomialNB":
        if stats.num_documents == 0:
            raise ConfigurationError("statistics contain no documents")
        model = cls(alpha=alpha, vocabulary_size=vocabulary_size)
        model._stats = stats
        return model

    @property
    def stats(self) -> NBSufficientStats:
        if self._stats is None:
            raise NotTrainedError("MultinomialNB has not been fitted")
        return self._stats

    # -- prediction -------------------------------------------------------------

    def log_odds(self, vector: SparseVector) -> float:
        """log P(y=+1 | x) - log P(y=-1 | x) up to the shared constant."""
        stats = self.stats
        n = stats.num_documents
        # Smoothed class priors.
        prior = math.log((stats.doc_counts[1] + self.alpha) /
                         (stats.doc_counts[0] + self.alpha))
        score = prior
        v = self.vocabulary_size
        denom_pos = stats.total_mass[1] + self.alpha * v
        denom_neg = stats.total_mass[0] + self.alpha * v
        for fid, value in vector.items():
            pos = stats.feature_sums[1].get(fid, 0.0) + self.alpha
            neg = stats.feature_sums[0].get(fid, 0.0) + self.alpha
            score += value * (
                math.log(pos / denom_pos) - math.log(neg / denom_neg)
            )
        return score

    def predict(self, vector: SparseVector) -> int:
        return 1 if self.log_odds(vector) >= 0.0 else -1

    def probability(self, vector: SparseVector) -> float:
        """P(y=+1 | x) via the logistic of the log-odds."""
        z = self.log_odds(vector)
        if z >= 0:
            ez = math.exp(-min(z, 500.0))
            return 1.0 / (1.0 + ez)
        return math.exp(max(z, -500.0)) / (1.0 + math.exp(max(z, -500.0)))

    def accuracy(
        self, vectors: Sequence[SparseVector], labels: Sequence[int]
    ) -> float:
        if not vectors:
            return 1.0
        correct = sum(1 for x, y in zip(vectors, labels) if self.predict(x) == y)
        return correct / len(vectors)
