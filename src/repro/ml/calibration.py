"""Platt scaling: SVM decision values -> calibrated probabilities.

The demo GUI exposes a "Confidence" slider and renders higher-confidence tag
suggestions in a larger font; that requires per-tag probabilities, not raw
SVM margins.  Platt (1999) fits a sigmoid ``P(y=1|f) = 1 / (1 + exp(A f + B))``
over held-out decision values, here by Newton iterations with the
Lin/Weng/Keerthi prior smoothing.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ConfigurationError, NotTrainedError


class PlattCalibrator:
    """Fits the two-parameter sigmoid mapping margins to probabilities."""

    def __init__(self, max_iterations: int = 100, tol: float = 1e-10) -> None:
        self.max_iterations = max_iterations
        self.tol = tol
        self._a: Optional[float] = None
        self._b: Optional[float] = None

    def fit(
        self, decisions: Sequence[float], labels: Sequence[int]
    ) -> "PlattCalibrator":
        """Fit on decision values and {-1, +1} labels.

        With zero or one-class data, falls back to a symmetric steep sigmoid
        centred at 0 — tiny peers must still produce usable confidences.
        """
        if len(decisions) != len(labels):
            raise ConfigurationError("decisions and labels length mismatch")
        positives = sum(1 for y in labels if y == 1)
        negatives = len(labels) - positives
        if positives == 0 or negatives == 0:
            self._a, self._b = -2.0, 0.0
            return self

        # Smoothed targets per Platt / Lin et al.
        hi = (positives + 1.0) / (positives + 2.0)
        lo = 1.0 / (negatives + 2.0)
        targets = [hi if y == 1 else lo for y in labels]

        a, b = 0.0, math.log((negatives + 1.0) / (positives + 1.0))
        for _ in range(self.max_iterations):
            # Gradient and Hessian of the cross-entropy in (a, b).
            g_a = g_b = 0.0
            h_aa = h_ab = h_bb = 1e-12
            for f, t in zip(decisions, targets):
                z = a * f + b
                if z >= 0:
                    p = math.exp(-z) / (1.0 + math.exp(-z))
                else:
                    p = 1.0 / (1.0 + math.exp(z))
                # p = P(y=1) under current parameters; dL/dz = t - p with
                # z = a*f + b and p = sigmoid(-z), so dL/da = (t - p) * f.
                d = t - p
                g_a += f * d
                g_b += d
                w = p * (1.0 - p)
                h_aa += f * f * w
                h_ab += f * w
                h_bb += w
            # Newton step: solve 2x2 system.
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-18:
                break
            step_a = (h_bb * g_a - h_ab * g_b) / det
            step_b = (h_aa * g_b - h_ab * g_a) / det
            a -= step_a
            b -= step_b
            if abs(step_a) < self.tol and abs(step_b) < self.tol:
                break
        # Guard: decision value and probability must correlate positively,
        # i.e. sigmoid slope parameter A must be negative.
        if a >= 0.0:
            a = -1.0
        self._a, self._b = a, b
        return self

    @property
    def is_fitted(self) -> bool:
        return self._a is not None

    def probability(self, decision: float) -> float:
        """P(tag assigned | decision value) in (0, 1)."""
        if self._a is None or self._b is None:
            raise NotTrainedError("PlattCalibrator has not been fitted")
        z = self._a * decision + self._b
        if z >= 0:
            ez = math.exp(-z)
            return ez / (1.0 + ez)
        return 1.0 / (1.0 + math.exp(z))

    def parameters(self) -> tuple[float, float]:
        if self._a is None or self._b is None:
            raise NotTrainedError("PlattCalibrator has not been fitted")
        return self._a, self._b
