"""Random-hyperplane locality-sensitive hashing.

PACE receivers "index the models using the centroids (based on locality
sensitive hashing)"; a query retrieves the top-k nearest models by probing
the query's bucket and its neighbours.  Random-hyperplane (SimHash) LSH
approximates cosine similarity, which is the natural metric for L2-normalized
text vectors.

Hyperplanes are generated from a seed shared by all peers, so every peer
hashes centroids identically without coordination — the same trick as the
hashed feature space.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Hashable, Iterable, List, Optional, Tuple, TypeVar

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.sparse import SparseVector

T = TypeVar("T", bound=Hashable)


class RandomHyperplaneLSH(Generic[T]):
    """An LSH index mapping sparse vectors to payload objects.

    Parameters
    ----------
    num_bits:
        Signature length; buckets are ``2^num_bits`` at most.
    seed:
        Shared hyperplane seed (identical across peers).
    dimension_hint:
        Hyperplane components are generated lazily per feature id from a
        per-id deterministic hash, so truly high-dimensional hashed spaces
        cost memory proportional only to *observed* features.
    """

    def __init__(self, num_bits: int = 8, seed: int = 0) -> None:
        if not 1 <= num_bits <= 64:
            raise ConfigurationError("num_bits must be in [1, 64]")
        self.num_bits = num_bits
        self.seed = seed
        self._component_cache: Dict[int, np.ndarray] = {}
        self._buckets: Dict[int, List[Tuple[SparseVector, T]]] = defaultdict(list)
        self._size = 0

    # -- hashing ------------------------------------------------------------

    def _components(self, feature_id: int) -> np.ndarray:
        """Deterministic Gaussian hyperplane components for one feature id."""
        cached = self._component_cache.get(feature_id)
        if cached is None:
            rng = np.random.default_rng((self.seed << 32) ^ feature_id)
            cached = rng.standard_normal(self.num_bits)
            self._component_cache[feature_id] = cached
        return cached

    def signature(self, vector: SparseVector) -> int:
        """SimHash signature of ``vector`` as an integer bucket key."""
        projection = np.zeros(self.num_bits, dtype=np.float64)
        for feature_id, value in vector.items():
            projection += value * self._components(feature_id)
        bits = 0
        for bit_index in range(self.num_bits):
            if projection[bit_index] >= 0:
                bits |= 1 << bit_index
        return bits

    # -- index operations ------------------------------------------------------

    def insert(self, vector: SparseVector, payload: T) -> int:
        """Index ``payload`` under ``vector``'s bucket; returns the bucket key."""
        key = self.signature(vector)
        self._buckets[key].append((vector, payload))
        self._size += 1
        return key

    def remove(self, payload: T) -> bool:
        """Remove every entry carrying ``payload``; True if any was removed."""
        removed = False
        for key in list(self._buckets):
            bucket = self._buckets[key]
            kept = [(v, p) for v, p in bucket if p != payload]
            if len(kept) != len(bucket):
                removed = True
                self._size -= len(bucket) - len(kept)
                if kept:
                    self._buckets[key] = kept
                else:
                    del self._buckets[key]
        return removed

    def __len__(self) -> int:
        return self._size

    def query(
        self,
        vector: SparseVector,
        top_k: int,
        max_probe_distance: Optional[int] = None,
    ) -> List[Tuple[float, T]]:
        """Top-k nearest payloads by Euclidean distance to the stored vector.

        Probes buckets in order of Hamming distance from the query signature
        (multi-probe LSH) until at least ``top_k`` candidates are gathered or
        ``max_probe_distance`` is exhausted, then ranks candidates exactly.
        Returns ``(distance, payload)`` pairs sorted ascending.
        """
        if top_k <= 0:
            raise ConfigurationError("top_k must be positive")
        if self._size == 0:
            return []
        max_probe = (
            self.num_bits if max_probe_distance is None else max_probe_distance
        )
        query_key = self.signature(vector)
        candidates: List[Tuple[SparseVector, T]] = []
        for distance in range(0, max_probe + 1):
            for key in self._keys_at_hamming_distance(query_key, distance):
                candidates.extend(self._buckets.get(key, ()))
            if len(candidates) >= top_k:
                break
        scored = [
            (vector.distance(stored), payload) for stored, payload in candidates
        ]
        scored.sort(key=lambda pair: pair[0])
        return scored[:top_k]

    def _keys_at_hamming_distance(self, key: int, distance: int) -> Iterable[int]:
        """Occupied bucket keys exactly ``distance`` bit-flips from ``key``.

        For distance <= 2 we enumerate flips; beyond that we scan occupied
        buckets (cheaper than the combinatorial blow-up).
        """
        if distance == 0:
            yield key
            return
        if distance == 1:
            for bit in range(self.num_bits):
                yield key ^ (1 << bit)
            return
        if distance == 2:
            for first in range(self.num_bits):
                for second in range(first + 1, self.num_bits):
                    yield key ^ (1 << first) ^ (1 << second)
            return
        for occupied in self._buckets:
            if bin(occupied ^ key).count("1") == distance:
                yield occupied

    def bucket_sizes(self) -> Dict[int, int]:
        """Occupied bucket -> entry count (diagnostics / tests)."""
        return {key: len(bucket) for key, bucket in self._buckets.items()}
