"""Sparse feature vectors.

Documents are represented exactly as the paper describes: "the attribute id
represents the word id and the value of the attributes represents the word
frequency in the documents".  Vocabularies are large and documents short, so
a dictionary-backed sparse vector is the natural representation.

:class:`SparseVector` is immutable-by-convention (builders return new
instances) which makes it safe to place inside simulated network messages
without defensive copying.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple

import numpy as np


class SparseVector:
    """A sparse vector of ``feature id -> float`` entries.

    Zero-valued entries are never stored.  Supports the vector algebra the
    SVM/k-means/LSH implementations need: dot products, scaled addition,
    norms, cosine distance, and densification against a fixed dimension.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[int, float] | Iterable[Tuple[int, float]] = ()) -> None:
        items = data.items() if isinstance(data, Mapping) else data
        cleaned: Dict[int, float] = {}
        for key, value in items:
            if value:
                cleaned[int(key)] = float(value)
        self._data = cleaned

    # -- construction ---------------------------------------------------

    @classmethod
    def from_counts(cls, counts: Mapping[int, int]) -> "SparseVector":
        """Build from a term-frequency dictionary."""
        return cls({k: float(v) for k, v in counts.items()})

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseVector":
        """Build from a dense numpy array, keeping nonzeros only."""
        (indices,) = np.nonzero(dense)
        return cls({int(i): float(dense[i]) for i in indices})

    # -- mapping protocol -----------------------------------------------

    def get(self, key: int, default: float = 0.0) -> float:
        return self._data.get(key, default)

    def __getitem__(self, key: int) -> float:
        return self._data.get(key, 0.0)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def items(self) -> Iterable[Tuple[int, float]]:
        return self._data.items()

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()

    def __len__(self) -> int:
        """Number of nonzero entries (``nnz``)."""
        return len(self._data)

    @property
    def nnz(self) -> int:
        return len(self._data)

    def max_index(self) -> int:
        """Largest feature id present, or -1 for the zero vector."""
        return max(self._data, default=-1)

    # -- algebra ---------------------------------------------------------

    def dot(self, other: "SparseVector") -> float:
        """Sparse-sparse dot product (iterates the smaller operand)."""
        a, b = self._data, other._data
        if len(a) > len(b):
            a, b = b, a
        return sum(value * b[key] for key, value in a.items() if key in b)

    def dot_dense(self, dense: np.ndarray) -> float:
        """Dot product against a dense weight array (out-of-range ids are 0)."""
        n = dense.shape[0]
        return float(sum(value * dense[key] for key, value in self._data.items() if key < n))

    def add(self, other: "SparseVector", scale: float = 1.0) -> "SparseVector":
        """Return ``self + scale * other`` as a new vector."""
        result = dict(self._data)
        for key, value in other._data.items():
            updated = result.get(key, 0.0) + scale * value
            if updated:
                result[key] = updated
            else:
                result.pop(key, None)
        return SparseVector(result)

    def scale(self, factor: float) -> "SparseVector":
        """Return ``factor * self`` as a new vector."""
        if factor == 0.0:
            return SparseVector()
        return SparseVector({k: v * factor for k, v in self._data.items()})

    def squared_norm(self) -> float:
        return sum(v * v for v in self._data.values())

    def norm(self) -> float:
        return math.sqrt(self.squared_norm())

    def normalized(self) -> "SparseVector":
        """Return the L2-normalized vector (zero vector stays zero)."""
        n = self.norm()
        if n == 0.0:
            return SparseVector()
        return self.scale(1.0 / n)

    def distance_squared(self, other: "SparseVector") -> float:
        """Squared Euclidean distance."""
        return (
            self.squared_norm()
            - 2.0 * self.dot(other)
            + other.squared_norm()
        )

    def distance(self, other: "SparseVector") -> float:
        return math.sqrt(max(0.0, self.distance_squared(other)))

    def cosine_similarity(self, other: "SparseVector") -> float:
        denom = self.norm() * other.norm()
        if denom == 0.0:
            return 0.0
        return self.dot(other) / denom

    # -- conversion -------------------------------------------------------

    def to_dense(self, dimension: int) -> np.ndarray:
        """Densify into a float64 array of length ``dimension``.

        Feature ids at or beyond ``dimension`` are dropped (unseen test-time
        vocabulary, mirroring how a fixed-lexicon model ignores new words).
        """
        dense = np.zeros(dimension, dtype=np.float64)
        for key, value in self._data.items():
            if key < dimension:
                dense[key] = value
        return dense

    def to_dict(self) -> Dict[int, float]:
        """Copy of the underlying mapping (for serialization)."""
        return dict(self._data)

    # -- wire size ---------------------------------------------------------

    def wire_size(self) -> int:
        """Estimated serialized size in bytes: 4 B id + 8 B value per entry."""
        return 12 * len(self._data)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        return hash(frozenset(self._data.items()))

    def __repr__(self) -> str:
        preview = dict(sorted(self._data.items())[:4])
        suffix = "..." if len(self._data) > 4 else ""
        return f"SparseVector({preview}{suffix}, nnz={len(self._data)})"
