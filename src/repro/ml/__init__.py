"""Machine-learning substrate, implemented from scratch on numpy.

The paper's systems need: linear SVMs (PACE), non-linear SVMs whose support
vectors are available for cascading (CEMPaR), k-means clustering (PACE
centroids), locality-sensitive hashing (PACE's model index), probability
calibration (the tag-confidence slider), and multi-label evaluation metrics.
No third-party ML library is used.
"""

from repro.ml.sparse import SparseVector
from repro.ml.kernels import linear_kernel, rbf_kernel, polynomial_kernel, Kernel
from repro.ml.linear_svm import LinearSVM
from repro.ml.kernel_svm import KernelSVM
from repro.ml.kmeans import KMeans
from repro.ml.lsh import RandomHyperplaneLSH
from repro.ml.calibration import PlattCalibrator
from repro.ml.evaluation import (
    auc,
    average_precision,
    best_f1_threshold,
    per_tag_thresholds,
    precision_recall_curve,
    roc_curve,
    threshold_sweep,
)
from repro.ml.metrics import (
    multilabel_confusion,
    micro_f1,
    macro_f1,
    hamming_loss,
    subset_accuracy,
    precision_at_k,
    recall_at_k,
    MultiLabelReport,
)

__all__ = [
    "SparseVector",
    "Kernel",
    "linear_kernel",
    "rbf_kernel",
    "polynomial_kernel",
    "LinearSVM",
    "KernelSVM",
    "KMeans",
    "RandomHyperplaneLSH",
    "PlattCalibrator",
    "multilabel_confusion",
    "micro_f1",
    "macro_f1",
    "hamming_loss",
    "subset_accuracy",
    "precision_at_k",
    "recall_at_k",
    "MultiLabelReport",
    "auc",
    "average_precision",
    "best_f1_threshold",
    "per_tag_thresholds",
    "precision_recall_curve",
    "roc_curve",
    "threshold_sweep",
]
