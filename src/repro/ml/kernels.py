"""Kernel functions over sparse vectors.

CEMPaR's cascade uses a non-linear SVM; the kernels here operate directly on
:class:`~repro.ml.sparse.SparseVector` so no densification of the (large,
hashed) feature space is ever required.
"""

from __future__ import annotations

import math
from typing import Callable, List

import numpy as np

from repro.ml.sparse import SparseVector

Kernel = Callable[[SparseVector, SparseVector], float]


def linear_kernel(a: SparseVector, b: SparseVector) -> float:
    """Plain dot product ``<a, b>``."""
    return a.dot(b)


def rbf_kernel(a: SparseVector, b: SparseVector, gamma: float = 0.5) -> float:
    """Gaussian RBF kernel ``exp(-gamma * ||a - b||^2)``."""
    return math.exp(-gamma * a.distance_squared(b))


def make_rbf(gamma: float) -> Kernel:
    """Return an RBF kernel closure with fixed ``gamma``."""

    def kernel(a: SparseVector, b: SparseVector) -> float:
        return math.exp(-gamma * a.distance_squared(b))

    return kernel


def polynomial_kernel(
    a: SparseVector, b: SparseVector, degree: int = 2, coef0: float = 1.0
) -> float:
    """Polynomial kernel ``(<a, b> + coef0)^degree``."""
    return (a.dot(b) + coef0) ** degree


def make_polynomial(degree: int, coef0: float = 1.0) -> Kernel:
    """Return a polynomial kernel closure."""

    def kernel(a: SparseVector, b: SparseVector) -> float:
        return (a.dot(b) + coef0) ** degree

    return kernel


def kernel_by_name(name: str, gamma: float = 0.5, degree: int = 2) -> Kernel:
    """Resolve a kernel from a configuration string."""
    if name == "linear":
        return linear_kernel
    if name == "rbf":
        return make_rbf(gamma)
    if name == "poly":
        return make_polynomial(degree)
    raise ValueError(f"unknown kernel {name!r}; expected linear/rbf/poly")


def gram_matrix(vectors: List[SparseVector], kernel: Kernel) -> np.ndarray:
    """Symmetric Gram matrix K[i, j] = kernel(x_i, x_j)."""
    n = len(vectors)
    gram = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i, n):
            value = kernel(vectors[i], vectors[j])
            gram[i, j] = value
            gram[j, i] = value
    return gram
