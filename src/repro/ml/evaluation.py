"""Score-based evaluation utilities: ROC, precision-recall, threshold tuning.

The classifiers emit per-tag scores; the GUI's confidence slider and the
AutoTag threshold both need principled defaults.  This module provides the
standard machinery: ROC/PR curves over (score, label) pairs, their areas,
and threshold selection maximizing F1 — used by the adaptive threshold
policy and the threshold-ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass
class CurvePoint:
    """One operating point of a threshold sweep."""

    threshold: float
    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def tpr(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def fpr(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    @property
    def recall(self) -> float:
        return self.tpr

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _validate(scores: Sequence[float], labels: Sequence[int]) -> None:
    if len(scores) != len(labels):
        raise ConfigurationError("scores and labels length mismatch")
    if not scores:
        raise ConfigurationError("cannot evaluate empty score list")
    if not set(labels) <= {0, 1}:
        raise ConfigurationError("labels must be binary 0/1")


def threshold_sweep(
    scores: Sequence[float], labels: Sequence[int]
) -> List[CurvePoint]:
    """Confusion counts at every distinct score threshold (descending).

    Point ``i`` classifies positive everything with score >= threshold_i.
    """
    _validate(scores, labels)
    pairs = sorted(zip(scores, labels), key=lambda p: -p[0])
    total_pos = sum(labels)
    total_neg = len(labels) - total_pos
    points: List[CurvePoint] = []
    tp = fp = 0
    index = 0
    n = len(pairs)
    while index < n:
        threshold = pairs[index][0]
        # Consume all pairs tied at this score.
        while index < n and pairs[index][0] == threshold:
            if pairs[index][1] == 1:
                tp += 1
            else:
                fp += 1
            index += 1
        points.append(
            CurvePoint(
                threshold=threshold,
                tp=tp,
                fp=fp,
                fn=total_pos - tp,
                tn=total_neg - fp,
            )
        )
    return points


def roc_curve(
    scores: Sequence[float], labels: Sequence[int]
) -> List[Tuple[float, float]]:
    """(FPR, TPR) points from (0,0) to (1,1)."""
    points = threshold_sweep(scores, labels)
    curve = [(0.0, 0.0)]
    curve.extend((p.fpr, p.tpr) for p in points)
    if curve[-1] != (1.0, 1.0):
        curve.append((1.0, 1.0))
    return curve


def auc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Area under the ROC curve (trapezoidal).

    Degenerate one-class inputs return 0.5 (no ranking information).
    """
    _validate(scores, labels)
    if len(set(labels)) == 1:
        return 0.5
    curve = roc_curve(scores, labels)
    area = 0.0
    for (x0, y0), (x1, y1) in zip(curve, curve[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return area


def precision_recall_curve(
    scores: Sequence[float], labels: Sequence[int]
) -> List[Tuple[float, float]]:
    """(recall, precision) points, recall ascending."""
    points = threshold_sweep(scores, labels)
    return [(p.recall, p.precision) for p in points]


def average_precision(scores: Sequence[float], labels: Sequence[int]) -> float:
    """AP: precision averaged at each recall step."""
    _validate(scores, labels)
    total_pos = sum(labels)
    if total_pos == 0:
        return 0.0
    pairs = sorted(zip(scores, labels), key=lambda p: -p[0])
    seen_pos = 0
    ap = 0.0
    for rank, (_, label) in enumerate(pairs, start=1):
        if label == 1:
            seen_pos += 1
            ap += seen_pos / rank
    return ap / total_pos


def best_f1_threshold(
    scores: Sequence[float], labels: Sequence[int]
) -> Tuple[float, float]:
    """(threshold, F1) maximizing F1 over the sweep.

    One-class-positive inputs return (min score, 1.0); one-class-negative
    return (just above max score, 0.0) — assign nothing.
    """
    _validate(scores, labels)
    points = threshold_sweep(scores, labels)
    best = max(points, key=lambda p: (p.f1, p.threshold))
    if best.f1 == 0.0:
        return max(scores) + 1e-9, 0.0
    return best.threshold, best.f1


def per_tag_thresholds(
    score_maps: Sequence[Dict[str, float]],
    true_sets: Sequence[Iterable[str]],
    tags: Sequence[str],
    floor: float = 0.05,
    ceiling: float = 0.95,
) -> Dict[str, float]:
    """Per-tag F1-optimal thresholds from validation score maps.

    Tags never observed positive in validation fall back to 0.5.  Thresholds
    are clamped into [floor, ceiling] so a quirky validation slice cannot
    produce assign-always / assign-never behaviour.
    """
    if len(score_maps) != len(true_sets):
        raise ConfigurationError("score_maps and true_sets length mismatch")
    thresholds: Dict[str, float] = {}
    truth = [frozenset(t) for t in true_sets]
    for tag in tags:
        scores = [m.get(tag, 0.0) for m in score_maps]
        labels = [1 if tag in t else 0 for t in truth]
        if not scores or len(set(labels)) < 2:
            thresholds[tag] = 0.5
            continue
        threshold, _ = best_f1_threshold(scores, labels)
        thresholds[tag] = min(ceiling, max(floor, threshold))
    return thresholds
