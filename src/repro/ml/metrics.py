"""Multi-label evaluation metrics.

Document tagging is multi-label: each document carries a *set* of tags.  The
metrics below are the standard ones for that setting — micro/macro precision,
recall and F1 over per-tag confusion counts, Hamming loss, subset (exact-set)
accuracy, and ranked precision/recall@k for the suggestion experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

TagSet = FrozenSet[str]


@dataclass
class ConfusionCounts:
    """Per-tag binary confusion counts."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    def f1(self) -> float:
        p, r = self.precision(), self.recall()
        return 2 * p * r / (p + r) if (p + r) else 0.0


def multilabel_confusion(
    true_sets: Sequence[Iterable[str]],
    predicted_sets: Sequence[Iterable[str]],
    tags: Iterable[str] | None = None,
) -> Dict[str, ConfusionCounts]:
    """Per-tag confusion counts over parallel true/predicted tag-set lists."""
    if len(true_sets) != len(predicted_sets):
        raise ValueError("true and predicted lists must have equal length")
    true_frozen = [frozenset(s) for s in true_sets]
    pred_frozen = [frozenset(s) for s in predicted_sets]
    if tags is None:
        universe: Set[str] = set()
        for s in true_frozen:
            universe |= s
        for s in pred_frozen:
            universe |= s
    else:
        universe = set(tags)
    counts = {tag: ConfusionCounts() for tag in sorted(universe)}
    for true, pred in zip(true_frozen, pred_frozen):
        for tag, cc in counts.items():
            in_true = tag in true
            in_pred = tag in pred
            if in_true and in_pred:
                cc.tp += 1
            elif in_pred:
                cc.fp += 1
            elif in_true:
                cc.fn += 1
            else:
                cc.tn += 1
    return counts


def micro_f1(
    true_sets: Sequence[Iterable[str]],
    predicted_sets: Sequence[Iterable[str]],
    tags: Iterable[str] | None = None,
) -> float:
    """Micro-averaged F1: pool all per-tag decisions, then compute F1."""
    counts = multilabel_confusion(true_sets, predicted_sets, tags)
    tp = sum(c.tp for c in counts.values())
    fp = sum(c.fp for c in counts.values())
    fn = sum(c.fn for c in counts.values())
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0


def macro_f1(
    true_sets: Sequence[Iterable[str]],
    predicted_sets: Sequence[Iterable[str]],
    tags: Iterable[str] | None = None,
) -> float:
    """Macro-averaged F1: mean of per-tag F1 (tags weigh equally)."""
    counts = multilabel_confusion(true_sets, predicted_sets, tags)
    if not counts:
        return 0.0
    return sum(c.f1() for c in counts.values()) / len(counts)


def hamming_loss(
    true_sets: Sequence[Iterable[str]],
    predicted_sets: Sequence[Iterable[str]],
    tags: Iterable[str] | None = None,
) -> float:
    """Fraction of (document, tag) decisions that are wrong."""
    counts = multilabel_confusion(true_sets, predicted_sets, tags)
    if not counts or not true_sets:
        return 0.0
    wrong = sum(c.fp + c.fn for c in counts.values())
    total = len(true_sets) * len(counts)
    return wrong / total


def subset_accuracy(
    true_sets: Sequence[Iterable[str]],
    predicted_sets: Sequence[Iterable[str]],
) -> float:
    """Fraction of documents whose predicted tag set matches exactly."""
    if not true_sets:
        return 0.0
    correct = sum(
        1
        for t, p in zip(true_sets, predicted_sets)
        if frozenset(t) == frozenset(p)
    )
    return correct / len(true_sets)


def example_f1(
    true_sets: Sequence[Iterable[str]],
    predicted_sets: Sequence[Iterable[str]],
) -> float:
    """Example-based F1: mean per-document F1 of tag sets."""
    if not true_sets:
        return 0.0
    total = 0.0
    for t, p in zip(true_sets, predicted_sets):
        ts, ps = frozenset(t), frozenset(p)
        if not ts and not ps:
            total += 1.0
            continue
        inter = len(ts & ps)
        denom = len(ts) + len(ps)
        total += 2 * inter / denom if denom else 0.0
    return total / len(true_sets)


def precision_at_k(
    true_set: Iterable[str], ranked_tags: Sequence[str], k: int
) -> float:
    """Precision of the top-k ranked suggestions against the true tag set."""
    if k <= 0:
        raise ValueError("k must be positive")
    truth = frozenset(true_set)
    top = ranked_tags[:k]
    if not top:
        return 0.0
    return sum(1 for tag in top if tag in truth) / len(top)


def recall_at_k(
    true_set: Iterable[str], ranked_tags: Sequence[str], k: int
) -> float:
    """Recall of the top-k ranked suggestions against the true tag set."""
    if k <= 0:
        raise ValueError("k must be positive")
    truth = frozenset(true_set)
    if not truth:
        return 0.0
    top = ranked_tags[:k]
    return sum(1 for tag in top if tag in truth) / len(truth)


def mean_precision_at_k(
    true_sets: Sequence[Iterable[str]],
    ranked_lists: Sequence[Sequence[str]],
    k: int,
) -> float:
    """Mean precision@k across documents."""
    if not true_sets:
        return 0.0
    return sum(
        precision_at_k(t, r, k) for t, r in zip(true_sets, ranked_lists)
    ) / len(true_sets)


def mean_recall_at_k(
    true_sets: Sequence[Iterable[str]],
    ranked_lists: Sequence[Sequence[str]],
    k: int,
) -> float:
    """Mean recall@k across documents."""
    if not true_sets:
        return 0.0
    return sum(
        recall_at_k(t, r, k) for t, r in zip(true_sets, ranked_lists)
    ) / len(true_sets)


@dataclass
class MultiLabelReport:
    """Bundle of the headline multi-label metrics for one evaluation run."""

    micro_f1: float
    macro_f1: float
    example_f1: float
    hamming_loss: float
    subset_accuracy: float
    num_documents: int
    num_tags: int
    per_tag: Dict[str, ConfusionCounts] = field(default_factory=dict)

    @classmethod
    def compute(
        cls,
        true_sets: Sequence[Iterable[str]],
        predicted_sets: Sequence[Iterable[str]],
        tags: Iterable[str] | None = None,
    ) -> "MultiLabelReport":
        counts = multilabel_confusion(true_sets, predicted_sets, tags)
        return cls(
            micro_f1=micro_f1(true_sets, predicted_sets, tags),
            macro_f1=macro_f1(true_sets, predicted_sets, tags),
            example_f1=example_f1(true_sets, predicted_sets),
            hamming_loss=hamming_loss(true_sets, predicted_sets, tags),
            subset_accuracy=subset_accuracy(true_sets, predicted_sets),
            num_documents=len(true_sets),
            num_tags=len(counts),
            per_tag=counts,
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"docs={self.num_documents} tags={self.num_tags} "
            f"microF1={self.micro_f1:.3f} macroF1={self.macro_f1:.3f} "
            f"exF1={self.example_f1:.3f} hamming={self.hamming_loss:.4f} "
            f"subset={self.subset_accuracy:.3f}"
        )
