"""Linear SVM trained with the Pegasos primal sub-gradient algorithm.

PACE "uses the state-of-the-art linear SVM algorithm to reduce computation
and communication cost"; Pegasos (Shalev-Shwartz et al., 2007) is exactly
that family: O(nnz) per update, a compact weight-vector model, and strong
accuracy on sparse text.

The learned model is stored sparsely so it can be shipped over the simulated
network with honest byte accounting, and optionally *truncated* to its
largest-magnitude weights (PACE's communication/accuracy knob).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, NotTrainedError
from repro.ml.sparse import SparseVector


@dataclass
class LinearSVMModel:
    """A trained linear model: sparse weights + bias.

    This is the unit PACE propagates between peers, so it knows its own wire
    size and supports truncation.
    """

    weights: SparseVector
    bias: float

    def decision(self, x: SparseVector) -> float:
        return self.weights.dot(x) + self.bias

    def predict(self, x: SparseVector) -> int:
        """Class in {-1, +1}."""
        return 1 if self.decision(x) >= 0.0 else -1

    def truncated(self, max_features: int) -> "LinearSVMModel":
        """Keep only the ``max_features`` largest-|w| entries."""
        if max_features <= 0:
            raise ConfigurationError("max_features must be positive")
        if self.weights.nnz <= max_features:
            return self
        top = sorted(
            self.weights.items(), key=lambda item: abs(item[1]), reverse=True
        )[:max_features]
        return LinearSVMModel(weights=SparseVector(dict(top)), bias=self.bias)

    def wire_size(self) -> int:
        """Bytes on the wire: sparse weights + 8 B bias."""
        return self.weights.wire_size() + 8


class LinearSVM:
    """Pegasos linear SVM for binary classification.

    Parameters
    ----------
    lambda_reg:
        Regularization strength (Pegasos λ).  Smaller fits harder.
    epochs:
        Number of passes over the training set.
    seed:
        Seed for the sampling order (training is deterministic given it).
    """

    def __init__(
        self,
        lambda_reg: float = 1e-4,
        epochs: int = 10,
        seed: int = 0,
    ) -> None:
        if lambda_reg <= 0:
            raise ConfigurationError("lambda_reg must be positive")
        if epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        self.lambda_reg = lambda_reg
        self.epochs = epochs
        self.seed = seed
        self._model: Optional[LinearSVMModel] = None

    def fit(
        self,
        vectors: Sequence[SparseVector],
        labels: Sequence[int],
    ) -> "LinearSVM":
        """Train on ``vectors`` with labels in {-1, +1}.

        Degenerate one-class inputs produce a constant classifier (bias at
        the class sign) rather than an error — peers with few tagged
        documents routinely hit this case.
        """
        if len(vectors) != len(labels):
            raise ConfigurationError("vectors and labels length mismatch")
        if not vectors:
            raise ConfigurationError("cannot fit on an empty training set")
        unique = set(labels)
        if not unique <= {-1, 1}:
            raise ConfigurationError(f"labels must be in {{-1, +1}}, got {unique}")
        if len(unique) == 1:
            only = next(iter(unique))
            self._model = LinearSVMModel(weights=SparseVector(), bias=float(only))
            return self

        rng = np.random.default_rng(self.seed)
        n = len(vectors)
        weights: dict[int, float] = {}
        scale = 1.0  # lazy scaling: true w = scale * weights
        bias = 0.0
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for index in order:
                t += 1
                eta = 1.0 / (self.lambda_reg * t)
                x = vectors[index]
                y = labels[index]
                # margin = y * (scale * <weights, x> + bias)
                wx = sum(
                    value * weights.get(fid, 0.0) for fid, value in x.items()
                )
                margin = y * (scale * wx + bias)
                # Regularization shrink: w *= (1 - eta * lambda)
                scale *= max(1e-12, 1.0 - eta * self.lambda_reg)
                if margin < 1.0:
                    # w += (eta * y / scale) * x  (lazy-scaled update)
                    factor = eta * y / scale
                    for fid, value in x.items():
                        weights[fid] = weights.get(fid, 0.0) + factor * value
                    bias += eta * y * 0.1  # unregularized, damped bias update
        final = {fid: scale * value for fid, value in weights.items() if scale * value}
        self._model = LinearSVMModel(weights=SparseVector(final), bias=bias)
        return self

    @property
    def model(self) -> LinearSVMModel:
        if self._model is None:
            raise NotTrainedError("LinearSVM has not been fitted")
        return self._model

    def decision(self, x: SparseVector) -> float:
        return self.model.decision(x)

    def predict(self, x: SparseVector) -> int:
        return self.model.predict(x)

    def predict_many(self, xs: Sequence[SparseVector]) -> List[int]:
        return [self.predict(x) for x in xs]

    def accuracy(
        self, vectors: Sequence[SparseVector], labels: Sequence[int]
    ) -> float:
        """Fraction of correct {-1, +1} predictions (1.0 on empty input)."""
        if not vectors:
            return 1.0
        correct = sum(
            1 for x, y in zip(vectors, labels) if self.predict(x) == y
        )
        return correct / len(vectors)
