"""Dataset substrate.

The paper demonstrates on a Delicious crawl (Wetzker et al., 2008) that is
not redistributable; :mod:`repro.data.delicious` generates a synthetic corpus
with the same controlling statistics (power-law tag popularity, 50-200
multi-tagged documents per user, tag-correlated user interests).
"""

from repro.data.corpus import Document, Corpus, UserProfile
from repro.data.delicious import DeliciousGenerator, GeneratorConfig
from repro.data.splits import train_test_split, per_user_split
from repro.data.loaders import save_corpus, load_corpus

__all__ = [
    "Document",
    "Corpus",
    "UserProfile",
    "DeliciousGenerator",
    "GeneratorConfig",
    "train_test_split",
    "per_user_split",
    "save_corpus",
    "load_corpus",
]
