"""Corpus persistence: JSONL save/load.

One JSON object per line keeps corpora streamable and diff-friendly; the
examples use this to cache generated corpora between runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.data.corpus import Corpus, Document
from repro.errors import DataError

PathLike = Union[str, Path]


def save_corpus(corpus: Corpus, path: PathLike) -> int:
    """Write ``corpus`` as JSONL; returns the number of documents written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w", encoding="utf-8") as handle:
        for document in corpus:
            record = {
                "doc_id": document.doc_id,
                "text": document.text,
                "tags": sorted(document.tags),
                "owner": document.owner,
            }
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_corpus(path: PathLike) -> Corpus:
    """Read a corpus previously written by :func:`save_corpus`."""
    source = Path(path)
    if not source.exists():
        raise DataError(f"corpus file not found: {source}")
    documents = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                documents.append(
                    Document(
                        doc_id=int(record["doc_id"]),
                        text=str(record["text"]),
                        tags=frozenset(record["tags"]),
                        owner=int(record["owner"]),
                    )
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise DataError(
                    f"malformed corpus record at {source}:{line_number}: {exc}"
                ) from exc
    return Corpus(documents)
