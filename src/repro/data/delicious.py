"""Synthetic Delicious-like corpus generator.

Substitute for the Wetzker et al. (2008) del.icio.us crawl the paper
demonstrates on (not redistributable; no network access here).  The generator
reproduces the statistics the experiments actually depend on:

- **power-law tag popularity** (Zipf over the tag universe, as in social
  bookmarking data);
- **multi-label documents** (1..max tags per document);
- **per-user holdings of 50-200 documents** (the paper's spam filter range;
  configurable downward for fast simulations);
- **tag-correlated user interests** — a user's documents concentrate on a few
  tags (Dirichlet-controlled non-IIDness, the knob experiment E5 sweeps);
- **tag co-occurrence structure** — tags belong to concept groups; documents
  mostly combine tags within a group, and designated *bridge tags* join two
  groups (this regenerates the Fig. 4 tag-cloud shape);
- **tags disjoint from document words** — tag names never appear verbatim in
  the text (the paper stresses tags "may not necessarily be contained within
  the documents"), so indexing the words cannot produce the tags.

Document text is drawn from per-tag topic word distributions over a
synthetic vocabulary plus a background distribution, i.e. a small mixture-of-
multinomials language model.  That gives classifiers a learnable but noisy
signal — the same reason SVMs work on real bookmark text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import Corpus, Document
from repro.errors import DataError

# Plausible social-bookmarking tag names; extended synthetically when the
# configured universe is larger.
_TAG_NAME_POOL = [
    "programming", "python", "linux", "webdesign", "javascript", "security",
    "music", "photography", "travel", "recipes", "health", "finance",
    "science", "history", "politics", "sports", "gaming", "education",
    "art", "diy", "gardening", "parenting", "career", "productivity",
    "database", "networking", "hardware", "mobile", "cloud", "ai",
    "statistics", "visualization", "typography", "architecture", "economics",
    "psychology", "philosophy", "literature", "film", "cooking",
]

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def _make_vocabulary(size: int, rng: np.random.Generator) -> List[str]:
    """Deterministic pseudo-word vocabulary (CVCV[C] syllable strings)."""
    words: List[str] = []
    seen = set()
    while len(words) < size:
        syllables = int(rng.integers(2, 5))
        word = "".join(
            _CONSONANTS[int(rng.integers(len(_CONSONANTS)))]
            + _VOWELS[int(rng.integers(len(_VOWELS)))]
            for _ in range(syllables)
        )
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


@dataclass
class GeneratorConfig:
    """All the knobs of the synthetic corpus.

    The defaults produce a small corpus suitable for tests; experiment
    harnesses override ``num_users`` / ``docs_per_user_range`` upward
    (the paper's demonstration range is (50, 200)).
    """

    num_users: int = 16
    num_tags: int = 12
    docs_per_user_range: Tuple[int, int] = (10, 30)
    vocabulary_size: int = 1200
    topic_words_per_tag: int = 40
    doc_length_range: Tuple[int, int] = (40, 120)
    mean_tags_per_doc: float = 2.0
    max_tags_per_doc: int = 5
    zipf_exponent: float = 1.1
    interest_concentration: float = 0.5
    num_tag_groups: int = 3
    within_group_bias: float = 0.8
    bridge_tags: int = 1
    topic_word_weight: float = 0.7
    noise_weight: float = 0.05
    seed: int = 0

    def validate(self) -> None:
        if self.num_users <= 0:
            raise DataError("num_users must be positive")
        if self.num_tags < 2:
            raise DataError("need at least 2 tags")
        lo, hi = self.docs_per_user_range
        if not 0 < lo <= hi:
            raise DataError("docs_per_user_range must satisfy 0 < lo <= hi")
        if self.vocabulary_size < self.num_tags * self.topic_words_per_tag:
            raise DataError(
                "vocabulary too small for the requested topic words per tag"
            )
        if not 0 < self.mean_tags_per_doc <= self.max_tags_per_doc:
            raise DataError("mean_tags_per_doc must be in (0, max_tags_per_doc]")
        if self.interest_concentration <= 0:
            raise DataError("interest_concentration must be positive")
        if not 0.0 <= self.within_group_bias <= 1.0:
            raise DataError("within_group_bias must be in [0, 1]")
        if self.num_tag_groups < 1 or self.num_tag_groups > self.num_tags:
            raise DataError("num_tag_groups must be in [1, num_tags]")


class DeliciousGenerator:
    """Generates a :class:`~repro.data.corpus.Corpus` from a config."""

    def __init__(
        self,
        num_users: Optional[int] = None,
        seed: Optional[int] = None,
        config: Optional[GeneratorConfig] = None,
        **overrides,
    ) -> None:
        base = config or GeneratorConfig()
        if num_users is not None:
            overrides["num_users"] = num_users
        if seed is not None:
            overrides["seed"] = seed
        if overrides:
            base = GeneratorConfig(**{**base.__dict__, **overrides})
        base.validate()
        self.config = base
        self._rng = np.random.default_rng(base.seed)
        self._tags: List[str] = []
        self._tag_groups: Dict[str, List[int]] = {}
        self._topic_words: Dict[str, List[int]] = {}
        self._vocabulary: List[str] = []
        self._tag_popularity: Optional[np.ndarray] = None
        self._build_world()

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------

    def _build_world(self) -> None:
        cfg = self.config
        rng = self._rng
        # Tag names: real-ish pool first, synthetic overflow after.
        names = list(_TAG_NAME_POOL)
        while len(names) < cfg.num_tags:
            names.append(f"topic{len(names):03d}")
        self._tags = names[: cfg.num_tags]

        # Zipf popularity over tags (rank 1 most popular).
        ranks = np.arange(1, cfg.num_tags + 1, dtype=np.float64)
        weights = ranks ** (-cfg.zipf_exponent)
        self._tag_popularity = weights / weights.sum()

        # Concept groups: contiguous slices of the tag list; bridge tags are
        # members of their own group AND the next one.
        group_of: Dict[str, List[int]] = {tag: [] for tag in self._tags}
        for index, tag in enumerate(self._tags):
            group_of[tag].append(index % cfg.num_tag_groups)
        bridges = 0
        for index, tag in enumerate(self._tags):
            if bridges >= cfg.bridge_tags or cfg.num_tag_groups < 2:
                break
            primary = group_of[tag][0]
            group_of[tag].append((primary + 1) % cfg.num_tag_groups)
            bridges += 1
        self._tag_groups = group_of

        # Vocabulary and per-tag topic word sets (disjoint across tags).
        self._vocabulary = _make_vocabulary(cfg.vocabulary_size, rng)
        permutation = rng.permutation(cfg.vocabulary_size)
        cursor = 0
        for tag in self._tags:
            ids = permutation[cursor : cursor + cfg.topic_words_per_tag]
            self._topic_words[tag] = [int(i) for i in ids]
            cursor += cfg.topic_words_per_tag

    # -- introspection (used by tests and the tag-cloud experiment) -------

    @property
    def tags(self) -> List[str]:
        return list(self._tags)

    @property
    def vocabulary(self) -> List[str]:
        return list(self._vocabulary)

    def groups_of(self, tag: str) -> List[int]:
        return list(self._tag_groups[tag])

    def topic_words_of(self, tag: str) -> List[str]:
        return [self._vocabulary[i] for i in self._topic_words[tag]]

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def generate(self) -> Corpus:
        cfg = self.config
        rng = self._rng
        documents: List[Document] = []
        doc_id = 0
        for user_id in range(cfg.num_users):
            interest = self._user_interest(rng)
            lo, hi = cfg.docs_per_user_range
            num_docs = int(rng.integers(lo, hi + 1))
            for _ in range(num_docs):
                tags = self._sample_tags(interest, rng)
                text = self._sample_text(tags, rng)
                documents.append(
                    Document(
                        doc_id=doc_id,
                        text=text,
                        tags=frozenset(tags),
                        owner=user_id,
                    )
                )
                doc_id += 1
        return Corpus(documents)

    def _user_interest(self, rng: np.random.Generator) -> np.ndarray:
        """User's tag distribution: Dirichlet around global popularity.

        ``interest_concentration`` -> infinity gives IID users (everyone
        mirrors global popularity); small values give sharply non-IID users.
        """
        cfg = self.config
        alpha = cfg.interest_concentration * self._tag_popularity * cfg.num_tags
        alpha = np.maximum(alpha, 1e-3)
        return rng.dirichlet(alpha)

    def _sample_tags(
        self, interest: np.ndarray, rng: np.random.Generator
    ) -> List[str]:
        cfg = self.config
        num_tags = 1 + int(rng.poisson(max(0.0, cfg.mean_tags_per_doc - 1.0)))
        num_tags = min(num_tags, cfg.max_tags_per_doc, cfg.num_tags)
        first = int(rng.choice(cfg.num_tags, p=interest))
        chosen = [first]
        first_groups = set(self._tag_groups[self._tags[first]])
        while len(chosen) < num_tags:
            if rng.random() < cfg.within_group_bias:
                # Prefer a tag sharing a concept group with the first tag.
                candidates = [
                    i
                    for i in range(cfg.num_tags)
                    if i not in chosen
                    and first_groups & set(self._tag_groups[self._tags[i]])
                ]
            else:
                candidates = [i for i in range(cfg.num_tags) if i not in chosen]
            if not candidates:
                break
            weights = interest[candidates] + 1e-9
            weights = weights / weights.sum()
            chosen.append(int(rng.choice(candidates, p=weights)))
        return [self._tags[i] for i in chosen]

    def _sample_text(self, tags: Sequence[str], rng: np.random.Generator) -> str:
        cfg = self.config
        lo, hi = cfg.doc_length_range
        length = int(rng.integers(lo, hi + 1))
        words: List[str] = []
        topic_ids = [self._topic_words[tag] for tag in tags]
        for _ in range(length):
            roll = rng.random()
            if roll < cfg.noise_weight:
                # Pure noise word.
                words.append(self._vocabulary[int(rng.integers(cfg.vocabulary_size))])
            elif roll < cfg.noise_weight + cfg.topic_word_weight and topic_ids:
                # Topic word from one of this document's tags.
                ids = topic_ids[int(rng.integers(len(topic_ids)))]
                words.append(self._vocabulary[ids[int(rng.integers(len(ids)))]])
            else:
                # Background word (shared head of the vocabulary).
                head = max(50, cfg.vocabulary_size // 10)
                words.append(self._vocabulary[int(rng.integers(head))])
        return " ".join(words)
