"""Train/test splitting.

The paper's protocol (§3): "20 percent of the documents with tags are used
for training the automated tagger, while tags of the remaining 80 percent
documents are removed to be tagged by P2PDocTagger."  The split is applied
*per user* so every peer retains some labeled documents — each peer
contributes a small training shard, which is the whole point of the system.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.data.corpus import Corpus, Document
from repro.errors import DataError


def train_test_split(
    corpus: Corpus, train_fraction: float = 0.2, seed: int = 0
) -> Tuple[Corpus, Corpus]:
    """Global random split into (train, test) corpora."""
    if not 0.0 < train_fraction < 1.0:
        raise DataError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    documents = corpus.documents
    order = rng.permutation(len(documents))
    cut = max(1, int(round(train_fraction * len(documents))))
    train_ids = {documents[i].doc_id for i in order[:cut]}
    train = [d for d in documents if d.doc_id in train_ids]
    test = [d for d in documents if d.doc_id not in train_ids]
    return Corpus(train), Corpus(test)


def per_user_split(
    corpus: Corpus, train_fraction: float = 0.2, seed: int = 0
) -> Tuple[Corpus, Corpus]:
    """Per-user split: every owner keeps ``train_fraction`` labeled docs.

    Guarantees at least one training document per user (a peer with zero
    labeled documents would have no local model to contribute).
    """
    if not 0.0 < train_fraction < 1.0:
        raise DataError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    train: List[Document] = []
    test: List[Document] = []
    for owner in corpus.owners:
        docs = corpus.documents_of(owner)
        order = rng.permutation(len(docs))
        cut = max(1, int(round(train_fraction * len(docs))))
        chosen = set(order[:cut].tolist())
        for index, document in enumerate(docs):
            if index in chosen:
                train.append(document)
            else:
                test.append(document)
    return Corpus(train), Corpus(test)
