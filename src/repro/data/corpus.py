"""Corpus datatypes: documents, user profiles, and the corpus container."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class Document:
    """One (bookmarked) text document with its user-assigned tags.

    ``tags`` is a frozenset: tags are an open, unordered vocabulary.  The
    ``owner`` is the user/peer holding the document locally — documents never
    move between peers in P2PDocTagger.
    """

    doc_id: int
    text: str
    tags: FrozenSet[str]
    owner: int

    def with_tags(self, tags: Iterable[str]) -> "Document":
        """Copy of this document with a different tag set."""
        return Document(
            doc_id=self.doc_id,
            text=self.text,
            tags=frozenset(tags),
            owner=self.owner,
        )

    def untagged(self) -> "Document":
        """Copy with tags stripped (the paper's 80 % auto-tag pool)."""
        return self.with_tags(())


@dataclass
class UserProfile:
    """A user and the documents they hold."""

    user_id: int
    documents: List[Document] = field(default_factory=list)
    interests: List[str] = field(default_factory=list)

    @property
    def num_documents(self) -> int:
        return len(self.documents)

    def tag_counts(self) -> Counter:
        counts: Counter = Counter()
        for document in self.documents:
            counts.update(document.tags)
        return counts


class Corpus:
    """A collection of documents grouped by owner."""

    def __init__(self, documents: Sequence[Document]) -> None:
        self._documents = list(documents)
        self._by_owner: Dict[int, List[Document]] = {}
        for document in self._documents:
            self._by_owner.setdefault(document.owner, []).append(document)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, index: int) -> Document:
        return self._documents[index]

    @property
    def documents(self) -> List[Document]:
        return list(self._documents)

    @property
    def owners(self) -> List[int]:
        return sorted(self._by_owner)

    def documents_of(self, owner: int) -> List[Document]:
        return list(self._by_owner.get(owner, []))

    def user_profile(self, owner: int) -> UserProfile:
        return UserProfile(user_id=owner, documents=self.documents_of(owner))

    # -- statistics ---------------------------------------------------------------

    def tag_universe(self) -> List[str]:
        """All distinct tags, sorted."""
        tags = set()
        for document in self._documents:
            tags |= document.tags
        return sorted(tags)

    def tag_counts(self) -> Counter:
        counts: Counter = Counter()
        for document in self._documents:
            counts.update(document.tags)
        return counts

    def mean_tags_per_document(self) -> float:
        if not self._documents:
            return 0.0
        return sum(len(d.tags) for d in self._documents) / len(self._documents)

    def filter_tags(self, keep: Iterable[str]) -> "Corpus":
        """Corpus with tag sets intersected against ``keep`` (rare-tag pruning)."""
        keep_set = frozenset(keep)
        return Corpus(
            [d.with_tags(d.tags & keep_set) for d in self._documents]
        )

    def restrict_to_min_tag_support(self, min_support: int) -> "Corpus":
        """Drop tags appearing on fewer than ``min_support`` documents."""
        counts = self.tag_counts()
        keep = {tag for tag, count in counts.items() if count >= min_support}
        return self.filter_tags(keep)

    def summary(self) -> str:
        return (
            f"Corpus(docs={len(self)}, users={len(self._by_owner)}, "
            f"tags={len(self.tag_universe())}, "
            f"tags/doc={self.mean_tags_per_document():.2f})"
        )
