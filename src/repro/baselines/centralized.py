"""Centralized baseline: ship all data to a server, train there.

This is the setting the paper criticizes (scalability, single point of
failure, privacy) and the accuracy reference point: the P2P methods aim to
approach its F1 while transmitting far fewer bytes and never centralizing
document vectors.

Communication accounting: every peer uploads its raw tagged document vectors
to the server (charged through the simulated network); every prediction
sends the untagged vector to the server and receives scores back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.calibration import PlattCalibrator
from repro.ml.linear_svm import LinearSVM, LinearSVMModel
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import (
    P2PTagClassifier,
    PeerData,
    TaggedVector,
    binary_problems,
)
from repro.sim.codec import register_traffic_class
from repro.sim.messages import Message
from repro.sim.scenario import Scenario

MSG_DATA_UPLOAD = "central.data_upload"
MSG_QUERY = "central.query"
MSG_PREDICTION = "central.prediction"

# Wire-format hints: raw training data and queries are sparse vectors;
# prediction responses are small score maps (control traffic).
register_traffic_class(MSG_DATA_UPLOAD, "vector")
register_traffic_class(MSG_QUERY, "vector")
register_traffic_class(MSG_PREDICTION, "control")


@dataclass
class CentralizedConfig:
    """Centralized baseline hyperparameters."""

    server: int = 0
    lambda_reg: float = 1e-4
    epochs: int = 15
    max_negative_ratio: float = 5.0
    seed: int = 0

    def validate(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")


class CentralizedTagger(P2PTagClassifier):
    """All data at one server; linear SVM per tag over the pooled corpus."""

    traffic_prefix = "central"

    def __init__(
        self,
        scenario: Scenario,
        peer_data: PeerData,
        tags=None,
        config: Optional[CentralizedConfig] = None,
    ) -> None:
        super().__init__(scenario, peer_data, tags)
        self.config = config or CentralizedConfig()
        self.config.validate()
        if self.config.server not in scenario.peer_addresses:
            raise ConfigurationError(
                f"server {self.config.server} is not a scenario peer"
            )
        self._models: Dict[str, LinearSVMModel] = {}
        self._calibrators: Dict[str, PlattCalibrator] = {}

    def train(self) -> None:
        cfg = self.config
        pooled: List[TaggedVector] = []
        # The upload round is one bulk-scheduled delivery block: every
        # non-server peer's upload goes out in a single send_batch (the
        # batched path consumes the RNG stream bit-identically to the old
        # per-peer sequential sends, so replay is unchanged).
        uploads: List[Tuple[List[TaggedVector], Optional[Message]]] = []
        for address, items in sorted(self.peer_data.items()):
            if not items:
                continue
            message = None
            if address != cfg.server:
                message = Message(
                    src=address,
                    dst=cfg.server,
                    msg_type=MSG_DATA_UPLOAD,
                    payload=list(items),
                )
            uploads.append((items, message))
        outcomes = iter(
            self.transport.send_batch(
                [message for _, message in uploads if message is not None]
            )
        )
        for items, message in uploads:
            if message is None or next(outcomes).delivered:
                pooled.extend(items)
            else:
                self.scenario.stats.increment("central_upload_lost")
        self._flush_network()
        if not pooled:
            raise ConfigurationError("no training data reached the server")

        rng = np.random.default_rng(cfg.seed)
        problems = binary_problems(pooled, self.tags, cfg.max_negative_ratio, rng)
        for tag, (vectors, labels) in sorted(problems.items()):
            svm = LinearSVM(
                lambda_reg=cfg.lambda_reg, epochs=cfg.epochs, seed=cfg.seed
            )
            svm.fit(vectors, labels)
            self._models[tag] = svm.model
            decisions = [svm.decision(v) for v in vectors]
            self._calibrators[tag] = PlattCalibrator().fit(decisions, labels)
        self._trained = True

    def predict_scores(self, origin: int, vector: SparseVector) -> Dict[str, float]:
        self._require_trained()
        cfg = self.config
        if self.scenario.network.is_down(origin):
            # Querying peer is offline; defer to its next session (no charge
            # now — the round trip happens later either way).
            self.scenario.stats.increment("central_query_deferred")
        elif origin != cfg.server:
            query = self.transport.send(origin, cfg.server, MSG_QUERY, vector)
            if not query.delivered:
                # Server unreachable: the centralized system fails closed —
                # the single point of failure the paper warns about.
                self.scenario.stats.increment("central_query_lost")
                return {tag: 0.0 for tag in self.tags}
            self.transport.send(
                cfg.server,
                origin,
                MSG_PREDICTION,
                {t: 0.0 for t in self.tags},
            )
        self._flush_network()
        scores: Dict[str, float] = {}
        for tag in self.tags:
            model = self._models.get(tag)
            if model is None:
                scores[tag] = 0.0
                continue
            scores[tag] = self._calibrators[tag].probability(
                model.decision(vector)
            )
        return scores
