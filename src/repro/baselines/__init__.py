"""Comparator systems for the experiments.

- :class:`~repro.baselines.centralized.CentralizedTagger` — every peer ships
  its raw tagged document vectors to one server, which trains global SVMs:
  the accuracy upper bound and the privacy/communication worst case the paper
  argues against.
- :class:`~repro.baselines.localonly.LocalOnlyTagger` — each peer learns from
  its own documents only: zero communication, the accuracy lower bound that
  collaboration must beat.
- :class:`~repro.baselines.popularity.PopularityTagger` — assigns globally
  popular tags regardless of content: the sanity floor.
"""

from repro.baselines.centralized import CentralizedTagger, CentralizedConfig
from repro.baselines.localonly import LocalOnlyTagger, LocalOnlyConfig
from repro.baselines.popularity import PopularityTagger

__all__ = [
    "CentralizedTagger",
    "CentralizedConfig",
    "LocalOnlyTagger",
    "LocalOnlyConfig",
    "PopularityTagger",
]
