"""Popularity baseline: assign the globally most popular tags to everything.

Content-blind sanity floor.  Any learning system must beat it; on heavily
skewed tag distributions it is surprisingly competitive on micro-averaged
metrics, which is exactly why it belongs in the comparison.

Communication: one tiny count vector per peer to an aggregator, then one
broadcast back — negligible, charged anyway for honesty.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.ml.sparse import SparseVector
from repro.p2pclass.base import P2PTagClassifier
from repro.sim.codec import register_traffic_class
from repro.sim.messages import Message

MSG_COUNTS = "popularity.counts"

# Wire-format hint: tag-count maps are schema-repetitive short messages —
# the shared-dictionary model's sweet spot.
register_traffic_class(MSG_COUNTS, "counts")


class PopularityTagger(P2PTagClassifier):
    """Scores every document with normalized global tag frequencies."""

    traffic_prefix = "popularity"

    def train(self) -> None:
        aggregator = min(self.scenario.peer_addresses)
        counts: Counter = Counter()
        # One bulk-scheduled delivery block for the whole counting round
        # (send_batch consumes the RNG stream bit-identically to the old
        # per-peer sequential sends).
        pending: List[Tuple[Counter, Optional[Message]]] = []
        for address, items in sorted(self.peer_data.items()):
            local: Counter = Counter()
            for item in items:
                local.update(item.tags)
            message = None
            if address != aggregator:
                message = Message(
                    src=address,
                    dst=aggregator,
                    msg_type=MSG_COUNTS,
                    payload={tag: count for tag, count in local.items()},
                )
            pending.append((local, message))
        outcomes = iter(
            self.transport.send_batch(
                [message for _, message in pending if message is not None]
            )
        )
        for local, message in pending:
            # Note: the seed implementation only required the counts to
            # *leave* the peer (no aggregator-up check); preserved.
            if message is not None and not next(outcomes).sent:
                continue
            counts.update(local)
        self._flush_network()
        total = sum(counts.values()) or 1
        self._scores = {
            tag: counts.get(tag, 0) / total for tag in self.tags
        }
        # Scale so the most popular tag scores 1.0 and would be assigned.
        peak = max(self._scores.values(), default=0.0)
        if peak > 0:
            self._scores = {t: s / peak for t, s in self._scores.items()}
        self._trained = True

    def predict_scores(self, origin: int, vector: SparseVector) -> Dict[str, float]:
        self._require_trained()
        return dict(self._scores)
