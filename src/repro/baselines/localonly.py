"""Local-only baseline: every peer learns from its own documents alone.

Zero communication, but each peer sees only its own small tagged set — the
"significant amount of labeled data" problem the paper opens with.  The gap
between this baseline and the P2P methods *is* the value of collaboration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.calibration import PlattCalibrator
from repro.ml.linear_svm import LinearSVM, LinearSVMModel
from repro.ml.sparse import SparseVector
from repro.p2pclass.base import P2PTagClassifier, PeerData, binary_problems
from repro.sim.scenario import Scenario


@dataclass
class LocalOnlyConfig:
    """Local-only baseline hyperparameters."""

    lambda_reg: float = 1e-4
    epochs: int = 12
    max_negative_ratio: float = 3.0
    seed: int = 0

    def validate(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")


class LocalOnlyTagger(P2PTagClassifier):
    """Per-peer linear SVMs trained on local data only."""

    traffic_prefix = "local"

    def __init__(
        self,
        scenario: Scenario,
        peer_data: PeerData,
        tags=None,
        config: Optional[LocalOnlyConfig] = None,
    ) -> None:
        super().__init__(scenario, peer_data, tags)
        self.config = config or LocalOnlyConfig()
        self.config.validate()
        self._models: Dict[int, Dict[str, LinearSVMModel]] = {}
        self._calibrators: Dict[int, Dict[str, PlattCalibrator]] = {}

    def train(self) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        for address, items in sorted(self.peer_data.items()):
            if not items:
                continue
            problems = binary_problems(
                items, self.tags, cfg.max_negative_ratio, rng
            )
            models: Dict[str, LinearSVMModel] = {}
            calibrators: Dict[str, PlattCalibrator] = {}
            for tag, (vectors, labels) in sorted(problems.items()):
                svm = LinearSVM(
                    lambda_reg=cfg.lambda_reg, epochs=cfg.epochs, seed=cfg.seed
                )
                svm.fit(vectors, labels)
                models[tag] = svm.model
                decisions = [svm.decision(v) for v in vectors]
                calibrators[tag] = PlattCalibrator().fit(decisions, labels)
            self._models[address] = models
            self._calibrators[address] = calibrators
        self._trained = True

    def predict_scores(self, origin: int, vector: SparseVector) -> Dict[str, float]:
        self._require_trained()
        models = self._models.get(origin, {})
        calibrators = self._calibrators.get(origin, {})
        scores: Dict[str, float] = {}
        for tag in self.tags:
            model = models.get(tag)
            if model is None:
                # This peer never saw the tag; it cannot assign it at all.
                scores[tag] = 0.0
                continue
            scores[tag] = calibrators[tag].probability(model.decision(vector))
        return scores
