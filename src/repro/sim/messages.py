"""Network messages with honest wire-size accounting.

Every cost number an experiment reports (bytes sent, messages exchanged)
derives from :func:`payload_size`, one shared estimator.  Objects can opt in
by exposing ``wire_size() -> int``; plain Python structures are sized by
simple recursive rules that approximate a compact binary encoding.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_HEADER_BYTES = 40  # src + dst + type + msg id + overlay routing header
_message_ids = itertools.count(1)


def payload_size(payload: Any) -> int:
    """Estimated serialized size of ``payload`` in bytes.

    Rules: None=0, bool=1 (a compact encoding needs one byte, not a word),
    int/float=8, str=len of its UTF-8 encoding, bytes=len, containers = sum
    of elements (+2 framing per list/tuple/set and per dict entry), and any
    object with ``wire_size()`` answers for itself.  Note ``bool`` is checked
    before ``int`` — ``True`` counts 1 byte even though it is an ``int``
    subclass.
    """
    if payload is None:
        return 0
    wire = getattr(payload, "wire_size", None)
    if callable(wire):
        return int(wire())
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, dict):
        return sum(
            payload_size(key) + payload_size(value) + 2
            for key, value in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_size(item) for item in payload) + 2
    # Dataclass-like fallback: size the public attribute dict.
    attributes = getattr(payload, "__dict__", None)
    if attributes is not None:
        return payload_size(
            {k: v for k, v in attributes.items() if not k.startswith("_")}
        )
    return 8


@dataclass
class Message:
    """One simulated network message.

    ``size_bytes`` is the raw (pre-encoding) size, computed from the payload
    at construction unless given explicitly.  ``wire_bytes`` is the modelled
    post-encoding size — stamped by the transport's
    :class:`~repro.sim.codec.CodecTable` and defaulting to ``size_bytes``
    (identity encoding), so messages built outside the transport account
    raw == wire exactly as before codecs existed.
    """

    src: int
    dst: int
    msg_type: str
    payload: Any = None
    size_bytes: int = -1
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    hops: int = 1
    wire_bytes: int = -1

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            self.size_bytes = _HEADER_BYTES + payload_size(self.payload)
        if self.wire_bytes < 0:
            self.wire_bytes = self.size_bytes

    def total_bytes(self) -> int:
        """Raw bytes on the wire including per-hop retransmission."""
        return self.size_bytes * max(1, self.hops)

    def total_wire_bytes(self) -> int:
        """Post-encoding bytes on the wire including per-hop retransmission."""
        return self.wire_bytes * max(1, self.hops)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message(#{self.msg_id} {self.msg_type} {self.src}->{self.dst} "
            f"{self.size_bytes}B hops={self.hops})"
        )
