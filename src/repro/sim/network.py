"""Physical network model.

P2PDMT's "Configure physical network / Simulate physical network" box: every
message experiences propagation latency (per-pair, jittered), transmission
delay (size / bandwidth), and optional loss.  Nodes can be marked down, in
which case delivery silently fails — exactly how a UDP overlay sees churn.

Three send paths exist and are RNG-equivalent: :meth:`PhysicalNetwork.send`
(one message), :meth:`PhysicalNetwork.send_batch` (a same-tick block with
one vectorized jitter draw), and :meth:`PhysicalNetwork.broadcast_block`
(one payload to many recipients with bulk stats arithmetic and lazily
materialized messages).  numpy fills array draws by repeating the same
underlying generator steps, so a batch of N sends consumes the RNG stream
bit-identically to N sequential sends — batching never changes replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.stats import StatsCollector

DeliveryHandler = Callable[[Message], None]
SendListener = Callable[[Message], None]
BlockListener = Callable[["SendBlock"], None]


class SendBlock:
    """One same-tick block of send attempts, struct-of-arrays.

    Block listeners (:meth:`PhysicalNetwork.add_block_listener`) receive
    exactly one of these per network call — a single :meth:`send`, a
    :meth:`send_batch` block, or a :meth:`broadcast_block` fan-out — instead
    of a per-message callback.  Columns follow the
    :class:`~repro.sim.exchange.ExchangeFrame` SoA convention: each of
    ``src``/``dst``/``msg_type``/``size_bytes``/``wire_bytes``/``hops`` is
    either a scalar (constant over the block — how a broadcast ships its
    shared type and size without expansion) or a sequence of length
    ``count``.  ``time`` is the shared send tick.  Consumers that need
    per-record values use :meth:`column` or :meth:`rows`; columnar
    consumers (the trace store) read the raw attributes and broadcast
    scalars themselves.
    """

    __slots__ = ("time", "count", "src", "dst", "msg_type", "size_bytes",
                 "wire_bytes", "hops")

    def __init__(self, time: float, count: int, src, dst, msg_type,
                 size_bytes, wire_bytes, hops) -> None:
        self.time = time
        self.count = count
        self.src = src
        self.dst = dst
        self.msg_type = msg_type
        self.size_bytes = size_bytes
        self.wire_bytes = wire_bytes
        self.hops = hops

    _COLUMNS = ("src", "dst", "msg_type", "size_bytes", "wire_bytes", "hops")

    def column(self, name: str) -> Sequence:
        """The named column as a length-``count`` sequence (scalars expand)."""
        value = getattr(self, name)
        if isinstance(value, (int, np.integer, float, str)):
            return [value] * self.count
        return value

    def rows(self):
        """Iterate (src, dst, msg_type, size_bytes, wire_bytes, hops) rows."""
        return zip(*(self.column(name) for name in self._COLUMNS))

#: splitmix64 constants — explicit integer mix for per-pair latency seeds.
_MIX_MULT_A = 0x9E3779B97F4A7C15
_MIX_MULT_B = 0xBF58476D1CE4E5B9
_MIX_MULT_C = 0x94D049BB133111EB
_U64 = 0xFFFFFFFFFFFFFFFF


def pair_mix64(src: int, dst: int) -> int:
    """Deterministic, interpreter-independent 64-bit mix of an unordered pair.

    Python's ``hash(tuple)`` varies across interpreter builds (32- vs 64-bit,
    version-specific tuple hashing), which silently changed per-pair
    latencies between environments.  This splitmix64-style finalizer depends
    only on the two integers.
    """
    low, high = (src, dst) if src <= dst else (dst, src)
    x = (low * _MIX_MULT_A + high * _MIX_MULT_C + 0x1F0A2F) & _U64
    x ^= x >> 30
    x = (x * _MIX_MULT_B) & _U64
    x ^= x >> 27
    x = (x * _MIX_MULT_C) & _U64
    x ^= x >> 31
    return x


def pair_seed(src: int, dst: int) -> int:
    """31-bit RNG seed for an unordered pair (see :func:`pair_mix64`)."""
    return pair_mix64(src, dst) & 0x7FFFFFFF


def stream_seed(seed: int, peer: int, lane: int) -> int:
    """Deterministic 64-bit seed for one peer's RNG stream in one ``lane``.

    The per-peer randomness decomposition (``rng_mode="perpeer"``) gives
    every peer an independent generator per concern — network jitter, loss
    draws, churn — so that the *order* in which different peers consume
    randomness cannot affect any draw's value.  That order-independence is
    what lets a sharded execution (peers partitioned across event heaps)
    reproduce the single-heap kernel bit-for-bit: each stream is consumed
    only in its owner's causal order, which conservative windowing
    preserves.  Same splitmix64-style finalizer family as
    :func:`pair_mix64`, over the (seed, peer, lane) triple.
    """
    x = (
        (seed & _U64) * _MIX_MULT_A
        + (peer & _U64) * _MIX_MULT_C
        + (lane & _U64) * _MIX_MULT_B
        + 0x51ED2701
    ) & _U64
    x ^= x >> 30
    x = (x * _MIX_MULT_B) & _U64
    x ^= x >> 27
    x = (x * _MIX_MULT_C) & _U64
    x ^= x >> 31
    return x


class PeerStreams:
    """Per-peer random streams for the decomposed-randomness mode.

    Lanes: ``net`` (latency jitter for messages the peer *sends*), ``loss``
    (drop draws for the peer's sends), ``churn`` (session/downtime draws).
    Loss lives on its own lane because drop outcomes must be computable by
    every shard replica (they decide :class:`~repro.sim.transport.Outcome`
    flags read by orchestrator code), while jitter is consumed only by the
    peer's owning shard.  Generators are cached — repeated lookups return
    the same stream object, advancing as it is consumed.
    """

    _LANES = {"net": 1, "loss": 2, "churn": 3}

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[Tuple[int, int], np.random.Generator] = {}

    def _stream(self, lane: int, peer: int) -> np.random.Generator:
        key = (lane, peer)
        stream = self._streams.get(key)
        if stream is None:
            stream = np.random.default_rng(stream_seed(self.seed, peer, lane))
            self._streams[key] = stream
        return stream

    def net_rng(self, peer: int) -> np.random.Generator:
        return self._stream(self._LANES["net"], peer)

    def loss_rng(self, peer: int) -> np.random.Generator:
        return self._stream(self._LANES["loss"], peer)

    def churn_rng(self, peer: int) -> np.random.Generator:
        return self._stream(self._LANES["churn"], peer)

    def export_cursors(self) -> Dict[str, dict]:
        """RNG cursor snapshot for the simulation WAL: every *instantiated*
        stream's bit-generator state, keyed ``"lane:peer"`` in sorted order.

        Reading ``bit_generator.state`` does not consume draws, and lazily-
        created streams are fully determined by ``(seed, peer, lane)``, so
        the instantiated subset is a complete description of the RNG
        frontier: two runs whose cursors match draw identical futures.
        """
        return {
            f"{lane}:{peer}": self._streams[(lane, peer)].bit_generator.state
            for lane, peer in sorted(self._streams)
        }


def pair_factors(src: int, dsts: np.ndarray) -> np.ndarray:
    """Vectorized per-pair latency factors in [0.5, 1.5] for one source.

    Bit-identical to ``0.5 + (pair_mix64(src, dst) >> 11) * 2**-53`` per
    destination — the splitmix64 finalizer runs in wrapping ``uint64``
    numpy arithmetic, so a 10k-recipient broadcast computes its factors in
    a handful of array operations instead of 10k Python-level mixes.
    """
    dsts = np.asarray(dsts, dtype=np.uint64)
    source = np.uint64(src)
    low = np.minimum(dsts, source)
    high = np.maximum(dsts, source)
    x = (
        low * np.uint64(_MIX_MULT_A)
        + high * np.uint64(_MIX_MULT_C)
        + np.uint64(0x1F0A2F)
    )
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX_MULT_B)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX_MULT_C)
    x ^= x >> np.uint64(31)
    return 0.5 + (x >> np.uint64(11)) * (2.0 ** -53)


@dataclass
class LatencyModel:
    """Latency parameters.

    ``base_latency`` is the median one-way propagation delay;
    ``jitter_fraction`` scales lognormal jitter around it; ``bandwidth`` is
    bytes/second for transmission delay; ``drop_probability`` models loss.
    """

    base_latency: float = 0.05
    jitter_fraction: float = 0.2
    bandwidth: float = 1_000_000.0
    drop_probability: float = 0.0
    #: lower clamp on the lognormal jitter draw (0 = unbounded, the legacy
    #: behaviour).  A positive floor gives every delivery a guaranteed
    #: minimum propagation delay — the *lookahead* a conservative sharded
    #: execution needs (see :func:`repro.sim.shard.compute_lookahead`).
    jitter_floor: float = 0.0

    def min_propagation(self) -> float:
        """Guaranteed lower bound on any delivery's propagation delay.

        Per-pair factors are ≥ 0.5 by construction (:func:`pair_factors`);
        jitter is ≥ :attr:`jitter_floor` when drawn (exactly 1 when
        ``jitter_fraction`` is 0).  Zero when jitter is unbounded below.
        """
        floor = self.jitter_floor if self.jitter_fraction > 0 else 1.0
        return 0.5 * self.base_latency * floor

    def delay_for(self, message: Message, rng: np.random.Generator) -> float:
        """One-way delay for ``message``: propagation + transmission."""
        jitter = 1.0
        if self.jitter_fraction > 0:
            jitter = float(
                rng.lognormal(mean=0.0, sigma=self.jitter_fraction)
            )
            if jitter < self.jitter_floor:
                jitter = self.jitter_floor
        propagation = self.base_latency * jitter
        transmission = message.size_bytes / self.bandwidth
        return propagation + transmission

    def delays_for(
        self, sizes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized one-way delays for a block of message sizes.

        Consumes the RNG stream exactly as ``len(sizes)`` sequential
        :meth:`delay_for` calls would, and performs the same per-element
        float operations in the same order, so results are bit-identical.
        """
        count = len(sizes)
        if self.jitter_fraction > 0:
            jitter = rng.lognormal(
                mean=0.0, sigma=self.jitter_fraction, size=count
            )
            if self.jitter_floor > 0:
                jitter = np.maximum(jitter, self.jitter_floor)
        else:
            jitter = np.ones(count)
        return self.base_latency * jitter + sizes / self.bandwidth


class PhysicalNetwork:
    """Delivers messages between registered nodes through the simulator.

    Per-pair base latencies are derived deterministically from the node ids
    (stand-in for topology/geography), so two runs with the same seed see the
    same network — on any interpreter (see :func:`pair_seed`).
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        stats: Optional[StatsCollector] = None,
        rng_for_src: Optional[Callable[[int], np.random.Generator]] = None,
        loss_rng_for_src: Optional[Callable[[int], np.random.Generator]] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency or LatencyModel()
        self.stats = stats or StatsCollector()
        self._handlers: Dict[int, DeliveryHandler] = {}
        #: peers registered *elsewhere* (directory-served membership): a
        #: sharded worker marks peers it does not own as remote so liveness
        #: checks answer globally while only owned peers carry handlers.
        self._remote: Set[int] = set()
        self._down: Set[int] = set()
        self._pair_latency_cache: Dict[tuple, float] = {}
        self._send_listeners: List[SendListener] = []
        self._block_listeners: List[BlockListener] = []
        #: per-source stream providers (decomposed-randomness mode).  When
        #: unset, every draw comes from the simulator's single seeded stream
        #: in event order — the legacy mode, bit-identical to the pre-shard
        #: stack.  When set (usually :class:`PeerStreams` lanes), each
        #: message's jitter and drop draws come from its *source peer's* own
        #: streams, making draw values independent of cross-peer event
        #: interleaving — the property sharded execution relies on.
        self._rng_for_src = rng_for_src
        self._loss_rng_for_src = loss_rng_for_src

    def _jitter_rng(self, src: int) -> np.random.Generator:
        if self._rng_for_src is not None:
            return self._rng_for_src(src)
        return self.simulator.rng

    def _loss_rng(self, src: int) -> np.random.Generator:
        if self._loss_rng_for_src is not None:
            return self._loss_rng_for_src(src)
        return self.simulator.rng

    # -- membership ----------------------------------------------------------

    def register(self, node_id: int, handler: DeliveryHandler) -> None:
        """Attach a node's receive handler to the network."""
        self._handlers[node_id] = handler
        self._remote.discard(node_id)
        self._down.discard(node_id)

    def register_remote(self, node_id: int) -> None:
        """Mark a peer as a live endpoint whose handler lives on another
        shard (directory-served membership).

        Liveness checks (:meth:`is_up`, :meth:`are_up`) treat the peer like
        any registered node; an actual *delivery* to it is a sharding
        contract violation (cross-shard deliveries must be exchanged to the
        owning shard) and lands in ``messages_undeliverable``.
        """
        if node_id not in self._handlers:
            self._remote.add(node_id)
        self._down.discard(node_id)

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)
        self._remote.discard(node_id)
        self._down.discard(node_id)

    def set_down(self, node_id: int, down: bool = True) -> None:
        """Mark a node as failed (messages to/from it vanish)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_up(self, node_id: int) -> bool:
        return (
            node_id in self._handlers or node_id in self._remote
        ) and node_id not in self._down

    def are_up(self, node_ids: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`is_up` over a block of addresses."""
        handlers = self._handlers
        remote = self._remote
        down = self._down
        return np.fromiter(
            ((n in handlers or n in remote) and n not in down
             for n in node_ids),
            dtype=bool,
            count=len(node_ids),
        )

    def is_down(self, node_id: int) -> bool:
        """True if explicitly failed (independent of handler registration)."""
        return node_id in self._down

    @property
    def registered_nodes(self) -> Set[int]:
        return set(self._handlers) | self._remote

    def live_nodes(self) -> Set[int]:
        return {
            n
            for n in (*self._handlers, *self._remote)
            if n not in self._down
        }

    # -- observation ---------------------------------------------------------

    def add_send_listener(self, listener: SendListener) -> None:
        """Observe every message presented to the wire (tracing, debugging).

        Listeners fire for every send *attempt* — including attempts from
        down sources and messages later dropped by loss — matching the seed
        tracer, which recorded before any liveness check.  Batched sends are
        seen message-by-message.

        A per-message listener needs a :class:`Message` object per send, so
        its presence forces :meth:`Transport.broadcast` off the lazy
        vectorized path.  Observers that can consume SoA batches should use
        :meth:`add_block_listener` instead, which all three send paths —
        including :meth:`broadcast_block` — notify without leaving the fast
        path.
        """
        self._send_listeners.append(listener)

    def remove_send_listener(self, listener: SendListener) -> None:
        if listener in self._send_listeners:
            self._send_listeners.remove(listener)

    @property
    def has_send_listeners(self) -> bool:
        """True when a *per-message* tracer is attached (disables the
        lazy-message fast paths, which cannot present per-message
        :class:`Message` objects at send time).  Block listeners do not
        count: they receive SoA batches and keep every fast path taken.
        """
        return bool(self._send_listeners)

    def add_block_listener(self, listener: BlockListener) -> None:
        """Observe send attempts as SoA batches (one :class:`SendBlock` per
        network call) — the accounting-only observer contract.

        Same attempt semantics as :meth:`add_send_listener` (fires before
        liveness/loss checks), but batched: a vectorized
        :meth:`broadcast_block` delivers one callback with scalar columns
        plus the destination array, never materializing messages, so
        attaching a block listener never perturbs the event stream, the RNG
        draw order, or which send path is taken.
        """
        self._block_listeners.append(listener)

    def remove_block_listener(self, listener: BlockListener) -> None:
        if listener in self._block_listeners:
            self._block_listeners.remove(listener)

    @property
    def has_block_listeners(self) -> bool:
        return bool(self._block_listeners)

    def _notify_message_block(self, messages: Sequence[Message]) -> None:
        """Present a same-tick block of materialized messages to the block
        listeners as one SoA batch."""
        block = SendBlock(
            time=self.simulator.now,
            count=len(messages),
            src=[m.src for m in messages],
            dst=[m.dst for m in messages],
            msg_type=[m.msg_type for m in messages],
            size_bytes=[m.size_bytes for m in messages],
            wire_bytes=[m.wire_bytes for m in messages],
            hops=[m.hops for m in messages],
        )
        for listener in self._block_listeners:
            listener(block)

    def _notify_broadcast_block(
        self, src: int, dsts: Sequence[int], msg_type: str,
        size_bytes: int, wire_bytes: int,
    ) -> None:
        """Present one broadcast fan-out to the block listeners: constant
        columns stay scalars, only the destination column is an array."""
        block = SendBlock(
            time=self.simulator.now,
            count=len(dsts),
            src=src,
            dst=dsts,
            msg_type=msg_type,
            size_bytes=size_bytes,
            wire_bytes=wire_bytes,
            hops=1,
        )
        for listener in self._block_listeners:
            listener(block)

    # -- latency -----------------------------------------------------------------

    def _pair_base_latency(self, src: int, dst: int) -> float:
        """Deterministic per-pair latency factor in [0.5, 1.5] x base.

        The uniform draw comes straight from the top 53 bits of the pair
        mix — constructing a ``numpy`` Generator per pair costs ~10µs and
        dominated million-message runs.
        """
        key = (min(src, dst), max(src, dst))
        cached = self._pair_latency_cache.get(key)
        if cached is None:
            cached = 0.5 + (pair_mix64(src, dst) >> 11) * (2.0 ** -53)
            self._pair_latency_cache[key] = cached
        return cached

    # -- sending -------------------------------------------------------------------

    def send(self, message: Message) -> bool:
        """Queue ``message`` for delivery.

        Returns False when the message was dropped immediately (source down
        or loss); the caller cannot distinguish later failures, as in real
        networks.  Traffic is counted for every *sent* message, delivered or
        not — bytes leave the NIC either way.

        NOTE: :class:`repro.sim.shard.ShardNetwork` mirrors this method (and
        :meth:`send_batch`) with ownership gates interleaved; semantic edits
        here must be mirrored there.
        """
        if message.src == message.dst:
            raise SimulationError("loopback messages need no network")
        for listener in self._send_listeners:
            listener(message)
        if self._block_listeners:
            self._notify_message_block((message,))
        if not self.is_up(message.src):
            return False
        self.stats.record_message(message)
        if (
            self.latency.drop_probability > 0
            and self._loss_rng(message.src).random()
            < self.latency.drop_probability
        ):
            self.stats.increment("messages_dropped")
            return False
        pair_factor = self._pair_base_latency(message.src, message.dst)
        delay = pair_factor * self.latency.delay_for(
            message, self._jitter_rng(message.src)
        )
        self.simulator.schedule(
            delay, self._deliver, label="deliver", args=(message,)
        )
        return True

    def send_batch(self, messages: Sequence[Message]) -> List[bool]:
        """Send a same-tick block of messages with one vectorized jitter draw.

        Per-message results match :meth:`send` exactly (same RNG stream
        consumption, same delivery times, same stats); the win is doing one
        numpy call and one bulk schedule instead of N of each.  With loss
        enabled the drop and jitter draws interleave per message, so the
        block falls back to sequential sends to preserve the stream order.
        """
        for message in messages:
            # Validate the whole block before any side effect: a loopback
            # anywhere rejects the batch with nothing charged or scheduled.
            if message.src == message.dst:
                raise SimulationError("loopback messages need no network")
        if self.latency.drop_probability > 0 or len(messages) < 2:
            return [self.send(message) for message in messages]
        if self._block_listeners:
            self._notify_message_block(messages)
        results: List[bool] = []
        live: List[Message] = []
        record = self.stats.record_message
        listeners = self._send_listeners
        for message in messages:
            if listeners:
                for listener in listeners:
                    listener(message)
            if not self.is_up(message.src):
                results.append(False)
                continue
            record(message)
            live.append(message)
            results.append(True)
        if live:
            self._schedule_block(live)
        return results

    def _block_delays(self, live: Sequence[Message]) -> np.ndarray:
        """Delivery delays for a live same-tick block.

        Single-stream mode: one vectorized jitter draw over the whole block
        (bit-identical to sequential :meth:`send` calls).  Per-source mode:
        one vectorized draw *per source peer* over that peer's messages in
        block order — bit-identical to sequential sends because each source
        stream is consumed in the same per-message order either way.
        """
        factors = np.asarray(
            [self._pair_base_latency(m.src, m.dst) for m in live]
        )
        sizes = np.asarray([m.size_bytes for m in live], dtype=np.float64)
        if self._rng_for_src is None:
            jitters = self.latency.delays_for(sizes, self.simulator.rng)
        else:
            jitters = np.empty(len(live))
            by_src: Dict[int, List[int]] = {}
            for index, message in enumerate(live):
                by_src.setdefault(message.src, []).append(index)
            for src, indices in by_src.items():
                jitters[indices] = self.latency.delays_for(
                    sizes[indices], self._rng_for_src(src)
                )
        return factors * jitters

    def _schedule_block(self, live: List[Message]) -> None:
        """Bulk-schedule delivery of an already-charged live block."""
        delays = self._block_delays(live)
        self.simulator.schedule_batch(
            delays.tolist(), self._deliver, ((m,) for m in live)
        )

    def broadcast_block(
        self,
        src: int,
        dsts: Sequence[int],
        msg_type: str,
        payload: Any,
        size_bytes: int,
        wire_bytes: Optional[int] = None,
    ) -> np.ndarray:
        """Send one identical-size payload to many destinations, vectorized.

        The hot path behind :meth:`Transport.broadcast` at 10k+ recipients:
        stats arithmetic is aggregated in bulk, per-pair latency factors and
        jitter come from single array operations, and no :class:`Message`
        objects exist at send time — one is materialized per *delivered*
        recipient when its delivery event fires (:meth:`_deliver_lazy`).

        RNG and accounting are bit-identical to ``send_batch`` over the
        equivalent message block: the jitter draw consumes the stream the
        same way, pair factors are the same splitmix64 mix, and the stats
        arithmetic matches message-by-message recording.  Callers must
        pre-check the fallback conditions (loss model active, *per-message*
        send listeners attached, or a down source), which this fast path
        does not handle; ``dsts`` must be distinct and must not contain
        ``src``.  Block listeners are notified right here — one SoA
        :class:`SendBlock` with scalar columns — so tracing through the
        block API never forces the scalar fallback.

        ``wire_bytes`` is the codec-modelled post-encoding size (defaults
        to ``size_bytes``, i.e. identity); it flows into the wire-byte
        stats dimension and onto lazily materialized messages, never into
        delivery timing.

        Returns the per-destination sent flags (all True — a live source
        with no loss model queues every message).
        """
        count = len(dsts)
        if wire_bytes is None:
            wire_bytes = size_bytes
        if self._block_listeners:
            self._notify_broadcast_block(src, dsts, msg_type, size_bytes,
                                         wire_bytes)
        self.stats.record_message_block(
            msg_type, size_bytes, src=src, dsts=dsts, wire_bytes=wire_bytes
        )
        delays = self._broadcast_delays(src, dsts, size_bytes)
        self.simulator.schedule_batch(
            delays.tolist(),
            self._deliver_lazy,
            ((src, dst, msg_type, payload, size_bytes, wire_bytes)
             for dst in dsts),
        )
        return np.ones(count, dtype=bool)

    def _broadcast_delays(
        self, src: int, dsts: Sequence[int], size_bytes: int
    ) -> np.ndarray:
        """Vectorized delivery delays for one broadcast block (one jitter
        array draw from the source's stream — single-stream or per-source)."""
        factors = pair_factors(src, np.asarray(dsts, dtype=np.uint64))
        sizes = np.full(len(dsts), float(size_bytes))
        return factors * self.latency.delays_for(sizes, self._jitter_rng(src))

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None or message.dst in self._down:
            self.stats.increment("messages_undeliverable")
            return
        handler(message)

    def _deliver_lazy(
        self,
        src: int,
        dst: int,
        msg_type: str,
        payload: Any,
        size_bytes: int,
        wire_bytes: int,
        hops: int = 1,
    ) -> None:
        """Deliver a broadcast-block (or cross-shard) message, materializing
        it on demand.

        Handlers see an ordinary :class:`Message`; undeliverable recipients
        (churned out or unregistered since send time) never allocate one.
        ``hops`` preserves the original message's hop count for cross-shard
        unicast deliveries (stats were already charged at send time).
        """
        handler = self._handlers.get(dst)
        if handler is None or dst in self._down:
            self.stats.increment("messages_undeliverable")
            return
        handler(
            Message(
                src=src,
                dst=dst,
                msg_type=msg_type,
                payload=payload,
                size_bytes=size_bytes,
                wire_bytes=wire_bytes,
                hops=hops,
            )
        )
