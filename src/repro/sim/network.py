"""Physical network model.

P2PDMT's "Configure physical network / Simulate physical network" box: every
message experiences propagation latency (per-pair, jittered), transmission
delay (size / bandwidth), and optional loss.  Nodes can be marked down, in
which case delivery silently fails — exactly how a UDP overlay sees churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.stats import StatsCollector

DeliveryHandler = Callable[[Message], None]


@dataclass
class LatencyModel:
    """Latency parameters.

    ``base_latency`` is the median one-way propagation delay;
    ``jitter_fraction`` scales lognormal jitter around it; ``bandwidth`` is
    bytes/second for transmission delay; ``drop_probability`` models loss.
    """

    base_latency: float = 0.05
    jitter_fraction: float = 0.2
    bandwidth: float = 1_000_000.0
    drop_probability: float = 0.0

    def delay_for(self, message: Message, rng: np.random.Generator) -> float:
        """One-way delay for ``message``: propagation + transmission."""
        jitter = 1.0
        if self.jitter_fraction > 0:
            jitter = float(
                rng.lognormal(mean=0.0, sigma=self.jitter_fraction)
            )
        propagation = self.base_latency * jitter
        transmission = message.size_bytes / self.bandwidth
        return propagation + transmission


class PhysicalNetwork:
    """Delivers messages between registered nodes through the simulator.

    Per-pair base latencies are derived deterministically from the node ids
    (stand-in for topology/geography), so two runs with the same seed see the
    same network.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        stats: Optional[StatsCollector] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency or LatencyModel()
        self.stats = stats or StatsCollector()
        self._handlers: Dict[int, DeliveryHandler] = {}
        self._down: Set[int] = set()
        self._pair_latency_cache: Dict[tuple, float] = {}

    # -- membership ----------------------------------------------------------

    def register(self, node_id: int, handler: DeliveryHandler) -> None:
        """Attach a node's receive handler to the network."""
        self._handlers[node_id] = handler
        self._down.discard(node_id)

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)
        self._down.discard(node_id)

    def set_down(self, node_id: int, down: bool = True) -> None:
        """Mark a node as failed (messages to/from it vanish)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_up(self, node_id: int) -> bool:
        return node_id in self._handlers and node_id not in self._down

    def is_down(self, node_id: int) -> bool:
        """True if explicitly failed (independent of handler registration)."""
        return node_id in self._down

    @property
    def registered_nodes(self) -> Set[int]:
        return set(self._handlers)

    def live_nodes(self) -> Set[int]:
        return {n for n in self._handlers if n not in self._down}

    # -- latency -----------------------------------------------------------------

    def _pair_base_latency(self, src: int, dst: int) -> float:
        """Deterministic per-pair latency factor in [0.5, 1.5] x base."""
        key = (min(src, dst), max(src, dst))
        cached = self._pair_latency_cache.get(key)
        if cached is None:
            pair_rng = np.random.default_rng(hash(key) & 0x7FFFFFFF)
            cached = 0.5 + pair_rng.random()
            self._pair_latency_cache[key] = cached
        return cached

    # -- sending -------------------------------------------------------------------

    def send(self, message: Message) -> bool:
        """Queue ``message`` for delivery.

        Returns False when the message was dropped immediately (source down
        or loss); the caller cannot distinguish later failures, as in real
        networks.  Traffic is counted for every *sent* message, delivered or
        not — bytes leave the NIC either way.
        """
        if message.src == message.dst:
            raise SimulationError("loopback messages need no network")
        if not self.is_up(message.src):
            return False
        self.stats.record_message(message)
        if (
            self.latency.drop_probability > 0
            and self.simulator.rng.random() < self.latency.drop_probability
        ):
            self.stats.increment("messages_dropped")
            return False
        pair_factor = self._pair_base_latency(message.src, message.dst)
        delay = pair_factor * self.latency.delay_for(message, self.simulator.rng)
        self.simulator.schedule(
            delay, lambda: self._deliver(message), label=f"deliver:{message.msg_type}"
        )
        return True

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None or message.dst in self._down:
            self.stats.increment("messages_undeliverable")
            return
        handler(message)
