"""The simulation write-ahead log: checkpoint, resume, and window replay.

The sharded kernel already funnels *everything* that crosses a shard
boundary through one chokepoint — the window barrier.  Per barrier the
coordinator sees the columnar exchange frames (``repro.sim.exchange``
wire format), the directory plane's control records, and each worker's
window status; the workers can cheaply export their kernel cursors
(:meth:`repro.sim.engine.Simulator.export_cursors`), RNG cursors
(:meth:`repro.sim.network.PeerStreams.export_cursors`), and
:class:`~repro.sim.stats.StatsCollector` window deltas (the commutative
merge algebra makes per-window deltas composable).  This module appends
exactly that, one CRC-framed record per window, to a log file — in the
spirit of GnitzDB's unified WAL: *any prefix of the WAL can be replayed
to reach a consistent state baseline*.

Three operations build on the log:

- **checkpoint** (``ScenarioConfig.wal`` / CLI ``--wal PATH``): every
  barrier appends one window record; a commit record with the final
  digest seals a completed run.  Each record is flushed, so a crash at
  window W leaves windows ``0..W-1`` durable (a torn tail is detected by
  length/CRC and ignored).
- **resume** (``ScenarioConfig.resume`` / CLI ``--resume PATH``):
  *verified prefix replay*.  Worker heaps hold closures (churn timers,
  protocol callbacks) that cannot be pickled, so the WAL deliberately
  does not snapshot heap state; instead the deterministic workload is
  re-executed and every barrier inside the logged prefix is **verified**
  against the log — statuses, frame bytes, control records, stats
  deltas, kernel and RNG cursors must match exactly, else a loud
  :class:`SimulationError` reports the first divergent window.  Past the
  log end the session switches to appending live windows.  The final
  fingerprint is byte-identical to the uninterrupted run *by
  construction* (same event stream) and *checked* (cursor + delta
  verification at every logged barrier, digest verification against a
  sealed commit).
- **replay** (``repro replay PATH --from W --to V``): re-executes a
  window range in isolation — each window's frames are decoded, merged
  in the canonical ``(deliver_time, src_shard, seq)`` order, and pushed
  through a fresh kernel — for time-travel debugging without the
  workload, the overlay, or the other 999 windows.

What is *not* logged, and why: worker event heaps (unpicklable closures;
redundant given deterministic re-execution), the ``series``/``log``
stats families (unbounded, never fingerprinted), the
``directory``/``exchange`` counter families (execution-shape artifacts,
excluded from golden digests by contract), and per-window RNG cursors at
every barrier (reading ~3N generator states per window would dominate
the <10% overhead budget at large N — they are sampled every
``REPRO_WAL_CURSORS_EVERY`` windows, default 16, and always at commit).
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.envutil import env_int
from repro.errors import ConfigurationError, SimulationError
from repro.sim.exchange import ExchangeFrame, merge_frames

_MAGIC = 0x4C415752  # "RWAL"
_VERSION = 1
#: magic, version, num_shards, meta_len, lookahead
_FILE_HEADER = struct.Struct("<IHHId")
#: kind, payload_len, crc32(payload)
_RECORD_HEADER = struct.Struct("<BII")

_K_WINDOW = 1
_K_COMMIT = 2

CURSOR_EVERY_ENV = "REPRO_WAL_CURSORS_EVERY"


def cursor_cadence() -> int:
    """Windows between full RNG-cursor snapshots in the log (>= 1)."""
    return env_int(CURSOR_EVERY_ENV, 16, minimum=1, error=SimulationError)


def config_fingerprint(config: Any) -> Dict[str, Any]:
    """The scenario-identity fields a WAL is bound to.

    Everything that shapes the event stream participates; ``wal``/
    ``resume`` (log plumbing, not physics), ``executor`` (serial, mp, and
    tcp runs are byte-equivalent, so cross-executor resume is legal),
    the tcp placement fields (where workers run, not what they compute),
    and ``faults`` (an injected fault schedule plus its recovery leaves
    the event stream untouched — that is the fault plane's proof
    obligation) are excluded.
    """
    fields = asdict(config)
    for key in ("wal", "resume", "executor", "tcp_host", "tcp_port",
                "tcp_hosts", "faults"):
        fields.pop(key, None)
    return fields


# ---------------------------------------------------------------------------
# Records and file framing.
# ---------------------------------------------------------------------------


@dataclass
class WindowRecord:
    """Everything one barrier contributed to the run."""

    barrier: int
    window_start: float
    global_last: float
    total_executed: int
    #: per shard: (next_time, last_time, executed, requests, extras) where
    #: extras is the worker's WAL probe output — a pickled dict of stats
    #: delta, kernel cursors, and RNG cursors on cadence windows, kept as
    #: bytes so the coordinator embeds it without parsing — or None when
    #: probing is off
    statuses: List[Tuple[float, float, int, list, Optional[bytes]]]
    #: encoded :class:`ExchangeFrame` blobs keyed (src_shard, dst_shard)
    frames: Dict[Tuple[int, int], bytes]
    #: directory-plane control records served with this window's decision
    control: List[tuple] = field(default_factory=list)


def _header_bytes(num_shards: int, lookahead: float, meta: dict) -> bytes:
    blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    return (
        _FILE_HEADER.pack(_MAGIC, _VERSION, num_shards, len(blob), lookahead)
        + blob
    )


class WalWriter:
    """Append-only record writer; every append is flushed to disk."""

    def __init__(self, fh) -> None:
        self._fh = fh

    @classmethod
    def create(
        cls, path: str, num_shards: int, lookahead: float, meta: dict
    ) -> "WalWriter":
        fh = open(path, "wb")
        fh.write(_header_bytes(num_shards, lookahead, meta))
        fh.flush()
        return cls(fh)

    @classmethod
    def appending(cls, path: str, offset: int) -> "WalWriter":
        """Continue an existing log, truncating any torn tail past
        ``offset`` (the last complete record boundary)."""
        fh = open(path, "r+b")
        fh.truncate(offset)
        fh.seek(offset)
        return cls(fh)

    def _append(self, kind: int, payload: Any) -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._fh.write(_RECORD_HEADER.pack(kind, len(blob), zlib.crc32(blob)))
        self._fh.write(blob)
        self._fh.flush()

    def append_window(self, record: WindowRecord) -> None:
        self._append(
            _K_WINDOW,
            (
                record.barrier, record.window_start, record.global_last,
                record.total_executed, record.statuses, record.frames,
                record.control,
            ),
        )

    def append_commit(self, commit: dict) -> None:
        self._append(_K_COMMIT, commit)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class WalReader:
    """Parse a log file, tolerating a torn tail.

    The first record that is short, CRC-corrupt, or unparseable marks the
    end of the usable log: everything before it is the durable prefix
    (``windows``/``commit``), :attr:`valid_offset` is the byte boundary a
    resume writer continues from, and :attr:`truncated` reports whether
    anything was discarded.
    """

    def __init__(self, path: str) -> None:
        if not os.path.exists(path):
            raise ConfigurationError(f"simulation WAL not found: {path}")
        with open(path, "rb") as fh:
            data = fh.read()
        if len(data) < _FILE_HEADER.size:
            raise SimulationError(f"{path} is not a simulation WAL (too short)")
        magic, version, num_shards, meta_len, lookahead = _FILE_HEADER.unpack(
            data[: _FILE_HEADER.size]
        )
        if magic != _MAGIC:
            raise SimulationError(f"{path} is not a simulation WAL (bad magic)")
        if version != _VERSION:
            raise SimulationError(
                f"{path}: unsupported WAL version {version} "
                f"(this build reads version {_VERSION})"
            )
        self.path = path
        self.num_shards = num_shards
        self.lookahead = lookahead
        header_end = _FILE_HEADER.size + meta_len
        if len(data) < header_end:
            raise SimulationError(f"{path}: truncated WAL header")
        self.meta: dict = json.loads(data[_FILE_HEADER.size:header_end])
        self.header_end = header_end

        self.windows: List[WindowRecord] = []
        #: byte offset just past each window record (prefix-truncation points)
        self.window_offsets: List[int] = []
        self.commit: Optional[dict] = None
        self.truncated = False
        offset = header_end
        while offset < len(data):
            end = offset + _RECORD_HEADER.size
            if end > len(data):
                self.truncated = True
                break
            kind, length, crc = _RECORD_HEADER.unpack(data[offset:end])
            blob = data[end:end + length]
            if len(blob) < length or zlib.crc32(blob) != crc:
                self.truncated = True
                break
            try:
                payload = pickle.loads(blob)
            except Exception:
                self.truncated = True
                break
            offset = end + length
            if kind == _K_WINDOW:
                (barrier, window_start, global_last, total_executed,
                 statuses, frames, control) = payload
                self.windows.append(WindowRecord(
                    barrier=barrier, window_start=window_start,
                    global_last=global_last, total_executed=total_executed,
                    statuses=statuses, frames=frames, control=control,
                ))
                self.window_offsets.append(offset)
            elif kind == _K_COMMIT:
                self.commit = payload
            else:
                raise SimulationError(
                    f"{path}: unknown WAL record kind {kind}"
                )
        self.valid_offset = offset if not self.truncated else (
            self.window_offsets[-1] if self.window_offsets else header_end
        )


def truncate_wal(
    path: str, keep_windows: int, out_path: Optional[str] = None
) -> str:
    """Copy (or rewrite in place) a WAL keeping only the first
    ``keep_windows`` window records — the crash-at-window-W simulator used
    by the resume fuzz harness."""
    reader = WalReader(path)
    if keep_windows > len(reader.windows):
        raise ConfigurationError(
            f"cannot keep {keep_windows} windows: {path} holds only "
            f"{len(reader.windows)}"
        )
    end = (
        reader.header_end if keep_windows == 0
        else reader.window_offsets[keep_windows - 1]
    )
    with open(path, "rb") as fh:
        data = fh.read(end)
    target = out_path or path
    with open(target, "wb") as fh:
        fh.write(data)
    return target


# ---------------------------------------------------------------------------
# Worker-side probe.
# ---------------------------------------------------------------------------


class WalProbe:
    """Per-worker cursor/delta exporter, called once per barrier.

    Stats deltas and kernel cursors are cheap and captured every window;
    RNG cursors walk every instantiated generator and are sampled every
    ``cadence`` windows (and in the final :meth:`tail`).
    """

    def __init__(self, scenario: Any, cadence: int) -> None:
        self._scenario = scenario
        self._cadence = cadence
        self._snapshot = scenario.stats.delta_snapshot()
        self._barrier = 0

    def _delta(self) -> dict:
        """One fused pass per family: diff against the standing snapshot
        and advance it in place.  Equivalent to ``delta_since`` +
        ``delta_snapshot`` but runs on the worker's barrier critical path,
        so it touches each live counter entry exactly once instead of
        recopying whole families."""
        stats = self._scenario.stats
        snapshot = self._snapshot
        delta: dict = {}
        for name in stats._DELTA_FAMILIES:
            base = snapshot[name]
            get = base.get
            changed = {}
            for key, value in getattr(stats, name).items():
                old = get(key, 0)
                if value != old:
                    changed[key] = value - old
                    base[key] = value
            if changed:
                delta[name] = changed
        if stats._compressed and not snapshot["compressed"]:
            delta["compressed"] = True
            snapshot["compressed"] = True
        return delta

    def __call__(self) -> bytes:
        """The barrier hook: returns the window extras *pre-pickled*.

        The blob crosses the worker→coordinator channel as bytes and is
        embedded in the window record verbatim — the coordinator never
        parses it (checkpointing), and resume verification compares blobs
        byte-for-byte (pickling the same deterministic dicts from the same
        code revision is itself deterministic), unpickling only to name a
        divergence.  This keeps the per-window serialization cost to one
        encode in the worker instead of encode → decode → re-encode."""
        barrier = self._barrier
        self._barrier += 1
        extras = {
            "stats": self._delta(),
            "kernel": self._scenario.simulator.export_cursors(),
        }
        if barrier % self._cadence == 0:
            extras["rng"] = self._scenario.streams.export_cursors()
        return pickle.dumps(extras, protocol=pickle.HIGHEST_PROTOCOL)

    def tail(self) -> dict:
        """Post-workload remainder: stats recorded after the last barrier
        plus the final kernel/RNG cursors — sealed into the commit record
        so Σ(window deltas) + tail == the worker's final fingerprint."""
        return {
            "stats": self._delta(),
            "kernel": self._scenario.simulator.export_cursors(),
            "rng": self._scenario.streams.export_cursors(),
        }


# ---------------------------------------------------------------------------
# Coordinator-side session.
# ---------------------------------------------------------------------------


def _divergence(barrier: int, what: str, logged: Any, live: Any) -> SimulationError:
    return SimulationError(
        f"WAL divergence at window {barrier}: {what} differs from the log "
        f"(logged {logged!r}, live {live!r}) — resume requires the identical "
        "scenario, workload, and code revision that wrote the WAL"
    )


class WalSession:
    """One run's WAL endpoint, driven by the shard coordinator.

    Modes (decided from ``config.wal``/``config.resume``):

    - checkpoint only — fresh log at ``wal``, every window appended;
    - resume in place — verified prefix replay against ``resume``, then
      live appends continue the same file (torn tail truncated);
    - resume + re-log — ``--resume OLD --wal NEW`` verifies against OLD
      while writing the full (verified + live) stream to NEW;
    - verify only — resuming a *committed* log runs the whole workload in
      verify mode and checks the final digest against the commit record.
    """

    def __init__(
        self,
        config: Any,
        num_shards: int,
        lookahead: float,
        use_frames: bool,
        retain_records: bool = False,
    ) -> None:
        if not use_frames:
            raise ConfigurationError(
                "the simulation WAL records columnar exchange frames; it "
                "cannot run with REPRO_SCALAR_EXCHANGE=1"
            )
        wal_path = config.wal
        resume_path = config.resume
        if not wal_path and not resume_path:
            raise ConfigurationError(
                "WalSession needs config.wal and/or config.resume"
            )
        self.cursor_every = cursor_cadence()
        self.logged: List[WindowRecord] = []
        self.commit: Optional[dict] = None
        self.writer: Optional[WalWriter] = None
        self._verified = 0
        self._appended = 0
        #: in-run recovery (the tcp executor): keep every barrier's record
        #: in memory so a respawned worker can be replayed to the current
        #: barrier without re-reading the log file mid-run
        self._retain = retain_records
        self.records: List[WindowRecord] = []

        fingerprint = config_fingerprint(config)
        if resume_path:
            reader = WalReader(resume_path)
            if reader.num_shards != num_shards:
                raise ConfigurationError(
                    f"cannot resume {resume_path}: logged for "
                    f"{reader.num_shards} shards, this run uses {num_shards}"
                )
            if reader.lookahead != lookahead:
                raise ConfigurationError(
                    f"cannot resume {resume_path}: logged lookahead "
                    f"{reader.lookahead!r} != this run's {lookahead!r}"
                )
            logged_config = reader.meta.get("config")
            if logged_config != fingerprint:
                diff = sorted(
                    key
                    for key in set(logged_config or {}) | set(fingerprint)
                    if (logged_config or {}).get(key) != fingerprint.get(key)
                )
                raise ConfigurationError(
                    f"cannot resume {resume_path}: scenario config differs "
                    f"from the one that wrote the WAL (fields: {diff})"
                )
            # The cadence the log was written with wins: extras presence
            # must line up window for window during verification.
            self.cursor_every = int(
                reader.meta.get("cursor_every", self.cursor_every)
            )
            self.logged = reader.windows
            self.commit = reader.commit

        meta = {
            "config": fingerprint,
            "cursor_every": self.cursor_every,
            "use_frames": True,
        }
        fresh_target = bool(wal_path) and (
            not resume_path
            or os.path.abspath(wal_path) != os.path.abspath(resume_path)
        )
        if fresh_target:
            self.writer = WalWriter.create(
                wal_path, num_shards, lookahead, meta
            )
            self._rewrite_prefix = True
        elif resume_path and self.commit is None:
            # Continue the same file past its last complete window.
            self.writer = WalWriter.appending(resume_path, reader.valid_offset)
            self._rewrite_prefix = False
        else:
            # Committed log, no new target: pure verification.
            self._rewrite_prefix = False

    # -- per-barrier hook ---------------------------------------------------

    def on_window(
        self,
        barrier: int,
        window_start: float,
        global_last: float,
        total_executed: int,
        statuses: List[Tuple[float, float, int, list, Optional[dict]]],
        frames: Dict[Tuple[int, int], bytes],
        control: List[tuple],
    ) -> None:
        record = WindowRecord(
            barrier=barrier, window_start=window_start,
            global_last=global_last, total_executed=total_executed,
            statuses=statuses, frames=frames, control=list(control),
        )
        if barrier < len(self.logged):
            self._verify(record)
            self._verified += 1
            if self._rewrite_prefix and self.writer is not None:
                self.writer.append_window(record)
                self._appended += 1
        elif self.writer is not None:
            self.writer.append_window(record)
            self._appended += 1
        else:
            raise _divergence(
                barrier, "window count",
                f"{len(self.logged)} windows (committed)",
                "a run that kept going",
            )
        if self._retain:
            self.records.append(record)

    def _verify(self, live: WindowRecord) -> None:
        logged = self.logged[live.barrier]
        barrier = live.barrier
        if logged.barrier != barrier:
            raise _divergence(barrier, "barrier index", logged.barrier, barrier)
        if logged.window_start != live.window_start:
            raise _divergence(
                barrier, "window start", logged.window_start, live.window_start
            )
        if logged.global_last != live.global_last:
            raise _divergence(
                barrier, "global last-event time",
                logged.global_last, live.global_last,
            )
        if logged.total_executed != live.total_executed:
            raise _divergence(
                barrier, "executed-event total",
                logged.total_executed, live.total_executed,
            )
        if logged.control != live.control:
            raise _divergence(
                barrier, "control records", logged.control, live.control
            )
        if sorted(logged.frames) != sorted(live.frames):
            raise _divergence(
                barrier, "exchange frame set",
                sorted(logged.frames), sorted(live.frames),
            )
        for key in sorted(live.frames):
            if logged.frames[key] != live.frames[key]:
                raise _divergence(
                    barrier,
                    f"exchange frame bytes (shard {key[0]} -> {key[1]})",
                    f"{len(logged.frames[key])}B blob",
                    f"{len(live.frames[key])}B blob",
                )
        for shard_id, (logged_status, live_status) in enumerate(
            zip(logged.statuses, live.statuses)
        ):
            for name, index in (
                ("next event time", 0), ("last event time", 1),
                ("executed count", 2), ("control requests", 3),
            ):
                if logged_status[index] != live_status[index]:
                    raise _divergence(
                        barrier, f"shard {shard_id} {name}",
                        logged_status[index], live_status[index],
                    )
            logged_extras, live_extras = logged_status[4], live_status[4]
            if (logged_extras is None) != (live_extras is None):
                raise _divergence(
                    barrier, f"shard {shard_id} probe presence",
                    logged_extras is not None, live_extras is not None,
                )
            if logged_extras is None or logged_extras == live_extras:
                continue
            # Blobs differ: unpickle both only now, to name the part.
            logged_parts = pickle.loads(logged_extras)
            live_parts = pickle.loads(live_extras)
            for part in ("stats", "kernel", "rng"):
                if logged_parts.get(part) != live_parts.get(part):
                    raise _divergence(
                        barrier, f"shard {shard_id} {part} cursors",
                        logged_parts.get(part), live_parts.get(part),
                    )
            raise _divergence(
                barrier, f"shard {shard_id} probe extras",
                f"{len(logged_extras)}B blob", f"{len(live_extras)}B blob",
            )

    def window_record(self, barrier: int) -> WindowRecord:
        """The record this run logged (or verified) at ``barrier`` — the
        replay source for in-run worker recovery (``retain_records``)."""
        if barrier >= len(self.records):
            raise SimulationError(
                f"no retained WAL record for window {barrier} "
                f"({len(self.records)} windows retained this run)"
            )
        return self.records[barrier]

    # -- run end ------------------------------------------------------------

    def finish(
        self, digest: str, now: float, windows: int, tails: List[Optional[dict]]
    ) -> None:
        """Seal (or verify) the run outcome.

        Raises if the resumed run stopped short of the logged prefix or,
        on a committed log, if the final digest/clock/tails moved.
        """
        if windows < len(self.logged):
            raise SimulationError(
                f"WAL divergence: the resumed run finished after {windows} "
                f"windows but the log holds {len(self.logged)} — the "
                "workload does not match the one that wrote the WAL"
            )
        commit = {
            "digest": digest, "now": now, "windows": windows, "tails": tails,
        }
        if self.commit is not None:
            for key in ("digest", "now", "windows", "tails"):
                if self.commit.get(key) != commit[key]:
                    raise _divergence(
                        windows, f"commit {key}", self.commit.get(key),
                        commit[key],
                    )
        if self.writer is not None:
            self.writer.append_commit(commit)

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.writer = None


# ---------------------------------------------------------------------------
# Replay.
# ---------------------------------------------------------------------------


@dataclass
class ReplayWindow:
    """One re-executed window: the canonical delivery order plus the
    logged control records and cursor/delta sidecars."""

    barrier: int
    window_start: float
    global_last: float
    total_executed: int
    #: (deliver_time, src, dst, msg_type, size_bytes, wire_bytes, hops) in
    #: exact injection order, re-executed through a fresh kernel
    deliveries: List[Tuple[float, int, int, str, int, int, int]]
    control: List[tuple]
    #: merged per-shard stats delta for the window ({} when probing off)
    stats_delta: dict
    #: per-shard kernel cursors (None when probing off)
    kernel: List[Optional[dict]]


def replay_windows(
    path: str, start: int = 0, stop: Optional[int] = None
) -> Iterator[ReplayWindow]:
    """Re-execute the logged windows ``start..stop`` in isolation.

    Every window's frames are decoded per destination shard, merged in
    the canonical ``(deliver_time, src_shard, seq)`` order, and pushed
    through a fresh :class:`~repro.sim.engine.Simulator` via the same
    ``schedule_block`` path the live kernel uses — so the delivery order
    printed here is exactly the order the original run injected.
    """
    from repro.sim.engine import Simulator
    from repro.sim.stats import StatsCollector

    reader = WalReader(path)
    stop = len(reader.windows) if stop is None else stop
    if start < 0 or stop > len(reader.windows) or start > stop:
        raise ConfigurationError(
            f"window range [{start}, {stop}) outside the log's "
            f"0..{len(reader.windows)}"
        )
    for record in reader.windows[start:stop]:
        per_dst: Dict[int, List[ExchangeFrame]] = {}
        for (src_shard, dst_shard) in sorted(record.frames):
            frame, frame_barrier = ExchangeFrame.decode(
                record.frames[(src_shard, dst_shard)]
            )
            if frame_barrier != record.barrier:
                raise SimulationError(
                    f"WAL {path}: frame tagged barrier {frame_barrier} "
                    f"inside window record {record.barrier}"
                )
            per_dst.setdefault(dst_shard, []).append(frame)
        deliveries: List[Tuple[float, int, int, str, int, int, int]] = []
        for dst_shard in sorted(per_dst):
            times, columns = merge_frames(per_dst[dst_shard])
            simulator = Simulator(0)
            src_col, dst_col, types, _payloads, sizes, wires, hops = columns

            def deliver(src, dst, msg_type, size, wire, hop, sim=simulator):
                deliveries.append(
                    (sim.now, src, dst, msg_type, size, wire, hop)
                )

            simulator.schedule_block(
                times, deliver, (src_col, dst_col, types, sizes, wires, hops)
            )
            simulator.run()
        stats_delta = StatsCollector()
        kernel: List[Optional[dict]] = []
        for status in record.statuses:
            extras = (
                None if status[4] is None else pickle.loads(status[4])
            )
            kernel.append(None if extras is None else extras.get("kernel"))
            if extras is not None and extras.get("stats"):
                stats_delta.apply_delta(extras["stats"])
        yield ReplayWindow(
            barrier=record.barrier,
            window_start=record.window_start,
            global_last=record.global_last,
            total_executed=record.total_executed,
            deliveries=deliveries,
            control=record.control,
            stats_delta={
                name: dict(getattr(stats_delta, name))
                for name in StatsCollector._DELTA_FAMILIES
                if getattr(stats_delta, name)
            },
            kernel=kernel,
        )
