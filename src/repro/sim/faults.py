"""The seeded deterministic fault-injection plane (``--faults``).

A :class:`FaultPlan` turns a compact spec string into a concrete fault
schedule — which worker dies (or stalls, or mangles its wire frames) at
which window barrier — drawn entirely from the plan's **own** splitmix64
stream.  The workload RNGs are never touched, so the contract every
other layer of this stack lives by holds here too: a run with injected
faults (and the tcp coordinator's recovery machinery cleaning up after
them) must land the exact same golden digest as the never-faulted run.

Fault kinds
-----------

- ``crash`` — the worker process hard-exits (``os._exit``) at its
  window barrier, before syncing.  The coordinator sees EOF, respawns
  the slot, and replays the newcomer from the WAL prefix.
- ``stall`` — the worker sleeps ``stall_s`` seconds at the barrier
  while its heartbeat keeps flowing: a slow worker must *not* be
  declared dead under ``REPRO_TCP_TIMEOUT_S``.
- ``halfopen`` — the worker goes silent without closing its socket
  (heartbeat stopped, nothing sent or read); only the coordinator's
  activity deadline can unmask it.
- ``corrupt`` — the worker sends a garbage-magic frame in place of its
  sync, then exits: the coordinator must treat wire garbage as a dead
  worker, not honour it.
- ``truncate`` — the worker sends a frame header promising more payload
  bytes than it writes, then exits (a torn wire write).
- ``tear`` — chops a drawn number of bytes off the **resume** log's
  tail before the run opens it (the torn-tail crash simulator, as an
  injected fault); :class:`~repro.sim.wal.WalReader` already discards
  torn tails, so the digest cannot move.

Spec grammar
------------

Comma-separated entries::

    seed=N | horizon=N | stall_s=F | kind[*count][@window[:shard]]

``seed`` (default 0) seeds the plan's splitmix64 stream; ``horizon``
(default 6) is the draw range for entries without an explicit
``@window``; ``stall_s`` (default 2.0) is the stall duration.  Window
and shard positions left out are drawn deterministically from the
stream, so ``seed=7,crash`` is a complete, reproducible schedule.

The plan is execution shape, not physics: like the tcp placement fields
it is excluded from the WAL config fingerprint
(:func:`repro.sim.wal.config_fingerprint`), so a faulted run can resume
a clean log and vice versa.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: splitmix64 constants — the same finalizer family as
#: ``repro.sim.network``'s per-peer stream seeding, reused verbatim so
#: the fault plane's draws are platform-stable 64-bit arithmetic.
_GAMMA = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9
_MIX_C = 0x94D049BB133111EB
_U64 = 0xFFFFFFFFFFFFFFFF

#: process faults fired at a window barrier, before the sync
_BARRIER_KINDS = ("crash", "stall", "halfopen")
#: wire faults fired in place of that barrier's sync frame
_WIRE_KINDS = ("corrupt", "truncate")
#: offline faults applied to the resume log before the run opens it
_FILE_KINDS = ("tear",)
KINDS = _BARRIER_KINDS + _WIRE_KINDS + _FILE_KINDS


def splitmix64(state: int) -> Tuple[int, int]:
    """One splitmix64 step: ``(next_state, uniform u64 output)``."""
    state = (state + _GAMMA) & _U64
    z = state
    z = ((z ^ (z >> 30)) * _MIX_B) & _U64
    z = ((z ^ (z >> 27)) * _MIX_C) & _U64
    return state, (z ^ (z >> 31)) & _U64


def mix64(*parts: int) -> int:
    """Order-sensitive mix of integers to one u64 (backoff-jitter seeds)."""
    value = 0x243F6A8885A308D3
    for part in parts:
        value = (value + (part & _U64) * _MIX_C) & _U64
        value ^= value >> 30
        value = (value * _MIX_B) & _U64
        value ^= value >> 27
        value = (value * _MIX_C) & _U64
        value ^= value >> 31
    return value


@dataclass(frozen=True)
class FaultEvent:
    """One resolved fault: where (window, shard) and what (kind).

    ``tear`` events have no window/shard position (both -1); ``arg``
    carries the drawn byte count to chop off the resume log's tail.
    """

    kind: str
    window: int
    shard: int
    arg: int = 0


class FaultPlan:
    """A parsed ``--faults`` spec plus its deterministic draw stream."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self.seed = 0
        self.horizon = 6
        self.stall_s = 2.0
        #: (kind, window or None, shard or None), count-expanded,
        #: in spec order — the draw order is part of the schedule
        self._entries: List[Tuple[str, Optional[int], Optional[int]]] = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                raise ConfigurationError(
                    f"fault spec {spec!r} has an empty entry"
                )
            if "=" in entry:
                self._parse_knob(entry)
                continue
            self._parse_fault(entry)
        if not self._entries:
            raise ConfigurationError(
                f"fault spec {spec!r} sets knobs but schedules no faults"
            )

    def _parse_knob(self, entry: str) -> None:
        key, _, value = entry.partition("=")
        key, value = key.strip(), value.strip()
        try:
            if key == "seed":
                self.seed = int(value)
                return
            if key == "horizon":
                self.horizon = int(value)
                if self.horizon < 1:
                    raise ValueError
                return
            if key == "stall_s":
                self.stall_s = float(value)
                if not self.stall_s > 0:
                    raise ValueError
                return
        except ValueError:
            raise ConfigurationError(
                f"fault spec entry {entry!r}: invalid {key} value"
            ) from None
        raise ConfigurationError(
            f"fault spec entry {entry!r}: unknown knob {key!r} "
            "(expected seed, horizon, or stall_s)"
        )

    def _parse_fault(self, entry: str) -> None:
        kind, _, position = entry.partition("@")
        window: Optional[int] = None
        shard: Optional[int] = None
        if position:
            window_text, _, shard_text = position.partition(":")
            try:
                window = int(window_text)
                if shard_text:
                    shard = int(shard_text)
            except ValueError:
                raise ConfigurationError(
                    f"fault spec entry {entry!r}: expected "
                    "kind[*count][@window[:shard]]"
                ) from None
            if window < 0 or (shard is not None and shard < 0):
                raise ConfigurationError(
                    f"fault spec entry {entry!r}: window and shard "
                    "positions must be >= 0"
                )
        count = 1
        if "*" in kind:
            kind, _, count_text = kind.partition("*")
            try:
                count = int(count_text)
                if count < 1:
                    raise ValueError
            except ValueError:
                raise ConfigurationError(
                    f"fault spec entry {entry!r}: invalid repeat count"
                ) from None
        kind = kind.strip()
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in {self.spec!r}; "
                f"expected one of {', '.join(KINDS)}"
            )
        self._entries.extend([(kind, window, shard)] * count)

    @classmethod
    def parse(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """``None``/blank specs mean no plan; anything else must parse."""
        if spec is None or not spec.strip():
            return None
        return cls(spec)

    # -- the drawn schedule --------------------------------------------------

    def resolve(self, num_shards: int) -> List[FaultEvent]:
        """The fully drawn schedule for a ``num_shards``-shard run.

        Deterministic per (spec, num_shards): missing windows/shards and
        tear byte counts come from the plan's splitmix64 stream, in spec
        order, so the same spec always injects the same faults.
        """
        if num_shards < 1:
            raise ConfigurationError(
                "fault schedules target sharded runs (num_shards >= 1)"
            )
        state = mix64(self.seed, num_shards)
        events: List[FaultEvent] = []
        for kind, window, shard in self._entries:
            if kind in _FILE_KINDS:
                state, value = splitmix64(state)
                events.append(FaultEvent(kind, -1, -1, 1 + value % 40))
                continue
            if window is None:
                state, value = splitmix64(state)
                window = value % self.horizon
            if shard is None:
                state, value = splitmix64(state)
                shard = value % num_shards
            if shard >= num_shards:
                raise ConfigurationError(
                    f"fault spec {self.spec!r} names shard {shard} but "
                    f"the run has {num_shards} shards"
                )
            events.append(FaultEvent(kind, window, shard))
        return events

    def describe(self, num_shards: int) -> dict:
        """JSON-serializable schedule (the CI chaos-fuzz artifact)."""
        return {
            "spec": self.spec,
            "seed": self.seed,
            "horizon": self.horizon,
            "stall_s": self.stall_s,
            "num_shards": num_shards,
            "events": [
                {
                    "kind": event.kind,
                    "window": event.window,
                    "shard": event.shard,
                    "arg": event.arg,
                }
                for event in self.resolve(num_shards)
            ],
        }

    # -- applying the schedule -----------------------------------------------

    def injector(
        self,
        shard_id: int,
        num_shards: int,
        counters: Optional[Counter] = None,
        blackhole_s: float = 120.0,
    ) -> Optional["FaultInjector"]:
        """This shard's worker-side executioner, or None if the schedule
        never touches it."""
        events = [
            event
            for event in self.resolve(num_shards)
            if event.kind not in _FILE_KINDS and event.shard == shard_id
        ]
        if not events:
            return None
        return FaultInjector(events, self.stall_s, blackhole_s, counters)

    def apply_wal_tears(self, path: str, num_shards: int) -> int:
        """Chop the schedule's drawn tear bytes off the resume log's tail.

        Clamped to the file header, so the result is always a readable
        (possibly zero-window) WAL — :class:`~repro.sim.wal.WalReader`
        discards the torn record and resume replays the shorter prefix.
        Returns the bytes actually torn (0 when the schedule has no
        tears or the log is missing/header-only already).
        """
        tears = [e for e in self.resolve(num_shards) if e.kind == "tear"]
        if not tears or not os.path.exists(path):
            return 0
        from repro.sim.wal import _FILE_HEADER

        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            header = handle.read(_FILE_HEADER.size)
            if len(header) < _FILE_HEADER.size:
                return 0
            meta_len = _FILE_HEADER.unpack(header)[3]
            floor = _FILE_HEADER.size + meta_len
            target = max(floor, size - sum(e.arg for e in tears))
            handle.truncate(target)
        return size - target


class FaultInjector:
    """Worker-side fault executioner for one shard.

    Installed as ``_ShardRuntime.fault_hook`` (barrier faults) and into
    the tcp channel (wire faults).  Never installed on a RECOVER-ed
    worker: a replacement replaying the WAL prefix must not re-fire the
    fault that killed its predecessor, or recovery would crash-loop.
    """

    def __init__(
        self,
        events: List[FaultEvent],
        stall_s: float,
        blackhole_s: float,
        counters: Optional[Counter] = None,
    ) -> None:
        self._barrier_faults: Dict[int, str] = {}
        self._wire_faults: Dict[int, str] = {}
        for event in events:
            if event.kind in _WIRE_KINDS:
                self._wire_faults[event.window] = event.kind
            else:
                self._barrier_faults[event.window] = event.kind
        self.stall_s = stall_s
        self.blackhole_s = blackhole_s
        #: survivable-fault accounting (stalls); folded into the worker's
        #: ``StatsCollector.faults`` family.  Crash-family faults cannot
        #: report (the process is gone) — the coordinator accounts those.
        self.counters = counters if counters is not None else Counter()
        self._heartbeat = None

    def bind_heartbeat(self, heartbeat) -> None:
        """The worker's PING thread, stopped by half-open faults."""
        self._heartbeat = heartbeat

    def at_barrier(self, window: int) -> None:
        """Fire this window's process fault (the runtime fault hook)."""
        kind = self._barrier_faults.get(window)
        if kind is None:
            return
        if kind == "crash":
            os._exit(3)
        if kind == "stall":
            # The heartbeat keeps flowing: the coordinator must wait the
            # stall out rather than declaring this worker dead.
            self.counters["stalls"] += 1
            time.sleep(self.stall_s)
            return
        # halfopen: stop the heartbeat and go dark without closing the
        # socket — only the coordinator's activity deadline can tell.
        # Exit (well after the coordinator gave up on us) so teardown
        # never waits on a zombie.
        if self._heartbeat is not None:
            self._heartbeat.stop()
        time.sleep(self.blackhole_s)
        os._exit(3)

    def wire_fault(self, barrier: int) -> Optional[str]:
        """'corrupt'/'truncate' when this barrier's sync frame should be
        mangled instead of sent, else None."""
        return self._wire_faults.get(barrier)
