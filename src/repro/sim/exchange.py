"""Columnar zero-copy shard exchange: SoA window frames + shm rings.

This module is the data plane of the sharded kernel's cross-shard
exchange (:mod:`repro.sim.shard`).  PR 4/5 shipped every cross-shard
delivery as one Python tuple pickled onto a ``multiprocessing`` queue —
at 200k messages per storm the pickle round trips dominated the mp
executor's wall clock.  Here a window's records to one destination shard
become a single **struct-of-arrays** :class:`ExchangeFrame`:

- numeric columns ``(deliver_time f8, seq i8, src i8, dst i8,
  size_bytes i8, wire_bytes i8, hops i8)`` as numpy arrays (``src_shard``
  is constant per frame and rides the header),
- an interned ``msg_type`` id column (i4) plus a per-frame string table,
- a payload sidecar: ``None``-only frames (the common hot path — lazy
  delivery materializes payloads receiver-side) carry nothing; frames
  with real payload objects pickle just the payload list, counted as the
  ``pickled_records`` fallback.

Frames serialize to one length-prefixed binary blob
(:meth:`ExchangeFrame.encode` / :meth:`ExchangeFrame.decode` — the
LSN-prefixed delta-batch shape of a WAL, with the window barrier index as
the LSN) and ship through :class:`ShardRing`: a single-producer /
single-consumer byte ring in ``multiprocessing.shared_memory``, one
writer/reader pair per directed shard pair (:class:`RingExchange`), so
the mp executor's hot path does **zero per-record pickling** and the
receiver decodes columns with ``np.frombuffer`` views straight off the
copied frame bytes.

Receive-side injection is vectorized symmetrically:
:func:`merge_frames` concatenates the per-sender frames, orders the
union with one ``np.lexsort`` by ``(deliver_time, src_shard, seq)`` —
exactly the tuple sort the queue path used — and hands column lists to
:meth:`repro.sim.engine.Simulator.schedule_block`.

Synchronization leans on the window-barrier protocol: a writer only
writes frames *before* announcing its barrier sync, a reader only reads
frames its window decision told it to expect, and a sender can run at
most one barrier ahead — so ring occupancy is bounded by two windows of
traffic.  The pointer handshake is the classic SPSC publish: the writer
copies payload bytes first and advances the write cursor last; aligned
8-byte cursor loads/stores are single memcpy operations.  A frame that
does not fit the ring is **never** waited on (a blocked writer inside the
barrier handshake would deadlock the fleet) — it falls back to the queue
path, counted loudly in ``StatsCollector.exchange["queue_fallbacks"]``.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from typing import Any, List, MutableMapping, Optional, Sequence, Tuple

import numpy as np

from repro.envutil import env_flag, env_float, env_int
from repro.errors import SimulationError

_MAGIC = 0x536F4131  # "SoA1"
_HEADER = struct.Struct("<IIIiiq")  # magic, barrier, count, src_shard, flags, payload_len
_U32 = struct.Struct("<I")
_FLAG_PAYLOADS = 1

#: numeric column order inside an encoded frame (all i8 except deliver f8)
_INT_COLUMNS = ("seq", "src", "dst", "size_bytes", "wire_bytes", "hops")


def scalar_exchange_enabled() -> bool:
    """True when ``REPRO_SCALAR_EXCHANGE=1`` pins the legacy tuple/pickle
    exchange path (the fallback/reference for the equivalence harness)."""
    return env_flag("REPRO_SCALAR_EXCHANGE")


def ring_capacity_bytes(num_shards: int) -> int:
    """Per-ring byte capacity for a ``num_shards``-way exchange.

    A fixed total budget (``REPRO_EXCHANGE_RING_KB_TOTAL``, default 32 MiB)
    is split across the K×K ring grid with a floor
    (``REPRO_EXCHANGE_RING_KB_MIN``, default 128 KiB): few-shard runs get
    deep rings (cross-shard windows are big), many-shard runs get many
    shallow ones (per-pair windows shrink as 1/K²).  Oversized frames are
    not an error — they take the loud queue fallback.
    """
    total_kb = env_int(
        "REPRO_EXCHANGE_RING_KB_TOTAL", 32768, minimum=0,
        error=SimulationError,
    )
    min_kb = env_int(
        "REPRO_EXCHANGE_RING_KB_MIN", 128, minimum=1, error=SimulationError,
    )
    per_ring = (total_kb * 1024) // max(1, num_shards * num_shards)
    return max(min_kb * 1024, per_ring)


def exchange_timeout_seconds() -> float:
    """How long a reader polls a ring before declaring the sender dead."""
    return env_float(
        "REPRO_EXCHANGE_TIMEOUT_S", 60.0, exclusive_minimum=0.0,
        error=SimulationError,
    )


class ExchangeFrame:
    """One window's cross-shard deliveries to one destination, as columns.

    Built from the tuple records the shard runtime accumulates
    (:data:`repro.sim.shard.ExchangeRecord` layout) via
    :meth:`from_records`; the serial executor passes frame objects through
    memory while the mp executor round-trips them through
    :meth:`encode`/:meth:`decode`.
    """

    __slots__ = (
        "count",
        "src_shard",
        "deliver_time",
        "seq",
        "src",
        "dst",
        "size_bytes",
        "wire_bytes",
        "hops",
        "type_ids",
        "type_table",
        "payloads",
        "payload_count",
        "min_time",
    )

    def __init__(
        self,
        src_shard: int,
        deliver_time: np.ndarray,
        seq: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        size_bytes: np.ndarray,
        wire_bytes: np.ndarray,
        hops: np.ndarray,
        type_ids: np.ndarray,
        type_table: List[str],
        payloads: Optional[List[Any]],
        payload_count: int = 0,
    ) -> None:
        self.count = len(deliver_time)
        self.src_shard = src_shard
        self.deliver_time = deliver_time
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.wire_bytes = wire_bytes
        self.hops = hops
        self.type_ids = type_ids
        self.type_table = type_table
        #: None for all-``None`` payload frames (no sidecar); otherwise the
        #: per-record payload list, pickled on encode
        self.payloads = payloads
        self.payload_count = payload_count
        self.min_time = float(deliver_time.min())

    @classmethod
    def from_records(cls, records: Sequence[tuple]) -> "ExchangeFrame":
        """Columnarize one outbox's records (all from one source shard)."""
        columns = list(zip(*records))
        deliver = np.asarray(columns[0], dtype=np.float64)
        src_shard = columns[1][0]
        seq = np.asarray(columns[2], dtype=np.int64)
        src = np.asarray(columns[3], dtype=np.int64)
        dst = np.asarray(columns[4], dtype=np.int64)
        table, inverse = np.unique(
            np.asarray(columns[5], dtype=object), return_inverse=True
        )
        size_bytes = np.asarray(columns[7], dtype=np.int64)
        wire_bytes = np.asarray(columns[8], dtype=np.int64)
        hops = np.asarray(columns[9], dtype=np.int64)
        payloads: Optional[List[Any]] = list(columns[6])
        payload_count = sum(1 for p in payloads if p is not None)
        if payload_count == 0:
            payloads = None
        return cls(
            src_shard=src_shard,
            deliver_time=deliver,
            seq=seq,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            wire_bytes=wire_bytes,
            hops=hops,
            type_ids=inverse.astype(np.int32),
            type_table=[str(t) for t in table.tolist()],
            payloads=payloads,
            payload_count=payload_count,
        )

    def to_records(self) -> List[tuple]:
        """The frame back as :data:`ExchangeRecord` tuples (tests/debug)."""
        payloads = self.payloads or [None] * self.count
        return [
            (
                deliver, self.src_shard, seq, src, dst,
                self.type_table[type_id], payload, size, wire, hops,
            )
            for deliver, seq, src, dst, type_id, payload, size, wire, hops
            in zip(
                self.deliver_time.tolist(), self.seq.tolist(),
                self.src.tolist(), self.dst.tolist(),
                self.type_ids.tolist(), payloads,
                self.size_bytes.tolist(), self.wire_bytes.tolist(),
                self.hops.tolist(),
            )
        ]

    # -- wire format --------------------------------------------------------

    def encode(self, barrier: int) -> bytes:
        """Serialize to one blob: header, numeric columns, type table,
        payload sidecar.  ``barrier`` tags the frame with its window index
        (the LSN of the exchange log)."""
        payload_blob = b""
        flags = 0
        if self.payloads is not None:
            flags |= _FLAG_PAYLOADS
            payload_blob = pickle.dumps(
                self.payloads, protocol=pickle.HIGHEST_PROTOCOL
            )
        parts = [
            _HEADER.pack(
                _MAGIC, barrier, self.count, self.src_shard, flags,
                len(payload_blob),
            ),
            self.deliver_time.tobytes(),
            self.seq.tobytes(),
            self.src.tobytes(),
            self.dst.tobytes(),
            self.size_bytes.tobytes(),
            self.wire_bytes.tobytes(),
            self.hops.tobytes(),
            self.type_ids.tobytes(),
            _U32.pack(len(self.type_table)),
        ]
        for name in self.type_table:
            raw = name.encode("utf-8")
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
        parts.append(payload_blob)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["ExchangeFrame", int]:
        """Deserialize one frame blob; returns ``(frame, barrier)``.

        Numeric columns come back as ``np.frombuffer`` views over the blob
        (no copy); only the type table and the optional payload sidecar
        allocate.
        """
        magic, barrier, count, src_shard, flags, payload_len = (
            _HEADER.unpack_from(data, 0)
        )
        if magic != _MAGIC:
            raise SimulationError(
                f"exchange frame magic mismatch (0x{magic:08x})"
            )
        offset = _HEADER.size
        deliver = np.frombuffer(data, np.float64, count, offset)
        offset += count * 8
        ints = []
        for _ in _INT_COLUMNS:
            ints.append(np.frombuffer(data, np.int64, count, offset))
            offset += count * 8
        type_ids = np.frombuffer(data, np.int32, count, offset)
        offset += count * 4
        (n_types,) = _U32.unpack_from(data, offset)
        offset += 4
        table = []
        for _ in range(n_types):
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            table.append(data[offset:offset + length].decode("utf-8"))
            offset += length
        payloads = None
        payload_count = 0
        if flags & _FLAG_PAYLOADS:
            payloads = pickle.loads(data[offset:offset + payload_len])
            payload_count = sum(1 for p in payloads if p is not None)
        seq, src, dst, size_bytes, wire_bytes, hops = ints
        frame = cls(
            src_shard=src_shard,
            deliver_time=deliver,
            seq=seq,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            wire_bytes=wire_bytes,
            hops=hops,
            type_ids=type_ids,
            type_table=table,
            payloads=payloads,
            payload_count=payload_count,
        )
        return frame, barrier


def merge_frames(
    frames: Sequence[ExchangeFrame],
) -> Tuple[List[float], Tuple[Sequence[Any], ...]]:
    """Merge one barrier's inbound frames into sorted injection columns.

    Returns ``(times, columns)`` ready for
    ``Simulator.schedule_block(times, network._deliver_lazy, columns)``:
    the union of all frames ordered by ``(deliver_time, src_shard, seq)``
    with one ``np.lexsort`` — the exact total order the tuple path's
    ``_sort_inbox`` produced — and columns
    ``(src, dst, msg_type, payload, size_bytes, wire_bytes, hops)`` as
    plain Python lists (``.tolist()`` bulk-converts, so downstream stats
    arithmetic sees native ints/floats, never numpy scalars).
    """
    if len(frames) == 1:
        frame = frames[0]
        deliver = frame.deliver_time
        # One sender: src_shard is constant, seq strictly increases in
        # record order — a stable sort on time alone is the full key.
        order = np.lexsort((frame.seq, deliver))
        type_table = frame.type_table
        type_ids = frame.type_ids
        src, dst = frame.src, frame.dst
        size_bytes, wire_bytes, hops = (
            frame.size_bytes, frame.wire_bytes, frame.hops,
        )
        payloads = frame.payloads
    else:
        deliver = np.concatenate([f.deliver_time for f in frames])
        seq = np.concatenate([f.seq for f in frames])
        src_shard = np.concatenate(
            [np.full(f.count, f.src_shard, dtype=np.int64) for f in frames]
        )
        order = np.lexsort((seq, src_shard, deliver))
        type_table = []
        type_index: dict = {}
        remapped = []
        for frame in frames:
            remap = np.empty(len(frame.type_table), dtype=np.int32)
            for local_id, name in enumerate(frame.type_table):
                global_id = type_index.get(name)
                if global_id is None:
                    global_id = len(type_table)
                    type_index[name] = global_id
                    type_table.append(name)
                remap[local_id] = global_id
            remapped.append(remap[frame.type_ids])
        type_ids = np.concatenate(remapped)
        src = np.concatenate([f.src for f in frames])
        dst = np.concatenate([f.dst for f in frames])
        size_bytes = np.concatenate([f.size_bytes for f in frames])
        wire_bytes = np.concatenate([f.wire_bytes for f in frames])
        hops = np.concatenate([f.hops for f in frames])
        if any(f.payloads is not None for f in frames):
            payloads = []
            for frame in frames:
                payloads.extend(frame.payloads or [None] * frame.count)
        else:
            payloads = None

    times = deliver[order].tolist()
    msg_types = [type_table[i] for i in type_ids[order].tolist()]
    if payloads is None:
        payload_column: Sequence[Any] = [None] * len(times)
    else:
        payload_column = [payloads[i] for i in order.tolist()]
    columns = (
        src[order].tolist(),
        dst[order].tolist(),
        msg_types,
        payload_column,
        size_bytes[order].tolist(),
        wire_bytes[order].tolist(),
        hops[order].tolist(),
    )
    return times, columns


def encode_outbound_blobs(
    outbound: Sequence[Sequence[tuple]],
    barrier: int,
    exchange: Optional[MutableMapping[str, int]] = None,
) -> Tuple[List[Tuple[int, bytes]], float]:
    """Columnarize and encode one window's outboxes for a byte transport.

    Returns ``(blobs, min_outbound)``: the non-empty outboxes as
    ``(dst_shard, encoded_frame)`` pairs tagged with ``barrier``, plus the
    minimum outbound delivery time (``inf`` when the window sent nothing).
    This is the frame path of the mp channel's ``_ship`` without the ring
    placement — the tcp executor sends these blobs inside sync messages,
    and the same bytes are what the WAL logs.  ``exchange`` (a Counter) is
    credited identically to the mp path so stats merge byte-equal.
    """
    blobs: List[Tuple[int, bytes]] = []
    min_outbound = float("inf")
    for dst_shard, box in enumerate(outbound):
        if not box:
            continue
        frame = ExchangeFrame.from_records(box)
        min_outbound = min(min_outbound, frame.min_time)
        blob = frame.encode(barrier)
        if exchange is not None:
            exchange["frames"] += 1
            exchange["records"] += frame.count
            exchange["encoded_bytes"] += len(blob)
            exchange["pickled_records"] += frame.payload_count
        blobs.append((dst_shard, blob))
    return blobs, min_outbound


# ---------------------------------------------------------------------------
# Shared-memory SPSC rings.
# ---------------------------------------------------------------------------

#: per-ring control block: write cursor (u64) then read cursor (u64)
_CURSORS = struct.Struct("<QQ")
_CTRL = _CURSORS.size
_LEN = struct.Struct("<I")


class ShardRing:
    """Single-producer / single-consumer byte ring over a buffer slice.

    Cursors are absolute (monotone u64 byte offsets; data position is
    ``cursor % capacity``), stored in the slice's first 16 bytes.  The
    writer publishes a frame by copying ``[u32 length][payload]`` into the
    data region *first* and advancing the write cursor *last*; the reader
    mirrors this, so each side only ever trusts fully published state.
    Frames wrap byte-wise around the region end.  Non-blocking by design:
    :meth:`try_push` refuses (returns False) rather than wait for space —
    inside the window-barrier handshake a blocked writer would deadlock
    the whole fleet — and :meth:`try_pop` returns None when no complete
    frame is published.
    """

    def __init__(self, buffer: memoryview) -> None:
        self._buf = buffer
        self.capacity = len(buffer) - _CTRL

    # -- cursors ------------------------------------------------------------

    def _cursors(self) -> Tuple[int, int]:
        return _CURSORS.unpack_from(self._buf, 0)

    def _publish_write(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, 0, value)

    def _publish_read(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, 8, value)

    # -- byte copies with wraparound ----------------------------------------

    def _copy_in(self, cursor: int, data: bytes) -> None:
        position = cursor % self.capacity
        first = min(len(data), self.capacity - position)
        start = _CTRL + position
        self._buf[start:start + first] = data[:first]
        if first < len(data):
            self._buf[_CTRL:_CTRL + len(data) - first] = data[first:]

    def _copy_out(self, cursor: int, length: int) -> bytes:
        position = cursor % self.capacity
        first = min(length, self.capacity - position)
        start = _CTRL + position
        chunk = bytes(self._buf[start:start + first])
        if first < length:
            chunk += bytes(self._buf[_CTRL:_CTRL + length - first])
        return chunk

    # -- SPSC protocol ------------------------------------------------------

    def try_push(self, payload: bytes) -> bool:
        """Publish one frame; False when it does not (currently) fit."""
        needed = _LEN.size + len(payload)
        write, read = self._cursors()
        if needed > self.capacity - (write - read):
            return False
        self._copy_in(write, _LEN.pack(len(payload)))
        self._copy_in(write + _LEN.size, payload)
        self._publish_write(write + needed)
        return True

    def try_pop(self) -> Optional[bytes]:
        """Consume the next published frame, or None when the ring is dry."""
        write, read = self._cursors()
        if write - read < _LEN.size:
            return None
        (length,) = _LEN.unpack(self._copy_out(read, _LEN.size))
        payload = self._copy_out(read + _LEN.size, length)
        self._publish_read(read + _LEN.size + length)
        return payload

    def pop_wait(self, timeout: float, context: str = "") -> bytes:
        """Poll :meth:`try_pop` until a frame lands; raise after `timeout`.

        The barrier protocol guarantees the expected frame was pushed (or
        queued) before the window decision arrived, so under healthy
        workers this returns almost immediately; the deadline exists so a
        sender that died mid-window surfaces as a loud error, never a
        hang.
        """
        deadline = time.monotonic() + timeout
        spins = 0
        while True:
            data = self.try_pop()
            if data is not None:
                return data
            spins += 1
            if spins % 256 == 0:
                if time.monotonic() > deadline:
                    raise SimulationError(
                        f"shard exchange ring starved for {timeout:.0f}s "
                        f"({context}); a sender likely died mid-window"
                    )
                time.sleep(0.0001)

    def release(self) -> None:
        """Drop the memoryview reference (required before shm close)."""
        self._buf.release()


class RingExchange:
    """The K×K grid of :class:`ShardRing`s in one shared-memory segment.

    Created by the mp coordinator *before* forking — workers inherit the
    mapping through fork and attach :class:`ShardRing` views lazily, so no
    names, fds, or handshakes cross the process boundary.  Slot ``(i, j)``
    is the ring written by shard ``i`` and read by shard ``j``; the
    diagonal is unused (intra-shard traffic never leaves its heap).
    """

    def __init__(self, num_shards: int, capacity: Optional[int] = None) -> None:
        from multiprocessing import shared_memory

        self.num_shards = num_shards
        self.capacity = (
            capacity if capacity is not None
            else ring_capacity_bytes(num_shards)
        )
        self._slot = self.capacity + _CTRL
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(1, num_shards * num_shards * self._slot)
        )
        self._rings: dict = {}

    def ring(self, src_shard: int, dst_shard: int) -> ShardRing:
        key = (src_shard, dst_shard)
        ring = self._rings.get(key)
        if ring is None:
            start = (src_shard * self.num_shards + dst_shard) * self._slot
            ring = ShardRing(self.shm.buf[start:start + self._slot])
            self._rings[key] = ring
        return ring

    def destroy(self) -> None:
        """Release views, close the mapping, and unlink the segment.

        Parent-side teardown; forked workers exit via ``os._exit`` and
        never unlink (the parent owns the segment's lifetime).
        """
        for ring in self._rings.values():
            ring.release()
        self._rings.clear()
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double teardown
            pass
