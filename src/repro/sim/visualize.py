"""Network visualization helpers (P2PDMT "Visualize network / statistics").

Exports overlays as :mod:`networkx` graphs for structural analysis, plus
ASCII summaries usable from terminals and logs.  The tag-cloud experiment
also routes its co-occurrence graphs through networkx.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from repro.overlay.base import Overlay


def overlay_to_graph(overlay: Overlay) -> nx.Graph:
    """Undirected graph of the overlay's current links."""
    graph = nx.Graph()
    members = overlay.members()
    graph.add_nodes_from(members)
    for address in members:
        for neighbor in overlay.neighbors(address):
            graph.add_edge(address, neighbor)
    return graph


def degree_statistics(overlay: Overlay) -> Dict[str, float]:
    """Degree distribution summary of the overlay graph."""
    graph = overlay_to_graph(overlay)
    if graph.number_of_nodes() == 0:
        return {"nodes": 0, "edges": 0, "min_degree": 0.0,
                "mean_degree": 0.0, "max_degree": 0.0}
    degrees = [d for _, d in graph.degree()]
    return {
        "nodes": float(graph.number_of_nodes()),
        "edges": float(graph.number_of_edges()),
        "min_degree": float(min(degrees)),
        "mean_degree": float(sum(degrees) / len(degrees)),
        "max_degree": float(max(degrees)),
    }


def connectivity_report(overlay: Overlay) -> Dict[str, float]:
    """Connectivity facts that matter for broadcast coverage."""
    graph = overlay_to_graph(overlay)
    if graph.number_of_nodes() == 0:
        return {"connected": 0.0, "components": 0.0, "largest_component": 0.0}
    components = list(nx.connected_components(graph))
    largest = max((len(c) for c in components), default=0)
    return {
        "connected": 1.0 if len(components) == 1 else 0.0,
        "components": float(len(components)),
        "largest_component": float(largest),
    }


def ascii_summary(overlay: Overlay) -> str:
    """Terminal-friendly one-screen overlay summary."""
    stats = degree_statistics(overlay)
    connectivity = connectivity_report(overlay)
    lines = [
        f"overlay: {overlay.name}",
        f"nodes: {int(stats['nodes'])}  edges: {int(stats['edges'])}",
        (
            f"degree: min={stats['min_degree']:.0f} "
            f"mean={stats['mean_degree']:.1f} max={stats['max_degree']:.0f}"
        ),
        (
            f"components: {int(connectivity['components'])} "
            f"(largest {int(connectivity['largest_component'])})"
        ),
    ]
    return "\n".join(lines)


def adjacency_table(overlay: Overlay, limit: int = 20) -> str:
    """First ``limit`` adjacency rows, for debugging small overlays."""
    rows: List[str] = []
    for address in sorted(overlay.members())[:limit]:
        neighbors = ", ".join(str(n) for n in overlay.neighbors(address)[:8])
        rows.append(f"{address:>6} -> {neighbors}")
    return "\n".join(rows)
