"""Training-data distribution across peers (P2PDMT "Distribute data").

The demo varies "the size and class distributions" of peer data; this module
implements both axes:

- **size distribution** — how many documents each peer holds: ``uniform``
  (balanced) or ``zipf`` (a few data-rich peers, many data-poor ones);
- **class distribution** — which *tags* a peer's documents concentrate on:
  ``iid`` (random assignment) or ``dirichlet`` (peers have skewed tag
  preferences; smaller alpha = more skew).

The distributor *re-assigns ownership* of a corpus's documents, producing a
new corpus whose owners are peer indices 0..N-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.corpus import Corpus, Document
from repro.errors import DataError


@dataclass
class ShardSpec:
    """How to shard a corpus across ``num_peers`` peers."""

    num_peers: int
    size_distribution: str = "uniform"  # "uniform" | "zipf"
    class_distribution: str = "iid"  # "iid" | "dirichlet"
    zipf_exponent: float = 1.0
    dirichlet_alpha: float = 1.0
    seed: int = 0

    def validate(self) -> None:
        if self.num_peers <= 0:
            raise DataError("num_peers must be positive")
        if self.size_distribution not in ("uniform", "zipf"):
            raise DataError(f"unknown size distribution {self.size_distribution!r}")
        if self.class_distribution not in ("iid", "dirichlet"):
            raise DataError(
                f"unknown class distribution {self.class_distribution!r}"
            )
        if self.dirichlet_alpha <= 0:
            raise DataError("dirichlet_alpha must be positive")
        if self.zipf_exponent < 0:
            raise DataError("zipf_exponent must be non-negative")


class DataDistributor:
    """Re-shards a corpus across simulated peers according to a spec."""

    def __init__(self, spec: ShardSpec) -> None:
        spec.validate()
        self.spec = spec

    def distribute(self, corpus: Corpus) -> Corpus:
        """Return a corpus whose owners are peers 0..num_peers-1.

        Every peer receives at least one document when possible.
        """
        if len(corpus) == 0:
            raise DataError("cannot distribute an empty corpus")
        if len(corpus) < self.spec.num_peers:
            raise DataError(
                f"{len(corpus)} documents cannot cover {self.spec.num_peers} peers"
            )
        rng = np.random.default_rng(self.spec.seed)
        capacities = self._peer_capacities(len(corpus), rng)
        assignment = self._assign(corpus, capacities, rng)
        return Corpus(
            [
                Document(
                    doc_id=document.doc_id,
                    text=document.text,
                    tags=document.tags,
                    owner=assignment[document.doc_id],
                )
                for document in corpus
            ]
        )

    # ------------------------------------------------------------------

    def _peer_capacities(
        self, num_documents: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Target shard sizes summing to ``num_documents``, each >= 1."""
        n = self.spec.num_peers
        if self.spec.size_distribution == "uniform":
            weights = np.ones(n)
        else:
            ranks = np.arange(1, n + 1, dtype=np.float64)
            weights = ranks ** (-self.spec.zipf_exponent)
            weights = rng.permutation(weights)  # skew not tied to peer id order
        weights = weights / weights.sum()
        capacities = np.maximum(1, np.floor(weights * num_documents).astype(int))
        # Fix rounding drift while respecting the >=1 floor.
        while capacities.sum() > num_documents:
            candidates = np.where(capacities > 1)[0]
            capacities[candidates[int(rng.integers(len(candidates)))]] -= 1
        while capacities.sum() < num_documents:
            capacities[int(rng.integers(n))] += 1
        return capacities

    def _assign(
        self,
        corpus: Corpus,
        capacities: np.ndarray,
        rng: np.random.Generator,
    ) -> Dict[int, int]:
        """Map doc_id -> peer index, respecting capacities and class skew."""
        documents = corpus.documents
        order = rng.permutation(len(documents))
        remaining = capacities.copy()
        assignment: Dict[int, int] = {}

        if self.spec.class_distribution == "iid":
            peer_iter: List[int] = []
            for peer, capacity in enumerate(remaining):
                peer_iter.extend([peer] * int(capacity))
            peer_sequence = rng.permutation(np.array(peer_iter))
            for position, doc_index in enumerate(order):
                assignment[documents[doc_index].doc_id] = int(
                    peer_sequence[position]
                )
            return assignment

        # Dirichlet class skew: each peer draws a preference distribution
        # over tags; each document goes to an available peer proportionally
        # to that peer's preference for the document's tags.
        tags = corpus.tag_universe()
        if not tags:
            raise DataError("dirichlet distribution requires tagged documents")
        tag_index = {tag: i for i, tag in enumerate(tags)}
        alpha = np.full(len(tags), self.spec.dirichlet_alpha)
        preferences = rng.dirichlet(alpha, size=self.spec.num_peers)

        for doc_index in order:
            document = documents[doc_index]
            available = np.where(remaining > 0)[0]
            if len(available) == 0:
                raise DataError("capacity accounting exhausted prematurely")
            if document.tags:
                doc_tag_ids = [tag_index[t] for t in document.tags if t in tag_index]
                scores = preferences[available][:, doc_tag_ids].sum(axis=1) + 1e-12
            else:
                scores = np.ones(len(available))
            probabilities = scores / scores.sum()
            chosen = int(available[rng.choice(len(available), p=probabilities)])
            assignment[document.doc_id] = chosen
            remaining[chosen] -= 1
        return assignment
