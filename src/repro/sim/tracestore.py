"""Queryable trace store: columnar message/stats event ingest + SQL analytics.

The analytical tier beside the operational path (the Polynesia discipline):
a :class:`TraceStore` registers as a *block listener*
(:meth:`~repro.sim.network.PhysicalNetwork.add_block_listener`), so ingest

- never touches the event stream or any simulation RNG — golden
  fingerprints are byte-identical with a store attached, and
- never forces :meth:`~repro.sim.transport.Transport.broadcast` off its
  vectorized path — a 10k-recipient fan-out arrives as ONE callback whose
  constant columns are still scalars.

Records accumulate in SoA column buffers (the
:class:`~repro.sim.exchange.ExchangeFrame` convention: scalars stand for
constant columns until flush broadcasts them with numpy) and flush to
batched ``executemany`` inserts — at every window barrier on the sharded
kernel (:meth:`attach_scenario` registers a barrier hook), or every
``batch_records`` rows otherwise, plus a final flush on :meth:`close`.

Backends: SQLite (stdlib, default) or DuckDB when importable — same
schema, same SQL dialect subset (the canned analytics stick to window
functions and expressions both engines accept).  Per-shard stores written
by sharded runs merge with :func:`merge_stores` (``ATTACH`` + append,
mirroring :meth:`StatsCollector.merge` — type ids are remapped by name, so
shards may intern types in different orders).

Like :class:`~repro.sim.trace.MessageTrace`, the store records send
*attempts* — including attempts from down sources — so its row counts
match the tracer, not the post-liveness stats, under churn.

Schema::

    meta(key TEXT PRIMARY KEY, value TEXT)
    msg_types(type_id INTEGER PRIMARY KEY, name TEXT UNIQUE NOT NULL)
    messages(time DOUBLE, src BIGINT, dst BIGINT, type_id INTEGER,
             size_bytes BIGINT, wire_bytes BIGINT, hops INTEGER,
             shard INTEGER)             -- one row per send attempt
    window_stats(win INTEGER, shard INTEGER, family TEXT, key TEXT,
                 delta BIGINT)          -- per-window StatsCollector deltas
    traffic                              -- view: messages JOIN msg_types
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.envutil import env_int
from repro.errors import ConfigurationError
from repro.sim.codec import TRAFFIC_CLASSES, traffic_class_of
from repro.sim.network import PhysicalNetwork, SendBlock
from repro.sim.stats import StatsCollector

__all__ = [
    "TraceStore",
    "merge_stores",
    "duckdb_available",
    "DEFAULT_BATCH_RECORDS",
]

#: flush threshold for unsharded runs (sharded runs flush at barriers too)
DEFAULT_BATCH_RECORDS = 50_000

Headers = Tuple[str, ...]
Rows = List[tuple]
Report = Tuple[Headers, Rows]


def duckdb_available() -> bool:
    """True when the optional DuckDB backend can be imported."""
    return _duckdb() is not None


def _duckdb():
    try:
        import duckdb  # noqa: F401 — optional, never a hard dependency
    except ImportError:
        return None
    return duckdb


def _resolve_backend(backend: Optional[str]) -> str:
    if backend is None:
        backend = os.environ.get("REPRO_TRACE_BACKEND") or "sqlite"
    if backend == "sqlite":
        return "sqlite"
    if backend == "duckdb":
        if _duckdb() is None:
            raise ConfigurationError(
                "trace store backend 'duckdb' requested but duckdb is not "
                "importable; install it or use the default sqlite backend"
            )
        return "duckdb"
    raise ConfigurationError(
        f"unknown trace store backend {backend!r} (sqlite or duckdb)"
    )


_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS meta ("
    " key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS msg_types ("
    " type_id INTEGER PRIMARY KEY, name TEXT UNIQUE NOT NULL)",
    "CREATE TABLE IF NOT EXISTS messages ("
    " time DOUBLE NOT NULL,"
    " src BIGINT NOT NULL,"
    " dst BIGINT NOT NULL,"
    " type_id INTEGER NOT NULL,"
    " size_bytes BIGINT NOT NULL,"
    " wire_bytes BIGINT NOT NULL,"
    " hops INTEGER NOT NULL,"
    " shard INTEGER NOT NULL)",
    "CREATE TABLE IF NOT EXISTS window_stats ("
    " win INTEGER NOT NULL,"
    " shard INTEGER NOT NULL,"
    " family TEXT NOT NULL,"
    " key TEXT NOT NULL,"
    " delta BIGINT NOT NULL)",
    "CREATE VIEW IF NOT EXISTS traffic AS"
    " SELECT m.time, m.src, m.dst, t.name AS msg_type, m.size_bytes,"
    " m.wire_bytes, m.hops, m.shard"
    " FROM messages m JOIN msg_types t ON t.type_id = m.type_id",
)

_INSERT_MESSAGES = (
    "INSERT INTO messages"
    " (time, src, dst, type_id, size_bytes, wire_bytes, hops, shard)"
    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
)

_INSERT_STATS = (
    "INSERT INTO window_stats (win, shard, family, key, delta)"
    " VALUES (?, ?, ?, ?, ?)"
)


def _scalar_column(value, count: int, dtype) -> np.ndarray:
    """Broadcast a SendBlock column (scalar or sequence) to a dense array."""
    if isinstance(value, (int, float, np.integer, np.floating)):
        return np.full(count, value, dtype=dtype)
    return np.asarray(value, dtype=dtype)


class TraceStore:
    """Streaming columnar store for message sends and per-window stats.

    Open one per output file; a sharded run opens one per shard (name the
    files by :attr:`Scenario.shard_id`) and merges them afterwards with
    :func:`merge_stores`.  Reopening an existing store file *appends* —
    delete the file first for a fresh run.
    """

    def __init__(
        self,
        path: Union[str, Path],
        backend: Optional[str] = None,
        batch_records: Optional[int] = None,
        shard: int = 0,
    ) -> None:
        self.path = str(path)
        self.backend = _resolve_backend(backend)
        if batch_records is None:
            batch_records = env_int(
                "REPRO_TRACE_BATCH", DEFAULT_BATCH_RECORDS, minimum=1
            )
        self.batch_records = batch_records
        self.shard = shard
        self._blocks: List[tuple] = []
        self._pending = 0
        self._rows_written = 0
        self._network: Optional[PhysicalNetwork] = None
        self._scenario = None
        self._stats_cursor: Optional[dict] = None
        self._stats_window = 0
        self._closed = False
        if self.backend == "duckdb":
            self._conn = _duckdb().connect(self.path)
        else:
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            # Autocommit keeps ATTACH (merge) legal at any time; ingest cost
            # is one implicit transaction per executemany batch.  The store
            # is derived data — a crash loses at most the current batch, so
            # fsync-per-commit buys nothing.
            self._conn = sqlite3.connect(self.path, isolation_level=None)
            self._conn.execute("PRAGMA synchronous=OFF")
            self._conn.execute("PRAGMA journal_mode=MEMORY")
        for statement in _SCHEMA:
            self._conn.execute(statement)
        self._type_ids: Dict[str, int] = {
            name: type_id
            for type_id, name in self._conn.execute(
                "SELECT type_id, name FROM msg_types"
            ).fetchall()
        }
        self._set_meta("backend", self.backend)
        self._set_meta("schema_version", "1")

    # -- lifecycle -----------------------------------------------------------

    def attach(self, network: PhysicalNetwork) -> "TraceStore":
        """Start ingesting ``network``'s send attempts (block listener)."""
        if self._network is not None:
            raise RuntimeError("trace store is already attached")
        self._network = network
        network.add_block_listener(self._on_block)
        return self

    def detach(self) -> None:
        if self._network is not None:
            self._network.remove_block_listener(self._on_block)
        self._network = None
        self._scenario = None

    def attach_scenario(self, scenario) -> "TraceStore":
        """Attach to a scenario's network with its shard identity.

        On the sharded kernel this additionally registers a window-barrier
        hook that flushes the buffer and records the window's
        :class:`StatsCollector` delta, so per-shard stores gain a
        ``window_stats`` timeline for free.  On the single-heap kernel
        (:meth:`Scenario.add_barrier_hook` returns False) ingest flushes by
        record count; call :meth:`record_stats` manually for stats rows.
        """
        self.shard = scenario.shard_id
        self.attach(scenario.network)
        if scenario.add_barrier_hook(self._on_barrier):
            self._scenario = scenario
        return self

    def _on_barrier(self, window: int) -> None:
        self.flush()
        if self._scenario is not None:
            self.record_stats(self._scenario.stats, window=window)

    def close(self) -> None:
        """Flush, build query indexes, and release the connection."""
        if self._closed:
            return
        self.detach()
        self.flush()
        for statement in (
            "CREATE INDEX IF NOT EXISTS idx_messages_type"
            " ON messages(type_id)",
            "CREATE INDEX IF NOT EXISTS idx_messages_src ON messages(src)",
        ):
            self._conn.execute(statement)
        self._conn.close()
        self._closed = True

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingest --------------------------------------------------------------

    def _on_block(self, block: SendBlock) -> None:
        # Keep the listener O(1) amortized: stash the raw SoA columns
        # (scalars stay scalars) and defer all expansion to flush().
        self._blocks.append(
            (block.time, block.count, block.src, block.dst, block.msg_type,
             block.size_bytes, block.wire_bytes, block.hops)
        )
        self._pending += block.count
        if self._pending >= self.batch_records:
            self.flush()

    def _type_id(self, name: str) -> int:
        type_id = self._type_ids.get(name)
        if type_id is None:
            type_id = len(self._type_ids) + 1
            self._conn.execute(
                "INSERT INTO msg_types (type_id, name) VALUES (?, ?)",
                (type_id, name),
            )
            self._type_ids[name] = type_id
        return type_id

    def flush(self) -> int:
        """Write buffered blocks; returns the number of rows inserted."""
        if not self._blocks:
            return 0
        blocks, self._blocks = self._blocks, []
        count = self._pending
        self._pending = 0
        chunks: List[List[np.ndarray]] = [[] for _ in range(7)]
        for time, n, src, dst, msg_type, size_bytes, wire_bytes, hops \
                in blocks:
            if isinstance(msg_type, str):
                type_col = np.full(n, self._type_id(msg_type),
                                   dtype=np.int64)
            else:
                type_col = np.asarray(
                    [self._type_id(name) for name in msg_type],
                    dtype=np.int64,
                )
            for index, column in enumerate((
                np.full(n, time, dtype=np.float64),
                _scalar_column(src, n, np.int64),
                _scalar_column(dst, n, np.int64),
                type_col,
                _scalar_column(size_bytes, n, np.int64),
                _scalar_column(wire_bytes, n, np.int64),
                _scalar_column(hops, n, np.int64),
            )):
                chunks[index].append(column)
        columns = [np.concatenate(chunk).tolist() for chunk in chunks]
        shard = self.shard
        self._conn.executemany(
            _INSERT_MESSAGES,
            [row + (shard,) for row in zip(*columns)],
        )
        self._rows_written += count
        return count

    @property
    def rows_written(self) -> int:
        return self._rows_written

    def record_stats(
        self, stats: StatsCollector, window: Optional[int] = None
    ) -> int:
        """Append ``stats``'s delta since the last call as window rows.

        Deltas compose like :meth:`StatsCollector.apply_delta`: replaying
        every window's rows onto a fresh collector reproduces the source
        fingerprint.  ``window`` defaults to an auto-incrementing index.
        """
        if self._stats_cursor is None:
            self._stats_cursor = StatsCollector().delta_snapshot()
        delta = stats.delta_since(self._stats_cursor)
        self._stats_cursor = stats.delta_snapshot()
        if window is None:
            window = self._stats_window
        self._stats_window = window + 1
        rows = [
            (window, self.shard, family, str(key), int(value))
            for family, changed in delta.items()
            if isinstance(changed, dict)  # skip the "compressed" marker
            for key, value in changed.items()
        ]
        if rows:
            self._conn.executemany(_INSERT_STATS, rows)
        return len(rows)

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute("DELETE FROM meta WHERE key = ?", (key,))
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?)", (key, value)
        )

    # -- queries -------------------------------------------------------------

    def sql(self, query: str, params: Sequence = ()) -> Report:
        """Run ``query`` (flushing first) and return (headers, rows)."""
        self.flush()
        cursor = self._conn.execute(query, tuple(params))
        headers = tuple(
            column[0] for column in (cursor.description or ())
        )
        return headers, cursor.fetchall()

    def summary(self) -> Report:
        """One-row store overview."""
        return self.sql(
            "SELECT COUNT(*) AS messages,"
            " COUNT(DISTINCT src) AS senders,"
            " COUNT(DISTINCT dst) AS receivers,"
            " COUNT(DISTINCT type_id) AS types,"
            " COALESCE(SUM(size_bytes), 0) AS bytes,"
            " COALESCE(SUM(wire_bytes), 0) AS wire_bytes,"
            " COALESCE(MIN(time), 0.0) AS t_min,"
            " COALESCE(MAX(time), 0.0) AS t_max,"
            " COUNT(DISTINCT shard) AS shards"
            " FROM messages"
        )

    def report_traffic(self) -> Report:
        """Per-message-type traffic totals and raw-vs-wire ratios."""
        return self.sql(
            "SELECT t.name AS msg_type,"
            " COUNT(*) AS msgs,"
            " SUM(m.size_bytes) AS bytes,"
            " SUM(m.wire_bytes) AS wire_bytes,"
            " SUM(m.size_bytes *"
            "     (CASE WHEN m.hops > 1 THEN m.hops ELSE 1 END))"
            "   AS total_bytes,"
            " ROUND(SUM(m.wire_bytes) * 1.0"
            "       / NULLIF(SUM(m.size_bytes), 0), 4) AS wire_ratio"
            " FROM messages m JOIN msg_types t ON t.type_id = m.type_id"
            " GROUP BY t.name ORDER BY bytes DESC, t.name"
        )

    def report_peers(self) -> Report:
        """Per-peer sent-traffic percentiles (p50 / p90 / p99 / max).

        The heavy lifting is one window-function scan — ``CUME_DIST`` over
        per-peer byte totals — so the answer is the same whether the store
        holds 10k or 10^9 rows; Python only picks the landmark rows.
        """
        headers, rows = self.sql(
            "WITH per_peer AS ("
            " SELECT src AS peer, COUNT(*) AS msgs,"
            " SUM(size_bytes) AS bytes, SUM(wire_bytes) AS wire_bytes"
            " FROM messages GROUP BY src)"
            " SELECT peer, msgs, bytes, wire_bytes,"
            " CUME_DIST() OVER (ORDER BY bytes, peer) AS pct"
            " FROM per_peer ORDER BY bytes, peer"
        )
        out_headers = ("percentile", "peer", "msgs", "bytes", "wire_bytes")
        if not rows:
            return out_headers, []
        picked: Rows = []
        for label, target in (
            ("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("max", 1.00),
        ):
            row = next(r for r in rows if r[4] >= target - 1e-12)
            if label == "max":
                row = rows[-1]
            picked.append((label,) + tuple(row[:4]))
        return out_headers, picked

    def report_routes(self, bucket: float = 1.0) -> Report:
        """Route-length (hop-count) distribution over virtual time.

        Rows are (bucket start, hops, msgs, cumulative msgs at that hop
        count) — the cumulative column is a per-hops running ``SUM() OVER``
        so multi-hop growth is visible window by window.
        """
        if bucket <= 0:
            raise ConfigurationError("bucket must be positive")
        return self.sql(
            "WITH buckets AS ("
            " SELECT CAST(time / ? AS INTEGER) AS bucket, hops,"
            " COUNT(*) AS msgs, SUM(size_bytes) AS bytes"
            " FROM messages GROUP BY 1, 2)"
            " SELECT bucket * ? AS t_start, hops, msgs, bytes,"
            " SUM(msgs) OVER (PARTITION BY hops ORDER BY bucket)"
            "   AS msgs_cum"
            " FROM buckets ORDER BY bucket, hops",
            (bucket, bucket),
        )

    def report_churn(self) -> Report:
        """Per-window churn-phase breakdown from the stats deltas.

        Requires ``window_stats`` rows (sharded runs record them at every
        barrier; unsharded callers use :meth:`record_stats`).  Phases are
        labelled from the window's own churn counters; the cumulative churn
        column is a running ``SUM() OVER`` the window timeline.
        """
        return self.sql(
            "WITH per_window AS ("
            " SELECT win,"
            " SUM(CASE WHEN family = 'counters' AND key = 'churn_leaves'"
            "     THEN delta ELSE 0 END) AS leaves,"
            " SUM(CASE WHEN family = 'counters' AND key = 'churn_joins'"
            "     THEN delta ELSE 0 END) AS joins,"
            " SUM(CASE WHEN family = 'messages_by_type'"
            "     THEN delta ELSE 0 END) AS msgs,"
            " SUM(CASE WHEN family = 'bytes_by_type'"
            "     THEN delta ELSE 0 END) AS bytes"
            " FROM window_stats GROUP BY win)"
            " SELECT win,"
            " CASE WHEN leaves + joins > 0 THEN 'churn' ELSE 'steady' END"
            "   AS phase,"
            " leaves, joins, msgs, bytes,"
            " SUM(leaves + joins) OVER (ORDER BY win) AS churn_cum"
            " FROM per_window ORDER BY win"
        )

    def report_codec(self) -> Report:
        """Raw-vs-wire compression ratios folded by declared traffic class.

        SQL aggregates per message type; the type → class mapping lives in
        :mod:`repro.sim.codec` (Python), so unclassified types land in
        ``(unclassified)``.
        """
        _, per_type = self.sql(
            "SELECT t.name, COUNT(*), SUM(m.size_bytes), SUM(m.wire_bytes)"
            " FROM messages m JOIN msg_types t ON t.type_id = m.type_id"
            " GROUP BY t.name"
        )
        totals: Dict[str, List[int]] = {}
        for name, msgs, size_bytes, wire_bytes in per_type:
            traffic_class = traffic_class_of(name) or "(unclassified)"
            entry = totals.setdefault(traffic_class, [0, 0, 0])
            entry[0] += msgs
            entry[1] += size_bytes
            entry[2] += wire_bytes
        ordered = [c for c in TRAFFIC_CLASSES if c in totals]
        ordered += sorted(set(totals) - set(TRAFFIC_CLASSES))
        rows = [
            (
                traffic_class,
                totals[traffic_class][0],
                totals[traffic_class][1],
                totals[traffic_class][2],
                round(
                    totals[traffic_class][2]
                    / max(1, totals[traffic_class][1]),
                    4,
                ),
            )
            for traffic_class in ordered
        ]
        return ("class", "msgs", "bytes", "wire_bytes", "wire_ratio"), rows


def _quote_path(path: str) -> str:
    return "'" + path.replace("'", "''") + "'"


def merge_stores(
    target: Union[str, Path],
    sources: Sequence[Union[str, Path]],
    backend: Optional[str] = None,
) -> TraceStore:
    """Merge per-shard store files into ``target`` (returned open).

    ``ATTACH`` + append, the SQL analogue of :meth:`StatsCollector.merge`:
    message rows are copied with type ids remapped through the target's
    ``msg_types`` interning (shards may have interned types in different
    orders), and ``window_stats`` rows are copied verbatim — their shard
    column already disambiguates.  The merged row multiset equals the
    unsharded store's because ShardNetwork gates block observation on
    source ownership.
    """
    store = TraceStore(target, backend=backend)
    conn = store._conn
    for source in sources:
        conn.execute(f"ATTACH {_quote_path(str(source))} AS src")
        remap = [
            (type_id, store._type_id(name))
            for type_id, name in conn.execute(
                "SELECT type_id, name FROM src.msg_types"
            ).fetchall()
        ]
        conn.execute(
            "CREATE TEMPORARY TABLE _remap (old INTEGER, new INTEGER)"
        )
        if remap:
            conn.executemany(
                "INSERT INTO _remap (old, new) VALUES (?, ?)", remap
            )
        conn.execute(
            "INSERT INTO messages"
            " SELECT m.time, m.src, m.dst, r.new, m.size_bytes,"
            " m.wire_bytes, m.hops, m.shard"
            " FROM src.messages m JOIN _remap r ON r.old = m.type_id"
        )
        conn.execute(
            "INSERT INTO window_stats SELECT * FROM src.window_stats"
        )
        conn.execute("DROP TABLE _remap")
        conn.execute("DETACH src")
    return store
