"""Wire-format codec models: what traffic costs *after* encoding.

The paper's communication tables treat every byte as raw payload, but real
deployments encode different traffic very differently — a gzipped model
bundle, a delta-encoded sparse vector, and a tiny control message have
wildly different wire footprints.  This module supplies deterministic
*size-model* codecs: pure integer functions from a message's raw
(estimated-serialized) size to its wire size.  No actual compression
happens — like :func:`repro.sim.messages.payload_size`, these are honest
accounting models, chosen so communication experiments can sweep codec
choices without perturbing event timing.

Three layers:

- :class:`Codec` — one size model (``wire_size_of(raw) -> int``) with the
  hard invariant ``0 <= wire <= raw`` for every registered codec;
- :class:`CodecTable` — per-``msg_type`` dispatch: exact message-type
  entries, then the traffic-class registry (protocols declare what kind of
  payload each of their message types carries via
  :func:`register_traffic_class`), then a default codec;
- the registry — :func:`make_codec_table` builds a table by name, exactly
  as :func:`repro.overlay.make_overlay` builds overlays.  ``identity`` is
  the default everywhere and is accounting-invisible: wire == raw, so every
  pre-codec digest is preserved byte-for-byte.

Determinism: all arithmetic is exact integer math (per-mille ratios with
ceiling division), so wire-byte totals are bit-identical across platforms
and runs — the golden fingerprint suite covers them the moment a
non-identity codec is active.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError


def _ceil_permille(raw: int, permille: int) -> int:
    """``ceil(raw * permille / 1000)`` in exact integer arithmetic."""
    return (raw * permille + 999) // 1000


class Codec:
    """One wire-format size model.

    ``wire_size_of`` maps a raw byte count to the modelled post-encoding
    byte count.  Subclasses implement :meth:`_encode_size`; the base class
    enforces the invariants every codec must satisfy — wire sizes are
    clamped into ``[0, raw]`` (an encoder that would inflate a message
    stores it raw instead, exactly how real formats handle incompressible
    input) and zero bytes stay zero.
    """

    name: str = "codec"

    def wire_size_of(self, raw_bytes: int) -> int:
        if raw_bytes <= 0:
            return 0
        return max(0, min(raw_bytes, self._encode_size(raw_bytes)))

    def _encode_size(self, raw_bytes: int) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class IdentityCodec(Codec):
    """No encoding: wire == raw.  The accounting-invisible default."""

    name = "identity"

    def _encode_size(self, raw_bytes: int) -> int:
        return raw_bytes


class GzipModelCodec(Codec):
    """DEFLATE-style general-purpose compression model.

    A fixed header/trailer overhead plus a constant compression ratio —
    the shape gzip shows on serialized model bundles (repetitive struct
    framing, quantized floats).  Small messages hit the ``min(raw, ...)``
    clamp and ride uncompressed, as gzip's stored-block fallback does.
    """

    name = "gzip-model"

    def __init__(self, permille: int = 420, header_bytes: int = 18) -> None:
        self.permille = permille
        self.header_bytes = header_bytes

    def _encode_size(self, raw_bytes: int) -> int:
        return self.header_bytes + _ceil_permille(raw_bytes, self.permille)


class DeltaSparseCodec(Codec):
    """Delta + varint encoding model for sorted sparse structures.

    Tag vectors and sparse feature maps store sorted integer ids whose
    gaps varint-encode far below fixed-width ids; values keep most of
    their width.  Modelled as a small frame plus a constant ratio.
    """

    name = "delta-sparse"

    def __init__(self, permille: int = 550, header_bytes: int = 8) -> None:
        self.permille = permille
        self.header_bytes = header_bytes

    def _encode_size(self, raw_bytes: int) -> int:
        return self.header_bytes + _ceil_permille(raw_bytes, self.permille)


class DictRatioCodec(Codec):
    """Shared-dictionary compression model (zstd-with-dictionary shape).

    The dictionary preamble is amortized only past a break-even size:
    below ``dictionary_bytes`` messages ride raw; above it the tail
    compresses hard.  This is the piecewise shape dictionary coders show
    on short, schema-repetitive messages (control traffic, count maps).
    """

    name = "dict-ratio"

    def __init__(self, permille: int = 300, dictionary_bytes: int = 64) -> None:
        self.permille = permille
        self.dictionary_bytes = dictionary_bytes

    def _encode_size(self, raw_bytes: int) -> int:
        if raw_bytes <= self.dictionary_bytes:
            return raw_bytes
        tail = raw_bytes - self.dictionary_bytes
        return self.dictionary_bytes + _ceil_permille(tail, self.permille)


# ---------------------------------------------------------------------------
# Traffic-class registry: protocols declare what each message type carries.
# ---------------------------------------------------------------------------

#: msg_type -> traffic class ("model" | "vector" | "counts" | "control").
#: Populated at import time by the protocol modules (zero call-site churn:
#: declaring a class is the only codec-related line a protocol carries).
_TRAFFIC_CLASSES: Dict[str, str] = {}

#: bumped on every registration; tables use it to invalidate memoized
#: resolutions, so a protocol module imported *after* a table already saw
#: one of its message types still takes effect.
_REGISTRY_VERSION = 0

TRAFFIC_CLASSES = ("model", "vector", "counts", "control")


def register_traffic_class(msg_type: str, traffic_class: str) -> None:
    """Declare the payload kind carried by ``msg_type``.

    Composite codec tables (``tuned``) dispatch on the class, so a protocol
    module states *what* its messages carry and the table decides *how*
    that compresses — the mapping stays swappable per experiment.
    """
    global _REGISTRY_VERSION
    if traffic_class not in TRAFFIC_CLASSES:
        raise ConfigurationError(
            f"unknown traffic class {traffic_class!r}; "
            f"expected one of {TRAFFIC_CLASSES}"
        )
    _TRAFFIC_CLASSES[msg_type] = traffic_class
    _REGISTRY_VERSION += 1


def traffic_class_of(msg_type: str) -> Optional[str]:
    """The declared traffic class of ``msg_type``, or None."""
    return _TRAFFIC_CLASSES.get(msg_type)


# ---------------------------------------------------------------------------
# Per-message-type dispatch.
# ---------------------------------------------------------------------------


class CodecTable:
    """Per-``msg_type`` codec dispatch with an overridable default.

    Resolution order: exact ``msg_type`` entry, then the message type's
    registered traffic class, then the table default.  Resolutions are
    memoized per message type (the per-send hot path is one dict hit) and
    invalidated when the traffic-class registry grows, so a protocol
    module imported after the table's first lookups still takes effect.

    Tables are frozen at construction — the codec mapping is configuration,
    not runtime state; build a new table (or assign ``Transport.codec``) to
    change encodings mid-experiment.
    """

    def __init__(
        self,
        default: Optional[Codec] = None,
        per_type: Optional[Mapping[str, Codec]] = None,
        per_class: Optional[Mapping[str, Codec]] = None,
        name: str = "custom",
    ) -> None:
        self.name = name
        self.default = default or IdentityCodec()
        self._per_type = dict(per_type or {})
        self._per_class = dict(per_class or {})
        self._resolved: Dict[str, Codec] = {}
        self._resolved_version = _REGISTRY_VERSION
        self._is_identity = all(
            isinstance(codec, IdentityCodec)
            for codec in (
                self.default, *self._per_type.values(),
                *self._per_class.values(),
            )
        )

    @property
    def is_identity(self) -> bool:
        """True when every possible resolution is the identity codec —
        the transport skips wire-size stamping entirely in that case.
        Fixed at construction (traffic-class registrations only re-route
        between the table's existing codecs, never add new ones)."""
        return self._is_identity

    def codec_for(self, msg_type: str) -> Codec:
        if self._resolved_version != _REGISTRY_VERSION:
            self._resolved.clear()
            self._resolved_version = _REGISTRY_VERSION
        codec = self._resolved.get(msg_type)
        if codec is None:
            codec = self._per_type.get(msg_type)
            if codec is None:
                traffic_class = traffic_class_of(msg_type)
                codec = (
                    self._per_class.get(traffic_class)
                    if traffic_class is not None
                    else None
                ) or self.default
            self._resolved[msg_type] = codec
        return codec

    def wire_size(self, msg_type: str, raw_bytes: int) -> int:
        """Modelled wire bytes of one ``raw_bytes``-sized message."""
        return self.codec_for(msg_type).wire_size_of(raw_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CodecTable({self.name!r}, default={self.default.name!r})"


# ---------------------------------------------------------------------------
# Factory registry (mirrors repro.overlay.make_overlay).
# ---------------------------------------------------------------------------


def _uniform(codec_factory: Callable[[], Codec], name: str) -> Callable[[], CodecTable]:
    def build() -> CodecTable:
        return CodecTable(default=codec_factory(), name=name)

    return build


def _tuned() -> CodecTable:
    """The per-traffic-class composite: each payload kind gets the codec
    that models its real-world encoding (model bundles gzip well, sparse
    vectors delta-encode, count maps dictionary-compress, control traffic
    is too small to bother)."""
    return CodecTable(
        default=IdentityCodec(),
        per_class={
            "model": GzipModelCodec(),
            "vector": DeltaSparseCodec(),
            "counts": DictRatioCodec(),
            "control": IdentityCodec(),
        },
        name="tuned",
    )


_CODEC_TABLES: Dict[str, Callable[[], CodecTable]] = {
    "identity": _uniform(IdentityCodec, "identity"),
    "gzip-model": _uniform(GzipModelCodec, "gzip-model"),
    "delta-sparse": _uniform(DeltaSparseCodec, "delta-sparse"),
    "dict-ratio": _uniform(DictRatioCodec, "dict-ratio"),
    "tuned": _tuned,
}


def codec_names() -> Tuple[str, ...]:
    """Registered codec-table names, registration order."""
    return tuple(_CODEC_TABLES)


def registered_codecs() -> List[Codec]:
    """One instance of every size model reachable through the registry.

    Derived from the registered tables (defaults plus composite entries),
    deduplicated by class and parameters — a newly registered table
    automatically enrolls its codecs (including re-parameterized instances
    of an existing class) in the property-test contract.
    """
    codecs: Dict[tuple, Codec] = {}
    for factory in _CODEC_TABLES.values():
        table = factory()
        for codec in (
            table.default,
            *table._per_type.values(),
            *table._per_class.values(),
        ):
            key = (type(codec).__name__, tuple(sorted(vars(codec).items())))
            codecs.setdefault(key, codec)
    return list(codecs.values())


def make_codec_table(name: str) -> CodecTable:
    """Build a :class:`CodecTable` by registered name.

    Uniform names apply one codec to all traffic; ``tuned`` is the
    per-traffic-class composite.  Unknown names raise
    :class:`~repro.errors.ConfigurationError` listing the choices.
    """
    factory = _CODEC_TABLES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown codec {name!r}; expected one of {codec_names()}"
        )
    return factory()
