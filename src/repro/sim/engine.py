"""Discrete-event simulation kernel.

A classic heap-based event loop with a virtual clock.  Determinism is a hard
requirement (experiments must be reproducible bit-for-bit), so:

- ties in event time are broken by a monotonically increasing sequence
  number, never by object identity;
- all randomness flows from the simulator's single seeded
  :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, sequence)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event as void; the kernel will skip it."""
        self.cancelled = True


class Simulator:
    """The event loop.

    Parameters
    ----------
    seed:
        Seed of the simulation-wide RNG (churn draws, latency jitter, ...).
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self.rng = np.random.default_rng(seed)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self._now}"
            )
        return self.schedule(time - self._now, callback, label)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events; returns how many ran.

        ``until`` stops the clock at that virtual time (events beyond it stay
        queued); ``max_events`` bounds the number of callbacks executed.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue time went backwards")
            self._now = event.time
            event.callback()
            executed += 1
            self._events_processed += 1
        else:
            if until is not None and until > self._now:
                self._now = until
        return executed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (with a runaway guard)."""
        executed = self.run(max_events=max_events)
        if self.pending_events and executed >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed

    def clear(self) -> None:
        """Drop all pending events (used between experiment phases)."""
        self._queue.clear()
