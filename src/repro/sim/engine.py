"""Discrete-event simulation kernel.

A heap-based event loop with a virtual clock, engineered for million-message
runs: the heap holds plain ``(time, sequence, callback, args, handle)``
tuples (no per-event dataclass), the pending count is a live counter rather
than a queue scan, and :meth:`Simulator.schedule_batch` bulk-schedules whole
delivery blocks without allocating a handle per event.

Determinism is a hard requirement (experiments must be reproducible
bit-for-bit), so:

- ties in event time are broken by a monotonically increasing sequence
  number, never by object identity;
- all randomness flows from the simulator's single seeded
  :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

EventCallback = Callable[..., None]


class Event:
    """Handle for a scheduled callback.

    The kernel stores bare tuples in its heap; this handle exists so callers
    can cancel an event or inspect its scheduled time.  Cancellation flips a
    flag the run loop checks when the entry surfaces — O(1), no heap surgery.
    """

    __slots__ = ("time", "sequence", "label", "cancelled", "fired", "_sim")

    def __init__(
        self, time: float, sequence: int, label: str, sim: "Simulator"
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.label = label
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event as void; the kernel will skip it."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self.fired:
            self._sim._pending -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time} seq={self.sequence} {state} {self.label!r})"


#: heap entry layout: (time, sequence, callback, args, handle-or-None)
_QueueEntry = Tuple[float, int, EventCallback, tuple, Optional[Event]]


class _BlockRun:
    """A homogeneous delivery block living in the heap as ONE entry.

    :meth:`Simulator.schedule_block` pre-allocates the block's whole
    sequence-number range, then keeps exactly one heap entry alive for the
    block: popping record ``i`` pushes the entry for record ``i + 1`` (with
    its pre-allocated ``(time, seq)``) before firing the callback.  Because
    the block's times are non-decreasing and its sequence numbers are the
    same consecutive range a per-event ``schedule_batch_at`` would have
    assigned, the global pop order — and therefore every observable — is
    bit-identical to the per-event path, while the heap never balloons by
    the block size and no per-record entry/argument tuples exist up front.

    The run object itself is the heap entry's callback; per-record callback
    arguments are read out of the column sequences only when the record
    actually fires.
    """

    __slots__ = ("_sim", "times", "seq0", "callback", "columns", "count")

    def __init__(
        self,
        sim: "Simulator",
        times: Sequence[float],
        seq0: int,
        callback: EventCallback,
        columns: Sequence[Sequence[Any]],
    ) -> None:
        self._sim = sim
        self.times = times
        self.seq0 = seq0
        self.callback = callback
        self.columns = columns
        self.count = len(times)

    def __call__(self, index: int) -> None:
        successor = index + 1
        if successor < self.count:
            heapq.heappush(
                self._sim._queue,
                (
                    self.times[successor],
                    self.seq0 + successor,
                    self,
                    (successor,),
                    None,
                ),
            )
        self.callback(*[column[index] for column in self.columns])


class Simulator:
    """The event loop.

    Parameters
    ----------
    seed:
        Seed of the simulation-wide RNG (churn draws, latency jitter, ...).
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._pending = 0
        self._last_event_time = float("-inf")
        self.rng = np.random.default_rng(seed)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) queued events — O(1), maintained counter."""
        return self._pending

    @property
    def last_event_time(self) -> float:
        """Virtual time of the most recently executed event (``-inf`` if no
        event has fired yet).  Unlike :attr:`now`, never moved forward by an
        ``until`` clamp — the sharded kernel uses it to agree on the global
        quiescence instant across shard heaps."""
        return self._last_event_time

    def next_event_time(self) -> float:
        """Scheduled time of the earliest queued entry (``inf`` when empty).

        May report a cancelled entry's time — the window scheduler only
        needs a conservative lower bound, and a stale head merely yields one
        empty window before it is popped and skipped.
        """
        return self._queue[0][0] if self._queue else float("inf")

    def export_cursors(self) -> Dict[str, Any]:
        """Kernel cursor snapshot for the simulation WAL.

        Captures the virtual clock, the next tie-break sequence number, the
        live-event count, and the executed-event total — everything the WAL
        needs to assert that a resumed kernel sits at exactly the same point
        in the event stream.  Peeking the sequence counter consumes one
        value, so the counter is re-seeded at the peeked value: schedules
        issued after the snapshot draw the same numbers they would have
        drawn without it.
        """
        sequence = next(self._sequence)
        self._sequence = itertools.count(sequence)
        return {
            "now": self._now,
            "seq": sequence,
            "pending": self._pending,
            "events": self._events_processed,
        }

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        args: tuple = (),
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Passing ``args`` instead of closing over state avoids building a
        closure per event on hot paths.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        sequence = next(self._sequence)
        event = Event(time, sequence, label, self)
        heapq.heappush(self._queue, (time, sequence, callback, args, event))
        self._pending += 1
        return event

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = "", args: tuple = ()
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now {self._now}"
            )
        return self.schedule(time - self._now, callback, label, args)

    def schedule_batch(
        self,
        delays: Sequence[float],
        callback: EventCallback,
        args_seq: Optional[Iterable[tuple]] = None,
    ) -> int:
        """Bulk-schedule one callback over a block of delays.

        ``args_seq`` supplies per-event argument tuples (e.g. one message per
        delivery); when omitted the callback runs with no arguments.  No
        :class:`Event` handles are allocated — batch events cannot be
        cancelled individually, which is exactly right for in-flight message
        deliveries.  Returns the number of events scheduled.

        For large blocks the queue is extended and re-heapified in one O(n+k)
        pass instead of k O(log n) sifts.
        """
        now = self._now
        counter = self._sequence
        if args_seq is None:
            entries = [
                (now + delay, next(counter), callback, (), None)
                for delay in delays
            ]
        else:
            entries = [
                (now + delay, next(counter), callback, args, None)
                for delay, args in zip(delays, args_seq)
            ]
        return self._push_batch(entries)

    def schedule_batch_at(
        self,
        times: Sequence[float],
        callback: EventCallback,
        args_seq: Optional[Iterable[tuple]] = None,
    ) -> int:
        """Bulk-schedule one callback at a block of *absolute* virtual times.

        The scheduled-round primitive: a training round pre-computes every
        peer's activation time and registers the whole block here, so rounds
        from many peers interleave through one kernel run instead of
        serializing through repeated ``run(until=...)`` calls.  Times are
        used exactly as given (no ``now + delay`` re-addition), which keeps
        activation instants bit-identical to a sequential accumulation of
        the same gaps.  Like :meth:`schedule_batch`, no :class:`Event`
        handles are allocated.  Returns the number of events scheduled.
        """
        counter = self._sequence
        if args_seq is None:
            entries = [(time, next(counter), callback, (), None) for time in times]
        else:
            entries = [
                (time, next(counter), callback, args, None)
                for time, args in zip(times, args_seq)
            ]
        return self._push_batch(entries)

    def schedule_block(
        self,
        times: Sequence[float],
        callback: EventCallback,
        columns: Sequence[Sequence[Any]],
    ) -> int:
        """Array-native bulk schedule of one callback over a sorted block.

        The columnar injection primitive behind the sharded kernel's
        exchange path: ``times`` must be non-decreasing absolute virtual
        times and ``columns`` is one sequence per callback argument (record
        ``i`` fires ``callback(columns[0][i], columns[1][i], ...)``).  The
        whole block enters the heap as a single :class:`_BlockRun` entry —
        no per-event heap tuples, argument tuples, or :class:`Event`
        handles are allocated at schedule time — yet the pop order is
        bit-identical to :meth:`schedule_batch_at` over the same records:
        the block claims the same consecutive sequence-number range, and
        each record surfaces with its own pre-allocated ``(time, seq)``
        key.  Like the batch paths, block events cannot be cancelled
        individually.  Returns the number of events scheduled.
        """
        count = len(times)
        if count == 0:
            return 0
        now = self._now
        if times[0] < now:
            raise SimulationError(
                f"cannot schedule into the past (delay={times[0] - now})"
            )
        previous = times[0]
        for time in times:
            if time < previous:
                raise SimulationError(
                    "schedule_block requires non-decreasing times "
                    f"({time} after {previous})"
                )
            previous = time
        for column in columns:
            if len(column) != count:
                raise SimulationError(
                    "schedule_block column length mismatch "
                    f"({len(column)} != {count})"
                )
        seq0 = next(self._sequence)
        # Claim the rest of the block's sequence range in one hop: the
        # counter resumes exactly where per-event allocation would have
        # left it, so later schedules tie-break identically.
        self._sequence = itertools.count(seq0 + count)
        run = _BlockRun(self, times, seq0, callback, columns)
        heapq.heappush(self._queue, (times[0], seq0, run, (0,), None))
        self._pending += count
        return count

    def _push_batch(self, entries: List[_QueueEntry]) -> int:
        """Validate and push a block of heap entries (one O(n+k) heapify for
        large blocks instead of k O(log n) sifts)."""
        now = self._now
        queue = self._queue
        for entry in entries:
            if entry[0] < now:
                raise SimulationError(
                    f"cannot schedule into the past (delay={entry[0] - now})"
                )
        if len(entries) > 8 and len(entries) >= len(queue):
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            push = heapq.heappush
            for entry in entries:
                push(queue, entry)
        self._pending += len(entries)
        return len(entries)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events; returns how many ran.

        ``until`` stops the clock at that virtual time (events beyond it stay
        queued); ``max_events`` bounds the number of callbacks executed.
        """
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        while queue:
            if max_events is not None and executed >= max_events:
                break
            time = queue[0][0]
            if until is not None and time > until:
                self._now = until
                break
            _, _, callback, args, handle = pop(queue)
            if handle is not None:
                if handle.cancelled:
                    continue
                handle.fired = True
            if time < self._now:
                raise SimulationError("event queue time went backwards")
            self._pending -= 1
            self._now = time
            self._last_event_time = time
            callback(*args)
            executed += 1
            self._events_processed += 1
        else:
            if until is not None and until > self._now:
                self._now = until
        return executed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (with a runaway guard)."""
        executed = self.run(max_events=max_events)
        if self.pending_events and executed >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed

    def clear(self) -> None:
        """Drop all pending events (used between experiment phases)."""
        for _, _, _, _, handle in self._queue:
            if handle is not None and not handle.cancelled:
                handle.fired = True  # a cleared event can no longer cancel
        self._queue.clear()
        self._pending = 0
