"""Unified transport layer: the one way application traffic hits the wire.

Before this service existed, every protocol (CEMPaR, PACE, NB-Agg, the
baselines) wired itself to :class:`~repro.sim.network.PhysicalNetwork` in its
own ad-hoc way — constructing :class:`~repro.sim.messages.Message` objects,
charging overlay route hops, and re-implementing the "delivered AND
destination up" check.  :class:`Transport` owns all of that:

- :meth:`send` / :meth:`send_batch` — unicast with uniform delivery
  semantics (an :class:`Outcome` instead of a bare bool + is_up dance);
- :meth:`route_and_send` — resolve a DHT key through the overlay, charge the
  route's hops, and send to the owner, in one call;
- :meth:`broadcast` — one payload to many recipients, sized once and
  delivered as a batched block (flood-aware on unstructured overlays);
- :meth:`charge` — account traffic that is modelled but not simulated
  (maintenance probes, flood redundancy) through the same stats path.

Every path sizes its traffic through the transport's wire-format
:class:`~repro.sim.codec.CodecTable` (constructor argument, default
``identity``): raw and post-encoding byte counts are recorded side by side,
so communication experiments sweep codec choices with zero protocol churn.

Determinism: batched sends consume the simulator RNG stream bit-identically
to sequential sends (see :mod:`repro.sim.network`), so byte/hop/latency
observables never depend on which path a protocol uses.  Codecs are
accounting-only — delivery timing derives from raw sizes — so a codec sweep
never changes the event stream, and the identity default is byte-identical
to the pre-codec stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.envutil import env_flag
from repro.errors import SimulationError
from repro.overlay.base import Overlay, RouteResult
from repro.sim.codec import CodecTable, make_codec_table
from repro.sim.messages import _HEADER_BYTES, Message, payload_size
from repro.sim.network import PhysicalNetwork
from repro.sim.stats import StatsCollector

#: set to "1" to force the scalar (message-per-recipient) broadcast path —
#: the equivalence harness runs both paths and compares stats byte-for-byte.
SCALAR_BROADCAST_ENV = "REPRO_SCALAR_BROADCAST"


@dataclass
class Outcome:
    """Result of one transport operation.

    ``sent``       — the message left the source NIC (it was charged);
    ``delivered``  — it was queued and the destination was up at send time
                     (the strongest guarantee the old per-protocol code
                     checked via ``network.send(...) and network.is_up(dst)``);
    ``route``      — the overlay route used, when the operation routed;
    ``loopback``   — source and destination were the same peer (no message).
    """

    sent: bool
    delivered: bool
    dst: Optional[int] = None
    route: Optional[RouteResult] = None
    loopback: bool = False

    @property
    def lookup_failed(self) -> bool:
        """True when an overlay route was attempted and did not resolve."""
        return self.route is not None and (
            not self.route.success or self.route.owner is None
        )


class BroadcastOutcome:
    """Result of a one-to-many propagation.

    Per-recipient results are held as flag arrays; the per-recipient
    :class:`Outcome` objects the pre-vectorization API exposed are
    materialized lazily through :attr:`outcomes`, so callers that only need
    the delivered set (:meth:`delivered_to`) never allocate 10k objects.
    """

    __slots__ = ("origin", "targets", "sent", "delivered",
                 "redundant_messages", "_outcomes")

    def __init__(
        self,
        origin: int,
        targets: Sequence[int],
        sent: Sequence[bool],
        delivered: Sequence[bool],
        redundant_messages: int = 0,
    ) -> None:
        self.origin = origin
        self.targets = list(targets)  # recipients, send order
        self.sent = np.asarray(sent, dtype=bool)
        self.delivered = np.asarray(delivered, dtype=bool)
        #: flood edge crossings beyond recipients
        self.redundant_messages = redundant_messages
        self._outcomes: Optional[List[Tuple[int, Outcome]]] = None

    @property
    def outcomes(self) -> List[Tuple[int, Outcome]]:
        """(recipient, :class:`Outcome`) pairs in send order, built on
        first access."""
        if self._outcomes is None:
            self._outcomes = [
                (dst, Outcome(sent=bool(s), delivered=bool(d), dst=dst))
                for dst, s, d in zip(self.targets, self.sent, self.delivered)
            ]
        return self._outcomes

    def delivered_to(self) -> List[int]:
        return [dst for dst, ok in zip(self.targets, self.delivered) if ok]

    def delivered_count(self) -> int:
        return int(self.delivered.sum())


class Transport:
    """Batched, overlay-aware message transport over a physical network."""

    def __init__(
        self,
        network: PhysicalNetwork,
        overlay: Optional[Overlay] = None,
        stats: Optional[StatsCollector] = None,
        codec: Optional[CodecTable] = None,
    ) -> None:
        self.network = network
        self.simulator = network.simulator
        self.overlay = overlay
        self.stats = stats or network.stats
        #: debug/equivalence flag: force the scalar message-per-recipient
        #: broadcast path (the pre-vectorization behaviour).  Results are
        #: bit-identical either way; only wall-clock differs.
        self.scalar_broadcast = env_flag(SCALAR_BROADCAST_ENV)
        self.codec = codec if codec is not None else make_codec_table("identity")

    # -- wire-format codec ---------------------------------------------------

    @property
    def codec(self) -> CodecTable:
        """The wire-format codec table every send/charge is sized through.

        Defaults to ``identity`` (wire == raw, accounting-invisible); swap
        in a table from :func:`repro.sim.codec.make_codec_table` to model
        per-message-type compression.  Codecs change *accounting only* —
        delivery timing stays a function of the raw size, so codec sweeps
        never perturb the event stream or the RNG draw order.
        """
        return self._codec

    @codec.setter
    def codec(self, table: CodecTable) -> None:
        self._codec = table
        # Cached so the identity fast path costs one attribute read per
        # message instead of re-scanning the table.
        self._codec_is_identity = table.is_identity

    def _stamp_wire_size(self, message: Message) -> None:
        """Stamp the codec-modelled wire size onto an outgoing message."""
        if not self._codec_is_identity:
            message.wire_bytes = self._codec.wire_size(
                message.msg_type, message.size_bytes
            )

    # -- unicast -------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        msg_type: str,
        payload: Any = None,
        *,
        hops: int = 1,
        size_bytes: int = -1,
    ) -> Outcome:
        """Send one message; hops charge multi-hop overlay routing."""
        if src == dst:
            raise SimulationError("node attempted to message itself")
        message = Message(
            src=src,
            dst=dst,
            msg_type=msg_type,
            payload=payload,
            size_bytes=size_bytes,
            hops=hops,
        )
        return self.send_message(message)

    def send_message(self, message: Message) -> Outcome:
        self._stamp_wire_size(message)
        sent = self.network.send(message)
        return Outcome(
            sent=sent,
            delivered=sent and self.network.is_up(message.dst),
            dst=message.dst,
        )

    def send_batch(self, messages: Sequence[Message]) -> List[Outcome]:
        """Send a same-tick block; delivery draws are vectorized."""
        if not self._codec_is_identity:
            for message in messages:
                self._stamp_wire_size(message)
        sent_flags = self.network.send_batch(messages)
        is_up = self.network.is_up
        return [
            Outcome(sent=sent, delivered=sent and is_up(m.dst), dst=m.dst)
            for m, sent in zip(messages, sent_flags)
        ]

    # -- overlay routing -----------------------------------------------------

    def route(self, origin: int, key: int) -> RouteResult:
        """Resolve ``key`` through the attached overlay."""
        if self.overlay is None:
            raise SimulationError("transport has no overlay attached")
        return self.overlay.route(origin, key)

    def route_and_send(
        self,
        origin: int,
        key: int,
        msg_type: str,
        payload: Any = None,
        *,
        size_bytes: int = -1,
        route: Optional[RouteResult] = None,
    ) -> Outcome:
        """Route ``key`` to its owner and send, charging the route's hops.

        A precomputed ``route`` skips the lookup (callers that already
        resolved the owner, e.g. to group traffic per destination).  When the
        origin owns the key the payload never touches the network: the
        outcome is a delivered loopback, as every protocol special-cased
        before this layer existed.
        """
        if route is None:
            route = self.route(origin, key)
        if not route.success or route.owner is None:
            return Outcome(sent=False, delivered=False, route=route)
        if route.owner == origin:
            return Outcome(
                sent=False, delivered=True, dst=origin, route=route, loopback=True
            )
        message = Message(
            src=origin,
            dst=route.owner,
            msg_type=msg_type,
            payload=payload,
            size_bytes=size_bytes,
            hops=max(1, route.hops),
        )
        outcome = self.send_message(message)
        outcome.route = route
        return outcome

    # -- one-to-many ---------------------------------------------------------

    def broadcast(
        self,
        origin: int,
        msg_type: str,
        payload: Any,
        *,
        recipients: Optional[Iterable[int]] = None,
        use_flood: bool = True,
    ) -> BroadcastOutcome:
        """Propagate one payload from ``origin`` to many peers.

        With ``recipients`` unset, the recipient set comes from the overlay:
        the flood primitive where available (unstructured overlays, charging
        redundant edge crossings), overlay membership otherwise.  The payload
        is sized once and shared by every message.

        Recipient bookkeeping is vectorized: per-recipient stats arithmetic
        aggregates in bulk, latency factors and jitter come from single
        array draws, and neither :class:`Message` nor :class:`Outcome`
        objects are allocated per recipient at send time (messages
        materialize at delivery, outcomes on :attr:`BroadcastOutcome.outcomes`
        access).  The RNG stream is consumed bit-identically to the scalar
        message-per-recipient path, which remains behind
        :attr:`scalar_broadcast` (and is the automatic fallback when a loss
        model or a *per-message* send listener needs per-message
        draws/objects).  Block listeners — the trace layer and the trace
        store — ride the fast path: :meth:`PhysicalNetwork.broadcast_block`
        hands them one SoA batch, so attaching a trace no longer disables
        the vectorization.
        """
        redundant = 0
        if recipients is None:
            if self.overlay is None:
                raise SimulationError(
                    "broadcast needs recipients or an overlay"
                )
            flood = getattr(self.overlay, "flood", None) if use_flood else None
            if callable(flood):
                result = flood(origin)
                targets = sorted(result.reached - {origin})
                redundant = max(0, result.messages - len(targets))
            else:
                targets = sorted(set(self.overlay.members()) - {origin})
        else:
            targets = [dst for dst in recipients if dst != origin]
        size = _HEADER_BYTES + payload_size(payload)
        network = self.network
        vectorizable = (
            not self.scalar_broadcast
            and len(targets) >= 2
            and network.latency.drop_probability == 0
            and not network.has_send_listeners
            and network.is_up(origin)
            # Overlay-derived recipient sets are distinct by construction;
            # caller-supplied duplicates need per-message accounting (the
            # bulk per-destination Counter.update would collapse them).
            and len(set(targets)) == len(targets)
        )
        if vectorizable:
            wire = (
                size if self._codec_is_identity
                else self._codec.wire_size(msg_type, size)
            )
            sent = network.broadcast_block(
                origin, targets, msg_type, payload, size, wire_bytes=wire
            )
            delivered = sent & network.are_up(targets)
        else:
            # send_batch stamps each message's wire size; constructing
            # without wire_bytes keeps one source of truth for it.
            messages = [
                Message(
                    src=origin,
                    dst=dst,
                    msg_type=msg_type,
                    payload=payload,
                    size_bytes=size,
                )
                for dst in targets
            ]
            outcomes = self.send_batch(messages)
            sent = [o.sent for o in outcomes]
            delivered = [o.delivered for o in outcomes]
        return BroadcastOutcome(
            origin=origin,
            targets=targets,
            sent=sent,
            delivered=delivered,
            redundant_messages=redundant,
        )

    # -- modelled-only traffic -----------------------------------------------

    def charge(
        self,
        src: int,
        dst: int,
        msg_type: str,
        size_bytes: int,
        hops: int = 1,
    ) -> None:
        """Account traffic without simulating delivery.

        Used for costs that are modelled analytically (maintenance probes,
        flood redundancy) so every byte in the experiment tables flows
        through the same :class:`StatsCollector` arithmetic — including the
        codec's wire-size model.
        """
        wire = (
            None if self._codec_is_identity
            else self._codec.wire_size(msg_type, size_bytes)
        )
        self.stats.record_traffic(
            msg_type, size_bytes, hops=hops, src=src, dst=dst, wire_bytes=wire
        )

    # -- time ----------------------------------------------------------------

    def flush(self, settle_time: Optional[float] = None) -> None:
        """Let queued deliveries complete (advances virtual time).

        With a ``settle_time`` the clock advances a bounded window (needed
        when churn keeps the queue permanently non-empty); otherwise the
        queue is drained completely.
        """
        if settle_time is not None:
            self.simulator.run(until=self.simulator.now + settle_time)
        else:
            self.simulator.run_until_idle()
