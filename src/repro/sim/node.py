"""Simulated node base class.

A :class:`SimNode` owns an id, registers itself on the physical network, and
dispatches incoming messages to per-type handlers.  Application peers
(P2PDocTagger peers, super-peers) subclass or compose it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.sim.messages import Message
from repro.sim.network import PhysicalNetwork

MessageHandler = Callable[[Message], None]


class SimNode:
    """A network endpoint with typed message handlers."""

    def __init__(self, node_id: int, network: PhysicalNetwork) -> None:
        self.node_id = node_id
        self.network = network
        self._handlers: Dict[str, MessageHandler] = {}
        network.register(node_id, self._receive)

    # -- handler registry ----------------------------------------------------

    def on(self, msg_type: str, handler: MessageHandler) -> None:
        """Register ``handler`` for messages of ``msg_type``."""
        self._handlers[msg_type] = handler

    def _receive(self, message: Message) -> None:
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            self.network.stats.increment(f"unhandled:{message.msg_type}")
            return
        handler(message)

    # -- sending ------------------------------------------------------------------

    def send(
        self,
        dst: int,
        msg_type: str,
        payload: Any = None,
        hops: int = 1,
    ) -> bool:
        """Send a message; ``hops`` charges multi-hop overlay routing."""
        if dst == self.node_id:
            raise SimulationError("node attempted to message itself")
        message = Message(
            src=self.node_id, dst=dst, msg_type=msg_type, payload=payload, hops=hops
        )
        return self.network.send(message)

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self.network.is_up(self.node_id)

    def shutdown(self) -> None:
        self.network.unregister(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(id={self.node_id})"
